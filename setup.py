"""Legacy setup shim: the sandbox's setuptools predates PEP 660 editable
installs (no wheel package available offline), so ``pip install -e .``
goes through ``setup.py develop``. All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
