"""Vertex ordering, cache locality, and who wins SpMM.

Section V-A explains the CPU's surprising strength on `products` by
cache reuse; Fig 9 calls the RMAT power graphs "low locality".  This
example makes that concrete: shuffle a graph, reorder it (RCM and
degree-first), *measure* the window-span locality metric, and see how
the measured locality moves the CPU SpMM estimate — while PIUMA,
cacheless by design, does not care.

    python examples/locality_study.py
"""

from repro.cpu import XeonConfig, spmm_time
from repro.graphs import RMATParams, rmat_graph, window_span_fraction
from repro.piuma import PIUMAConfig, spmm_model
from repro.report import format_table
from repro.sparse import apply_permutation, degree_order, random_order, rcm_order


def main():
    # Big enough that the feature matrix (|V| x K x 4B = 512 MB) dwarfs
    # the Xeon's ~220 MB of cache — ordering decides what stays hot.
    adj = rmat_graph(RMATParams(scale=20, edge_factor=8), seed=0)
    shuffled = apply_permutation(adj, random_order(adj, seed=1))

    orderings = {
        "shuffled": shuffled,
        "rcm": apply_permutation(shuffled, rcm_order(shuffled)),
        "degree-first": apply_permutation(shuffled, degree_order(shuffled)),
    }

    xeon = XeonConfig()
    node = PIUMAConfig.node()
    k = 128
    rows = []
    for name, graph in orderings.items():
        span = window_span_fraction(graph)
        # A narrow span means each window's feature rows stay resident:
        # read it as the locality/skew knob of the cache model.
        locality = min(0.95, 1.0 - span)
        est = spmm_time(graph.n_rows, graph.nnz, k, xeon, skew=locality)
        piuma = spmm_model(graph.n_rows, graph.nnz, k, node).gflops * 0.88
        rows.append([
            name, f"{span:.2f}", f"{locality:.2f}", f"{est.hit_rate:.0%}",
            f"{est.gflops:.1f}", f"{piuma:.0f}",
        ])
    print(f"graph: {adj.n_rows:,} vertices, {adj.nnz:,} edges, K={k}\n")
    print(format_table(
        ["ordering", "window span", "locality", "CPU hit",
         "CPU SpMM GF/s", "PIUMA GF/s (order-blind)"],
        rows,
        title="Vertex ordering vs SpMM locality",
    ))
    print("\nReordering moves the CPU; the cacheless PIUMA column is "
          "constant — the Section V-A asymmetry in one table.")


if __name__ == "__main__":
    main()
