"""Sampled inference: exactly what the GPU does when a graph won't fit.

Fig 4's `papers` bars come from layer-wise full-neighborhood sampling:
the host builds each batch's receptive field and ships it to the
device.  This example runs that pipeline *functionally* — proving the
sampled outputs equal full-graph inference for the targets — and then
measures the receptive-field explosion that makes the strategy so
expensive at scale.

    python examples/sampled_inference.py
"""

import numpy as np

from repro.core import GCNConfig, GCNModel
from repro.ext import sampled_inference
from repro.gpu import A100Config, measure_receptive_expansion, sampled_run_cost
from repro.graphs import RMATParams, get_dataset, rmat_graph
from repro.report import format_table, format_time_ns


def main():
    adj = rmat_graph(RMATParams(scale=12, edge_factor=16), seed=5,
                     symmetric=True)
    model = GCNModel(
        adj, GCNConfig(in_dim=16, hidden_dim=32, out_dim=8), seed=1
    )
    features = model.random_features(seed=2)

    # 1. Correctness: sampling computes the same logits for the targets.
    targets = np.array([7, 99, 1024, 3000])
    sampled, batch = sampled_inference(model, features, targets)
    full = model.forward(features)
    error = np.abs(sampled - full[targets]).max()
    print(f"graph: {adj.n_rows:,} vertices, {adj.nnz:,} edges")
    print(f"sampled vs full-graph logits: max |diff| = {error:.2e}")
    print(f"receptive field of {len(targets)} targets after "
          f"{model.n_layers} hops: {batch.frontier_size:,} vertices "
          f"({batch.frontier_size / adj.n_rows:.0%} of the graph)\n")

    # 2. Cost: measured expansion priced at `papers` scale.
    profile = measure_receptive_expansion(
        adj, batch_size=256, n_layers=3, n_probes=4
    )
    papers = get_dataset("papers")
    estimate = sampled_run_cost(
        papers.n_vertices, papers.n_edges, 128, profile, A100Config()
    )
    print(format_table(
        ["quantity", "value"],
        [["3-hop frontier (batch=256)",
          f"{profile.mean_frontier_fraction:.0%} of |V|"],
         ["edges re-gathered per batch",
          f"{profile.mean_edges_fraction:.0%} of |E|"],
         ["batches to cover papers", f"{estimate.n_batches:,}"],
         ["host sampling time", format_time_ns(estimate.sampling_ns)],
         ["PCIe offload time", format_time_ns(estimate.offload_ns)]],
        title="Full-neighborhood sampling, projected to papers (K=128)",
    ))
    print("\nCaveat: expansion *fractions* measured on a 4k-vertex graph "
          "are an upper bound for a 111M-vertex one, so the projected "
          "times illustrate the explosion mechanism rather than estimate "
          "papers.  Either way the conclusion stands: neighborhood "
          "explosion is why Fig 4 shows >99% of papers' GPU runtime in "
          "sampling + offload.")


if __name__ == "__main__":
    main()
