"""Explore the PIUMA design space for SpMM.

An architect's use of the simulator: for a fixed workload, how many
threads per MTP are needed to stay latency-tolerant, and how does the
kernel choice (DMA offload versus loop unrolling) change the answer?
Reproduces the reasoning behind Figs 5-7 on a custom workload.

    python examples/piuma_design_space.py
"""

from repro.graphs import RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm
from repro.report import format_table, series_chart

LATENCIES = (45, 180, 720)
THREADS = (1, 4, 16)
K = 32


def main():
    adj = rmat_graph(RMATParams(scale=13, edge_factor=16), seed=2)
    print(f"workload: {adj.n_rows:,} vertices, {adj.nnz:,} edges, K={K}\n")

    # 1. Thread count vs latency tolerance (the Fig 7 question).
    rows = []
    for tpm in THREADS:
        gflops = [
            simulate_spmm(
                adj, K,
                PIUMAConfig(n_cores=8, threads_per_mtp=tpm,
                            dram_latency_ns=lat),
                kernel="dma",
            ).gflops
            for lat in LATENCIES
        ]
        retention = gflops[-1] / gflops[0]
        rows.append([tpm] + [f"{g:.1f}" for g in gflops]
                    + [f"{retention:.0%}"])
    print(format_table(
        ["threads/MTP"] + [f"{lat} ns" for lat in LATENCIES]
        + ["retained at 720 ns"],
        rows,
        title="DMA kernel GFLOP/s vs DRAM latency (8 cores)",
    ))

    # 2. Kernel choice vs core count (the Fig 5 question).
    cores = (1, 4, 16)
    dma = [
        simulate_spmm(adj, K, PIUMAConfig(n_cores=c), "dma").gflops
        for c in cores
    ]
    loop = [
        simulate_spmm(adj, K, PIUMAConfig(n_cores=c), "loop").gflops
        for c in cores
    ]
    print("\nkernel strong scaling (GFLOP/s):")
    print(series_chart(cores, [("dma", dma), ("loop", loop)],
                       x_label="cores"))
    verdict = (
        "DMA offload keeps scaling where the scalar loop stalls on "
        "remote-latency-bound NNZ and feature reads."
        if dma[-1] > loop[-1]
        else "Loop kernel competitive at this scale."
    )
    print(f"\n{verdict}")


if __name__ == "__main__":
    main()
