"""Characterize an OGB workload across CPU, GPU and PIUMA.

The paper's end-to-end workflow for one dataset: sweep the hidden
embedding dimension, print the execution-time breakdown on each
platform and the speedups over the Xeon baseline (Figs 3, 4, 9, 10 for
a single dataset).

    python examples/ogb_characterization.py [dataset] [--full]

``dataset`` defaults to ``products``; pass any Table I name or
``power-16``/``power-22``.
"""

import sys

from repro.core import compare_platforms
from repro.cpu import XeonConfig
from repro.gpu import A100Config, fits_on_gpu
from repro.piuma import PIUMAConfig
from repro.report import breakdown_chart, format_table, format_time_ns
from repro.workloads import EMBEDDING_SWEEP, workload_for


def main(dataset="products"):
    xeon, a100, node = XeonConfig(), A100Config(), PIUMAConfig.node()

    sample = workload_for(dataset, 64)
    print(f"dataset {dataset}: |V|={sample.dataset.n_vertices:,} "
          f"|E|={sample.dataset.n_edges:,} "
          f"locality={sample.dataset.locality}")
    print(f"fits on A100-40GB: {fits_on_gpu(sample, a100)}\n")

    rows = []
    charts = []
    for k in EMBEDDING_SWEEP:
        comparison = compare_platforms(
            workload_for(dataset, k), xeon, a100, node
        )
        rows.append(
            [k,
             format_time_ns(comparison.breakdowns["cpu"].total),
             format_time_ns(comparison.breakdowns["gpu"].total),
             format_time_ns(comparison.breakdowns["piuma"].total),
             f"{comparison.gcn_speedup('piuma'):.2f}x",
             f"{comparison.gcn_speedup('gpu'):.2f}x"]
        )
        if k in (8, 64, 256):
            for platform in ("cpu", "gpu", "piuma"):
                charts.append(
                    (f"{platform:5s} K={k:<3d}",
                     comparison.breakdowns[platform])
                )
    print(format_table(
        ["K", "CPU", "GPU", "PIUMA", "PIUMA speedup", "GPU speedup"],
        rows,
        title=f"GCN inference on {dataset} (3 layers)",
    ))
    print("\nexecution-time breakdowns:")
    print(breakdown_chart(charts))


if __name__ == "__main__":
    main(*(a for a in sys.argv[1:2]))
