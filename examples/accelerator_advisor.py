"""Should your graph workload move to a graph accelerator?

The paper's Fig 2 distilled into a tool: given a graph's scale and
density (plus optionally an embedding dimension), predict the fraction
of GCN time a CPU spends in sparse aggregation — workloads above ~60%
are the ones PIUMA-class hardware accelerates meaningfully.

    python examples/accelerator_advisor.py 1000000 3e-6
    python examples/accelerator_advisor.py            # demo sweep
"""

import sys

from repro.core import spmm_fraction
from repro.cpu import XeonConfig
from repro.graphs import OGB_TABLE_I
from repro.report import format_table


def advise(n_vertices, density, config, embedding_dim=256):
    fraction = spmm_fraction(n_vertices, density, config,
                             embedding_dim=embedding_dim)
    if fraction >= 0.8:
        verdict = "strongly accelerator-favored"
    elif fraction >= 0.6:
        verdict = "accelerator-favored"
    elif fraction >= 0.4:
        verdict = "mixed: dense update matters as much"
    else:
        verdict = "CPU/GPU-favored (dense-dominated)"
    return fraction, verdict


def main(argv):
    config = XeonConfig()
    if len(argv) >= 2:
        n_vertices, density = int(float(argv[0])), float(argv[1])
        k = int(argv[2]) if len(argv) > 2 else 256
        fraction, verdict = advise(n_vertices, density, config, k)
        print(f"|V|={n_vertices:,} density={density:.2e} K={k}: "
              f"SpMM share {fraction:.0%} -> {verdict}")
        return
    rows = []
    for spec in OGB_TABLE_I:
        fraction, verdict = advise(spec.n_vertices, spec.density, config)
        rows.append([spec.name, f"{spec.n_vertices:,}",
                     f"{spec.density:.2e}", f"{fraction:.0%}", verdict])
    print(format_table(
        ["dataset", "|V|", "density", "SpMM share", "advice"],
        rows,
        title="Accelerator advisor (K=256, uniform-reuse assumption)",
    ))


if __name__ == "__main__":
    main(sys.argv[1:])
