"""Quickstart: run a GCN functionally, then characterize it on PIUMA.

Builds a small power-law graph, runs a real (numpy) 3-layer GCN forward
pass with per-phase instrumentation, and then asks the PIUMA simulator
how the aggregation kernel would behave on graph hardware.

    python examples/quickstart.py
"""

from repro.core import GCNConfig, GCNModel, profile_inference
from repro.graphs import RMATParams, rmat_graph
from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
from repro.report import format_time_ns


def main():
    # 1. A graph: 4096 vertices, power-law degrees (Graph500 RMAT).
    adj = rmat_graph(RMATParams(scale=12, edge_factor=16), seed=0,
                     symmetric=True)
    print(f"graph: {adj.n_rows:,} vertices, {adj.nnz:,} edges")

    # 2. A 3-layer GCN, hidden embedding dimension 64.
    model = GCNModel(adj, GCNConfig(in_dim=32, hidden_dim=64, out_dim=16))
    features = model.random_features(seed=1)

    # 3. Functional inference with phase instrumentation.
    profile = profile_inference(model, features)
    print(f"output logits: {profile.output.shape}, "
          f"{profile.total_flops:,} FLOPs")
    wall = profile.wall
    print("host wall clock: "
          f"spmm={wall.spmm * 1e3:.1f} ms  dense={wall.dense * 1e3:.1f} ms  "
          f"glue={wall.glue * 1e3:.1f} ms")

    # 4. The same aggregation on a simulated 8-core PIUMA die.
    config = PIUMAConfig()  # one die: 8 cores, 16 threads/MTP
    result = simulate_spmm(model.adj, 64, config, kernel="dma")
    model_curve = spmm_model(model.adj.n_rows, model.adj.nnz, 64, config)
    print(f"\nPIUMA (8 cores, DMA kernel):")
    print(f"  projected SpMM time: {format_time_ns(result.projected_time_ns)}")
    print(f"  achieved {result.gflops:.1f} GFLOP/s = "
          f"{result.efficiency_vs(model_curve.gflops):.0%} of the "
          f"bandwidth-bound model")
    print(f"  memory utilization: {result.memory_utilization:.0%}")


if __name__ == "__main__":
    main()
