"""Train a GCN end to end, then ask what training costs at scale.

Section VI of the paper flags training as the natural next step beyond
inference characterization.  This example trains a real (numpy) GCN on
a synthetic two-community node-classification task, verifies it learns,
and then uses the platform models to estimate what the dominant
training kernels (two SpMMs per layer per step: forward and gradient)
would cost per epoch on Xeon versus a PIUMA node.

    python examples/train_gcn.py
"""

import numpy as np

from repro.core import Adam, GCNConfig, GCNModel, GCNTrainer, accuracy
from repro.cpu import XeonConfig, spmm_time
from repro.piuma import PIUMAConfig, spmm_model
from repro.report import format_table, format_time_ns


def community_task(n_communities=4, n_vertices=512, degree=12, p_in=0.9,
                   seed=0):
    """A stochastic-block-model graph with community-correlated features.

    Most edges stay inside a community, so GCN aggregation *sharpens*
    the (noisy) per-vertex feature signal instead of washing it out.
    """
    from repro.graphs import community_features, stochastic_block_model

    adj, labels = stochastic_block_model(
        n_vertices, n_communities, avg_degree=degree, p_in=p_in, seed=seed
    )
    features = community_features(labels, 16, noise=1.0, seed=seed)
    return adj, features, labels


def main():
    adj, features, labels = community_task()
    model = GCNModel(
        adj, GCNConfig(in_dim=16, hidden_dim=32, out_dim=4), seed=1
    )
    trainer = GCNTrainer(model, Adam(learning_rate=0.02))

    train_mask = np.zeros(adj.n_rows, dtype=bool)
    train_mask[::4] = True  # 25% labeled, semi-supervised
    result = trainer.fit(features, labels, mask=train_mask, epochs=60)

    logits = model.forward(features)
    print(f"graph: {adj.n_rows:,} vertices, {adj.nnz:,} edges")
    print(f"loss: {result.losses[0]:.3f} -> {result.losses[-1]:.3f}")
    print(f"train accuracy: {result.train_accuracies[-1]:.1%}")
    print(f"all-vertex accuracy: {accuracy(logits, labels):.1%}")

    # What would one training epoch's SpMM work cost at products scale?
    v, e, k = 2_449_029, 64_308_169, 128
    spmms_per_step = 2 * 3  # forward + backward, three layers
    cpu = spmm_time(v, e, k, XeonConfig()).time_ns * spmms_per_step
    piuma = (
        spmm_model(v, e, k, PIUMAConfig.node()).time_ns / 0.88
    ) * spmms_per_step
    print("\nprojected SpMM work per full-batch step at products scale:")
    print(format_table(
        ["platform", "6 SpMMs (3 layers, fwd+bwd)"],
        [["dual-socket Xeon", format_time_ns(cpu)],
         ["PIUMA node", format_time_ns(piuma)]],
    ))


if __name__ == "__main__":
    main()
