"""Graceful-degradation characterization of the PIUMA DES.

Runs the Fig 5 medium point (``products`` window, K=256, 8 cores)
under the nested severity sweep that ``repro resilience`` exposes and
asserts the three promises of the degraded-fabric model (DESIGN.md,
"Degraded-fabric model"):

* **bit-identity under faults** — the fast and reference main loops
  agree on every observable at every severity, with the level-1
  invariant sanitizer armed (it observes, it never perturbs);
* **monotone slowdown** — the degraded unit sets nest with severity
  (fixed per-unit hash vs a growing threshold), so simulated window
  time never decreases along the curve;
* **derated Eq.5 envelope** — DES throughput over the model evaluated
  at the *effective* (derated, stall-discounted) aggregate bandwidth
  stays inside the oracle's per-kernel envelope.

It also smoke-checks the structured-failure path: a fabric whose DMA
engines are all dead must raise ``HardwareExhausted`` (never hang or
silently fall back), and the ``compute`` preset must complete with
work redistributed onto the surviving cores.

The curve goes to ``benchmarks/out/BENCH_resilience.json`` — the CI
``resilience`` lane uploads it as an artifact.
"""

import json
import time

import pytest

from conftest import OUT_DIR, PRODUCTS_WINDOW

from repro.graphs.datasets import get_dataset
from repro.piuma import (
    DEGRADATION_PRESETS,
    effective_total_bandwidth,
    simulate_spmm,
    spmm_model,
)
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import DegradationSpec
from repro.runtime.errors import HardwareExhausted
from repro.testing.oracle import ENVELOPES, result_signature

K = 256
N_CORES = 8
SEVERITIES = (0.0, 0.25, 0.5, 0.75, 1.0)


def _config(degradation, fast_path=True):
    return PIUMAConfig(
        n_cores=N_CORES, engine_fast_path=fast_path, check_level=1,
        degradation=degradation,
    )


def test_resilience(emit):
    adj = get_dataset("products").materialize(**PRODUCTS_WINDOW)
    started = time.perf_counter()

    curve = []
    previous = None
    low, high = ENVELOPES["dma"]
    for severity in SEVERITIES:
        spec = (DegradationSpec.at_severity(severity)
                if severity > 0.0 else None)
        fast = simulate_spmm(adj, K, _config(spec))
        reference = simulate_spmm(adj, K, _config(spec, fast_path=False))

        # Bit-identity under faults, sanitizer armed on both paths.
        assert result_signature(fast) == result_signature(reference), (
            f"engines diverged at severity {severity}"
        )

        config = _config(spec)
        bandwidth = effective_total_bandwidth(config)
        model = spmm_model(
            adj.n_rows, adj.nnz, K, config,
            read_bandwidth=bandwidth, write_bandwidth=bandwidth,
        )
        efficiency = fast.gflops / model.gflops
        assert low <= efficiency <= high, (
            f"severity {severity}: {efficiency:.3f} of the derated Eq.5 "
            f"model, outside [{low}, {high}]"
        )

        # Monotone graceful degradation: more broken fabric can only
        # slow the window down (nested fault sets + max-rule rerouting).
        if previous is not None:
            assert fast.sim_time_ns >= previous, (
                f"severity {severity} ran faster than the previous point "
                f"({fast.sim_time_ns} < {previous} ns)"
            )
        previous = fast.sim_time_ns

        curve.append({
            "severity": severity,
            "sim_time_ns": fast.sim_time_ns,
            "slowdown": fast.sim_time_ns / curve[0]["sim_time_ns"]
            if curve else 1.0,
            "effective_bandwidth_gbps": bandwidth,
            "gflops": fast.gflops,
            "derated_model_gflops": model.gflops,
            "derated_efficiency": efficiency,
            "events": fast.events,
        })

    # Dead compute redistributes; dead DMA is a structured failure.
    survivors = simulate_spmm(adj, K, _config(DEGRADATION_PRESETS["compute"]))
    assert survivors.sim_time_ns > 0
    with pytest.raises(HardwareExhausted):
        simulate_spmm(
            adj, K, _config(DegradationSpec(dead_dma_fraction=1.0))
        )

    wall = time.perf_counter() - started
    payload = {
        "point": {
            "dataset": "products",
            **PRODUCTS_WINDOW,
            "embedding_dim": K,
            "n_cores": N_CORES,
            "check_level": 1,
        },
        "curve": curve,
        "envelope": [low, high],
        "compute_preset_sim_time_ns": survivors.sim_time_ns,
        "bench_wall_s": wall,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_resilience.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    emit(
        "resilience",
        "\n".join(
            [f"point: products {PRODUCTS_WINDOW} K={K} n_cores={N_CORES} "
             f"(check_level=1, both engines per severity)"]
            + [f"severity {p['severity']:.2f}: {p['sim_time_ns']:>9,.0f} ns "
               f"({p['slowdown']:.2f}x, bw {p['effective_bandwidth_gbps']:.0f}"
               f" GB/s, eff {p['derated_efficiency']:.2f})"
               for p in curve]
            + [f"[written to {path}]"]
        ),
    )
