"""Fig 3: CPU execution-time breakdown across OGB workloads and K.

Left axis of the paper's figure: percentage split of SpMM / Dense MM /
Glue per dataset per hidden dimension.  Right axis: absolute SpMM and
Dense MM times.  Also benchmarks a *functional* instrumented inference
on a down-scaled `arxiv` so the harness exercises the real numpy
kernels, not just the model.
"""

from repro.core.gcn import GCNConfig, GCNModel
from repro.core.inference import profile_inference
from repro.cpu.gcn import gcn_breakdown as cpu_gcn_breakdown
from repro.graphs.datasets import get_dataset, list_datasets
from repro.report.figures import breakdown_chart
from repro.report.tables import format_table, format_time_ns
from repro.workloads.gcn_workload import workload_for
from repro.workloads.sweeps import EMBEDDING_SWEEP


def test_fig3_cpu_breakdown(benchmark, emit, xeon):
    def evaluate():
        return {
            (name, k): cpu_gcn_breakdown(workload_for(name, k), xeon)
            for name in list_datasets()
            for k in EMBEDDING_SWEEP
        }

    results = benchmark(evaluate)

    bars = breakdown_chart(
        [
            (f"{name:10s} K={k:<3d}", results[(name, k)])
            for name in list_datasets()
            for k in (8, 64, 256)
        ]
    )
    absolute = format_table(
        ["dataset", "K", "SpMM", "Dense MM", "total"],
        [
            [name, k,
             format_time_ns(results[(name, k)].spmm),
             format_time_ns(results[(name, k)].dense),
             format_time_ns(results[(name, k)].total)]
            for name in list_datasets()
            for k in EMBEDDING_SWEEP
        ],
        title="Absolute kernel times (right axis of Fig 3)",
    )
    emit("fig3_cpu_breakdown", bars + "\n\n" + absolute)

    for name in ("proteins", "ppa", "products", "papers"):
        assert results[(name, 256)].fraction("spmm") > 0.75


def test_fig3_functional_inference(benchmark, emit):
    """Ground the model with a real numpy GCN on down-scaled arxiv."""
    adj = get_dataset("arxiv").materialize(max_vertices=20_000, seed=3)
    model = GCNModel(adj, GCNConfig(in_dim=128, hidden_dim=64, out_dim=48))
    features = model.random_features(seed=1)

    profile = benchmark(profile_inference, model, features)

    wall = profile.wall
    emit(
        "fig3_functional_arxiv20k",
        f"functional 3-layer GCN on arxiv/20k vertices, hidden 64\n"
        f"wall: spmm={format_time_ns(wall.spmm * 1e9)} "
        f"dense={format_time_ns(wall.dense * 1e9)} "
        f"glue={format_time_ns(wall.glue * 1e9)}\n"
        f"flops={profile.total_flops:,}",
    )
    assert profile.output.shape == (adj.n_rows, 48)
