"""Fig 8: PIUMA versus Xeon on `products`.

Left: system bandwidth against active cores/threads (CPU STREAM curve
with its hyperthreading dip versus PIUMA's linear slice scaling).
Middle: SpMM throughput strong scaling.  Right: execution-time
composition of a 16-core PIUMA system across embedding dimensions
(NNZ share collapses as K grows).

The DES points (middle and right panels) run through the cached,
process-parallel sweep runner; the analytical CPU curves are evaluated
inline — they cost microseconds.
"""

from conftest import products_task

from repro.cpu.spmm import spmm_time
from repro.cpu.stream import stream_bandwidth
from repro.graphs.datasets import get_dataset
from repro.piuma import PIUMAConfig
from repro.report.figures import series_chart
from repro.report.tables import format_table

CPU_THREADS = (1, 2, 4, 8, 16, 32, 40, 80, 120, 160)
PIUMA_CORES = (1, 2, 4, 8, 16, 32)
PRODUCTS = get_dataset("products")


def test_fig8_left_bandwidth(benchmark, emit, xeon):
    curve = benchmark(
        lambda: [stream_bandwidth(n, xeon) for n in CPU_THREADS]
    )

    piuma = [
        PIUMAConfig(n_cores=c).total_bandwidth_gbps for c in PIUMA_CORES
    ]
    chart = (
        series_chart(CPU_THREADS, [("CPU GB/s", curve)], x_label="threads")
        + "\n\n"
        + series_chart(
            PIUMA_CORES, [("PIUMA GB/s", piuma)], x_label="cores"
        )
    )
    emit("fig8_left_bandwidth", chart)

    peak_index = CPU_THREADS.index(80)
    assert curve[peak_index] == max(curve)        # peak at physical cores
    assert curve[-1] < curve[peak_index]          # HT contention dip
    # PIUMA passes the CPU's best bandwidth within ~16 cores.
    crossover = next(
        c for c, bw in zip(PIUMA_CORES, piuma) if bw > max(curve)
    )
    assert crossover <= 16


def test_fig8_middle_strong_scaling(benchmark, emit, sweep_runner, xeon):
    tasks = [products_task(256, n_cores=c) for c in PIUMA_CORES]

    def run():
        piuma = [r["gflops"] for r in sweep_runner(tasks).records]
        cpu = [
            spmm_time(
                PRODUCTS.n_vertices,
                PRODUCTS.n_edges + PRODUCTS.n_vertices,
                256,
                xeon,
                n_cores=c,
                skew=PRODUCTS.locality,
            ).gflops
            for c in PIUMA_CORES
        ]
        return piuma, cpu

    piuma, cpu = benchmark.pedantic(run, rounds=1, iterations=1)

    base = piuma[0]
    chart = series_chart(
        PIUMA_CORES,
        [
            ("PIUMA dma", [v / base for v in piuma]),
            ("CPU vertex-par", [v / base for v in cpu]),
        ],
        x_label="cores",
    )
    emit(
        "fig8_middle_strong_scaling",
        "SpMM on products, K=256, normalized to 1-core PIUMA\n" + chart,
    )

    # PIUMA strong-scales near-linearly; the CPU curve flattens as the
    # socket bandwidth saturates.
    assert piuma[-1] / piuma[0] > 20
    assert cpu[-1] / cpu[0] < 12


def test_fig8_right_piuma_composition(benchmark, emit, sweep_runner):
    dims = (8, 64, 256)
    tasks = [products_task(k, n_cores=16) for k in dims]

    def run():
        report = sweep_runner(tasks)
        out = {}
        for k, record in zip(dims, report.records):
            tag_stats = record["tag_stats"]
            total_bytes = sum(s["bytes"] for s in tag_stats.values())
            out[k] = {
                tag: stats["bytes"] / total_bytes
                for tag, stats in tag_stats.items()
            }
        return out

    shares = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [k,
         f"{shares[k].get('nnz', 0):.3%}",
         f"{shares[k].get('dma_read', 0):.3%}",
         f"{shares[k].get('dma_write', 0):.3%}"]
        for k in dims
    ]
    emit(
        "fig8_right_composition",
        format_table(
            ["K", "NNZ reads", "DMA reads", "DMA writes"],
            rows,
            title="Memory-traffic composition, 16-core PIUMA (Fig 8 right)",
        ),
    )

    assert shares[8]["nnz"] > 8 * shares[256]["nnz"]
