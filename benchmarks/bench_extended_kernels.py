"""Benches for the extended PIUMA kernel family and DGAS scaling.

Beyond the paper's two kernels: the simulated Dense MM (validating the
scalar-pipeline roofline the paper takes from its ref [21]), the full
Section IV-B parallelization design space (edge / static vertex /
dynamic vertex), and multi-node DGAS scaling.
"""

from repro.graphs.rmat import GRAPH500, RMATParams, rmat_graph
from repro.piuma import (
    PIUMAConfig,
    peak_mac_gflops,
    simulate_dense_mm,
    simulate_spmm,
    spmm_model,
)
from repro.piuma.spmm_dynamic import simulate_spmm_dynamic
from repro.report.tables import format_table


def test_dense_kernel_roofline(benchmark, emit):
    """Simulated GEMM vs the scalar MAC peak across shapes."""
    cfg = PIUMAConfig(n_cores=8)
    shapes = ((256, 256), (64, 64), (8, 8), (2, 2))

    def run():
        return {
            s: simulate_dense_mm(100_000, s[0], s[1], cfg) for s in shapes
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    peak = peak_mac_gflops(cfg)
    emit(
        "dense_kernel_roofline",
        format_table(
            ["in x out", "GFLOP/s", "of scalar peak", "pipe util"],
            [[f"{a}x{b}", f"{results[(a, b)].gflops:.1f}",
              f"{results[(a, b)].gflops / peak:.0%}",
              f"{results[(a, b)].pipeline_utilization:.0%}"]
             for a, b in shapes],
            title=f"Simulated Dense MM on 8 cores (peak {peak:.0f} GF/s)",
        ),
    )
    assert results[(256, 256)].gflops > 0.6 * peak
    assert results[(2, 2)].gflops < 0.5 * peak


def test_parallelization_design_space(benchmark, emit, products_graph):
    """Section IV-B completed: all three work divisions, two graphs."""
    uniform = rmat_graph(
        RMATParams(scale=13, edge_factor=16, abcd=(0.25, 0.25, 0.25, 0.25)),
        seed=2,
    )
    skewed = rmat_graph(
        RMATParams(scale=13, edge_factor=16, abcd=GRAPH500), seed=2
    )
    cfg = PIUMAConfig(n_cores=16)

    def run():
        out = {}
        for name, graph in (("uniform", uniform), ("skewed", skewed)):
            out[name] = {
                "edge": simulate_spmm(graph, 64, cfg, "dma").gflops,
                "vertex": simulate_spmm(graph, 64, cfg, "vertex").gflops,
                "dynamic": simulate_spmm_dynamic(graph, 64, cfg).gflops,
            }
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "parallelization_design_space",
        format_table(
            ["graph", "edge+atomics", "vertex static", "vertex dynamic"],
            [[name,
              f"{r['edge']:.0f}", f"{r['vertex']:.0f}", f"{r['dynamic']:.0f}"]
             for name, r in results.items()],
            title="SpMM GFLOP/s by work division (16 cores, K=64)",
        ),
    )
    skewed_r = results["skewed"]
    assert skewed_r["edge"] > skewed_r["dynamic"] > skewed_r["vertex"]
    uniform_r = results["uniform"]
    assert uniform_r["vertex"] > 0.7 * uniform_r["edge"]


def test_multinode_dgas_scaling(benchmark, emit, products_graph):
    """Key Takeaway 1 of Section V in the DES: bandwidth scales with
    nodes, and the DMA kernel stays near the model across the 400 ns
    node tier."""
    node_counts = (1, 2, 4)

    def run():
        rows = []
        for n in node_counts:
            cfg = PIUMAConfig.multinode(n)
            result = simulate_spmm(products_graph, 64, cfg, "dma")
            model = spmm_model(
                products_graph.n_rows, products_graph.nnz, 64, cfg
            )
            rows.append((n, result.gflops, model.gflops))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "multinode_dgas_scaling",
        format_table(
            ["nodes", "DES GF/s", "model GF/s", "efficiency"],
            [[n, f"{des:.0f}", f"{model:.0f}", f"{des / model:.2f}"]
             for n, des, model in rows],
            title="Multi-node DGAS SpMM scaling (8 cores per node)",
        ),
    )
    assert rows[-1][1] > 2.5 * rows[0][1]  # 4 nodes ~4x one node
    assert all(des / model > 0.6 for _n, des, model in rows)
