"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper: it computes
the series, renders it as text, prints it (visible with ``pytest -s``)
and writes it to ``benchmarks/out/<name>.txt`` so the artifacts survive
the run.
"""

import os
import pathlib

import pytest

from repro.cpu.config import XeonConfig
from repro.gpu.config import A100Config
from repro.graphs.datasets import get_dataset
from repro.piuma.config import PIUMAConfig
from repro.runtime import ResultCache, run_sweep, spmm_task

OUT_DIR = pathlib.Path(__file__).parent / "out"

#: Down-scaling parameters of the shared ``products`` window — tasks
#: built with :func:`products_task` reference exactly the graph the
#: ``products_graph`` fixture materializes.
PRODUCTS_WINDOW = {"max_vertices": 16384, "seed": 7}


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table/figure to benchmarks/out and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name, text):
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def xeon():
    return XeonConfig()


@pytest.fixture(scope="session")
def a100():
    return A100Config()


@pytest.fixture(scope="session")
def piuma_node():
    return PIUMAConfig.node()


def products_task(embedding_dim, kernel="dma", **config_overrides):
    """A sweep-runner task over the shared ``products`` window."""
    return spmm_task(
        "products", embedding_dim, kernel=kernel,
        **PRODUCTS_WINDOW, **config_overrides,
    )


@pytest.fixture(scope="session")
def sweep_runner():
    """Run task lists through the cached, process-parallel runner.

    Knobs (environment):

    * ``REPRO_SWEEP_CACHE=0`` — disable the on-disk result cache (a
      warm rerun is otherwise >=5x faster than a cold one);
    * ``REPRO_SWEEP_WORKERS=N`` — process-pool size (default
      ``min(4, CPUs)``);
    * ``REPRO_SWEEP_TIMEOUT_S=S`` — per-point wall-clock budget (a
      hung point fails the bench fast instead of wedging CI);
    * ``REPRO_SWEEP_RETRIES=N`` — retry attempts per failed point
      (default 1: one respawn absorbs a transient worker death).
    """
    cache = ResultCache(
        enabled=os.environ.get("REPRO_SWEEP_CACHE", "1") != "0"
    )
    timeout_env = os.environ.get("REPRO_SWEEP_TIMEOUT_S")
    timeout = float(timeout_env) if timeout_env else None
    retries = int(os.environ.get("REPRO_SWEEP_RETRIES", "1"))

    def _run(tasks):
        report = run_sweep(tasks, cache=cache, timeout=timeout,
                           retries=retries)
        print(f"\n[sweep] {report.summary()}")
        return report

    return _run


@pytest.fixture(scope="session")
def products_graph():
    """Down-scaled materialization of `products` for DES runs.

    16k vertices with the full graph's average degree; the simulator's
    window projection handles the rest (DESIGN.md, down-scaled
    simulation).
    """
    return get_dataset("products").materialize(max_vertices=16384, seed=7)
