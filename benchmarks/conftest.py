"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper: it computes
the series, renders it as text, prints it (visible with ``pytest -s``)
and writes it to ``benchmarks/out/<name>.txt`` so the artifacts survive
the run.
"""

import pathlib

import pytest

from repro.cpu.config import XeonConfig
from repro.gpu.config import A100Config
from repro.graphs.datasets import get_dataset
from repro.piuma.config import PIUMAConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def emit():
    """Write a rendered table/figure to benchmarks/out and echo it."""
    OUT_DIR.mkdir(exist_ok=True)

    def _emit(name, text):
        path = OUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[written to {path}]")

    return _emit


@pytest.fixture(scope="session")
def xeon():
    return XeonConfig()


@pytest.fixture(scope="session")
def a100():
    return A100Config()


@pytest.fixture(scope="session")
def piuma_node():
    return PIUMAConfig.node()


@pytest.fixture(scope="session")
def products_graph():
    """Down-scaled materialization of `products` for DES runs.

    16k vertices with the full graph's average degree; the simulator's
    window projection handles the rest (DESIGN.md, down-scaled
    simulation).
    """
    return get_dataset("products").materialize(max_vertices=16384, seed=7)
