"""Fig 4: GPU execution-time breakdown.

Offload dominates the graphs that fit on the A100; `papers` does not
fit and is crushed by host-side sampling.
"""

from repro.gpu.footprint import fits_on_gpu
from repro.gpu.gcn import gcn_breakdown as gpu_gcn_breakdown
from repro.graphs.datasets import list_datasets
from repro.report.figures import breakdown_chart
from repro.report.tables import format_table, format_time_ns
from repro.workloads.gcn_workload import workload_for
from repro.workloads.sweeps import EMBEDDING_SWEEP


def test_fig4_gpu_breakdown(benchmark, emit, a100):
    def evaluate():
        return {
            (name, k): gpu_gcn_breakdown(workload_for(name, k), a100)
            for name in list_datasets()
            for k in EMBEDDING_SWEEP
        }

    results = benchmark(evaluate)

    bars = breakdown_chart(
        [
            (f"{name:10s} K={k:<3d}", results[(name, k)])
            for name in list_datasets()
            for k in (8, 64, 256)
        ]
    )
    fits = format_table(
        ["dataset", "fits on A100-40GB", "total (K=64)"],
        [
            [name,
             "yes" if fits_on_gpu(workload_for(name, 64), a100) else "NO",
             format_time_ns(results[(name, 64)].total)]
            for name in list_datasets()
        ],
        title="Capacity gate",
    )
    emit("fig4_gpu_breakdown", bars + "\n\n" + fits)

    papers = results[("papers", 64)]
    assert papers.fraction("sampling") + papers.fraction("offload") > 0.95
    for name in ("arxiv", "products"):
        assert results[(name, 8)].fraction("offload") > 0.45
