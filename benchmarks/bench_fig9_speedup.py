"""Fig 9: single-node PIUMA and A100 speedups over the dual-socket Xeon.

Bars: whole-GCN speedup.  Diamonds: SpMM-kernel speedup.  Includes the
RMAT power graphs the paper adds as low-locality stress tests.
"""

from repro.core.speedup import compare_platforms
from repro.graphs.datasets import list_datasets
from repro.report.tables import format_table
from repro.workloads.gcn_workload import workload_for
from repro.workloads.sweeps import EMBEDDING_SWEEP

DATASETS = list_datasets(include_power=True)


def test_fig9_speedups(benchmark, emit, xeon, a100, piuma_node):
    def run():
        return {
            (name, k): compare_platforms(
                workload_for(name, k), xeon, a100, piuma_node
            )
            for name in DATASETS
            for k in EMBEDDING_SWEEP
        }

    results = benchmark(run)

    rows = []
    for name in DATASETS:
        for k in (8, 64, 256):
            c = results[(name, k)]
            rows.append(
                [name, k,
                 f"{c.gcn_speedup('piuma'):.2f}x",
                 f"{c.gcn_speedup('gpu'):.2f}x",
                 f"{c.spmm_speedup('piuma'):.2f}x",
                 f"{c.spmm_speedup('gpu'):.2f}x"]
            )
    emit(
        "fig9_speedups",
        format_table(
            ["dataset", "K", "PIUMA GCN", "GPU GCN",
             "PIUMA SpMM", "GPU SpMM"],
            rows,
            title="Speedup vs dual-socket Xeon (bars=GCN, diamonds=SpMM)",
        ),
    )

    for name in DATASETS:
        for k in EMBEDDING_SWEEP:
            assert results[(name, k)].gcn_speedup("piuma") > 1.0, (name, k)
    # PIUMA's edge shrinks with K; the GPU's grows.
    assert (results[("products", 8)].gcn_speedup("piuma")
            > results[("products", 256)].gcn_speedup("piuma"))
    assert (results[("products", 8)].gcn_speedup("gpu")
            < results[("products", 256)].gcn_speedup("gpu"))
    # papers is catastrophic on GPU.
    assert results[("papers", 64)].gcn_speedup("gpu") < 0.2
