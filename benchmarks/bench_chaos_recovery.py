"""Recovered-vs-lost work and recovery latency under injected faults.

Two layers (DESIGN.md §13):

* **shard scenarios** — :func:`repro.runtime.shard.run_shards` fleets
  with scripted fault plans (clean, crash+retry, hedged straggler,
  permanently dead shard), measuring wall-clock recovery latency
  against the clean fleet and accounting every shard as recovered /
  degraded-to-fallback / lost — **lost must be zero** in every
  scenario;
* **full campaign** — one seeded :func:`repro.runtime.chaos.run_chaos`
  round across all three frontends, folding its injected / recovered /
  lost totals into the same table.

The numbers go to ``benchmarks/out/BENCH_chaos.json`` — the CI
``chaos`` lane runs the orchestrator directly and uploads the verdict
artifact on failure.
"""

import json
import time

from conftest import OUT_DIR

from repro.report.tables import format_table
from repro.runtime.chaos import run_chaos
from repro.runtime.faults import FaultyTask
from repro.runtime.shard import ShardRecovery, run_shards

N_SHARDS = 6
WORKERS = 3

#: (scenario, per-shard fault plans, recovery spec).  Unlisted shards
#: run clean.  The hang is far longer than any test budget — only a
#: hedge or timeout ends it.
SCENARIOS = (
    ("clean", {}, ShardRecovery(retries=2)),
    ("crash_retry", {0: ("crash", "ok"), 3: ("crash", "ok")},
     ShardRecovery(retries=2)),
    ("flaky_retry", {1: ("raise", "ok"), 4: ("raise", "raise", "ok")},
     ShardRecovery(retries=3)),
    ("hedged_straggler", {2: ("hang", "ok")},
     ShardRecovery(retries=2, timeout=30.0, hedge_after_s=0.3)),
    ("dead_shard", {5: ("raise",)}, ShardRecovery(retries=1)),
)


def _fleet(scratch, plans):
    return [
        FaultyTask(name=f"shard{i}", scratch=str(scratch),
                   plan=plans.get(i, ("ok",)), hang_s=600.0)
        for i in range(N_SHARDS)
    ]


def test_chaos_recovery(emit, tmp_path):
    rows = []
    doc = {"scenarios": [], "campaign": None}
    clean_wall = None
    for name, plans, recovery in SCENARIOS:
        started = time.perf_counter()
        report = run_shards(_fleet(tmp_path / name, plans), recovery,
                            workers=WORKERS)
        wall_s = time.perf_counter() - started

        recovered = sum(
            1 for r in report.records
            if r["source"] == "simulation"
            and r.get("recovery", {}).get("attempts", 1) > 1
        ) + report.recovery["hedges_won"]
        fallbacks = sum(1 for r in report.records
                        if r["source"] != "simulation")
        lost = sum(1 for r in report.records if r is None)

        # The ledger must balance: every shard reaches a terminal,
        # structured outcome — nothing is silently dropped.
        assert lost == 0, f"{name}: lost shards"
        assert len(report.records) == N_SHARDS
        assert fallbacks == report.recovery["fallbacks"]
        if name == "clean":
            clean_wall = wall_s
            assert report.recovery["retries"] == 0
        if name == "hedged_straggler":
            assert report.recovery["hedges_won"] >= 1
            assert wall_s < 600.0

        latency_s = wall_s - (clean_wall or 0.0)
        rows.append([
            name, len(plans), recovered, fallbacks, lost,
            report.recovery["retries"], report.recovery["hedges_won"],
            f"{wall_s:.2f}", f"{max(latency_s, 0.0):.2f}",
        ])
        doc["scenarios"].append({
            "scenario": name,
            "injected": len(plans),
            "recovered": recovered,
            "fallbacks": fallbacks,
            "lost": lost,
            "wall_s": wall_s,
            "recovery_latency_s": max(latency_s, 0.0),
            "recovery": dict(report.recovery),
        })

    verdict = run_chaos(seed=0, rounds=1,
                        workdir=tmp_path / "campaign")
    assert verdict["passed"], "chaos campaign failed"
    assert verdict["stats"]["lost"] == 0
    stats = verdict["stats"]
    rows.append([
        "campaign(seed 0)", stats["injected"],
        stats["recovered_retry"] + stats["recovered_hedge"],
        stats["degraded_fallback"], stats["lost"], "-", "-",
        f"{stats['wall_s']:.2f}", "-",
    ])
    doc["campaign"] = {
        "seed": 0,
        "passed": verdict["passed"],
        "stats": stats,
    }

    text = format_table(
        ["scenario", "injected", "recovered", "fallback", "lost",
         "retries", "hedges", "wall s", "latency s"],
        rows,
        title=f"chaos recovery ({N_SHARDS} shards, {WORKERS} workers; "
              "latency vs the clean fleet)",
    )
    emit("chaos_recovery", text)
    path = OUT_DIR / "BENCH_chaos.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"[written to {path}]")
