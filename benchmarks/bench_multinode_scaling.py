"""Strong-scaling characterization of the sharded multi-node DES.

Shards the ``papers`` window (the paper's largest dataset, 111M
vertices at full scale) across {1, 2, 4, 8} simulated PIUMA nodes with
both partitioning strategies and assembles the bulk-synchronous
end-to-end estimate per point, asserting the sharded runner's contracts
on the way (DESIGN.md §12):

* **1-node bit-identity** — the single-shard task's DES observables
  equal the plain monolithic :class:`SpMMTask` record exactly;
* **exact conservation** — summed shard counters reproduce the
  monolithic totals at every node count and strategy;
* **Eq.5 DGAS envelope** — every assembled time stays inside the
  calibrated multi-node envelope of ``repro.ext.distributed``;
* **strategy comparison** — the degree-aware partition never balances
  worse than the equal-vertex blocks on this skewed graph.

The per-strategy scaling rows (communication volume, cut fraction,
load balance, speedup, DGAS ratio) go to
``benchmarks/out/BENCH_multinode.json`` — the CI ``multinode`` lane
uploads it as an artifact — and the speedup curves render as the
strong-scaling figure.
"""

import json
import os
import time

from conftest import OUT_DIR

from repro.ext.distributed import MULTINODE_ENVELOPES
from repro.piuma.multinode import scaling_figure, strong_scaling
from repro.runtime import ResultCache, spmm_task
from repro.runtime.shard import conserved_counters, shard_tasks

DATASET = "papers"
K = 128  # the dataset's feature dim
NODES = (1, 2, 4, 8)
STRATEGIES = ("block", "degree")
PAPERS_WINDOW = {"max_vertices": 16384, "seed": 7}

#: DES observables that must be bit-equal between the 1-shard task and
#: the monolithic task (host-clock fields excluded by construction).
BIT_FIELDS = (
    "n_vertices", "n_edges", "gflops", "projected_time_ns", "sim_time_ns",
    "window_edges", "total_edges", "memory_utilization",
    "achieved_bandwidth", "events", "tag_stats", "scheduler", "engine",
)


def test_multinode_scaling(emit):
    cache = ResultCache(
        enabled=os.environ.get("REPRO_SWEEP_CACHE", "1") != "0"
    )
    started = time.perf_counter()

    # 1-node bit-identity: sharding adds no numerical surface.
    mono = spmm_task(DATASET, K, **PAPERS_WINDOW).run()
    one = shard_tasks(DATASET, K, 1, **PAPERS_WINDOW)[0].run()
    for field in BIT_FIELDS:
        assert one[field] == mono[field], (
            f"1-shard task diverged from monolithic on {field}"
        )

    study = strong_scaling(
        DATASET, nodes=NODES, strategies=STRATEGIES, embedding_dim=K,
        sweep_kwargs={"cache": cache, "retries": 1},
        **PAPERS_WINDOW,
    )
    rows = study["rows"]

    low, high = MULTINODE_ENVELOPES["dma"]
    whole = conserved_counters(
        mono["n_vertices"], mono["n_edges"], K,
        shard_tasks(DATASET, K, 1, **PAPERS_WINDOW)[0].config(),
    )
    for row in rows:
        # Exact conservation at every (strategy, node-count) point.
        assert row["conserved"] == whole, (
            f"{row['strategy']}@{row['n_nodes']}: shard counters do not "
            "sum to the monolithic totals"
        )
        assert low <= row["dgas_ratio"] <= high, (
            f"{row['strategy']}@{row['n_nodes']}: {row['dgas_ratio']:.3f}x "
            f"the Eq.5 DGAS time, outside [{low}, {high}]"
        )
        assert row["failures"] == 0

    by = {(r["strategy"], r["n_nodes"]): r for r in rows}
    for n in NODES[1:]:
        # The Accel-GCN argument: equal-edge-load blocks bound the
        # straggler, equal-vertex blocks pay the skew.
        assert by[("degree", n)]["balance"] <= by[("block", n)]["balance"], (
            f"degree-aware partition balanced worse at {n} nodes"
        )

    figure = scaling_figure(rows, NODES)
    wall = time.perf_counter() - started

    payload = {
        "point": {
            "dataset": DATASET,
            **PAPERS_WINDOW,
            "embedding_dim": K,
            "kernel": "dma",
        },
        "nodes": list(NODES),
        "strategies": list(STRATEGIES),
        "envelope": [low, high],
        "rows": rows,
        "bench_wall_s": wall,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_multinode.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    emit(
        "multinode_scaling",
        "\n".join(
            [f"point: {DATASET} {PAPERS_WINDOW} K={K} dma, "
             f"nodes={list(NODES)}, strategies={list(STRATEGIES)}"]
            + [f"{r['strategy']:>6} @ {r['n_nodes']} node(s): "
               f"{r['time_ns']:>12,.0f} ns  speedup {r['speedup']:.2f}x  "
               f"eff {r['efficiency']:.2f}  comm {100 * r['comm_share']:.1f}%"
               f"  cut {100 * r['cut_fraction']:.1f}%  "
               f"balance {r['balance']:.3f}  "
               f"halo {r['halo_bytes'] / 1e6:.2f} MB  "
               f"dgas {r['dgas_ratio']:.2f}x"
               for r in rows]
            + ["", figure, f"[written to {path}]"]
        ),
    )
