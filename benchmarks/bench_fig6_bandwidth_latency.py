"""Fig 6: DRAM bandwidth (top) and latency (bottom) sensitivity of the
DMA SpMM kernel for 2/4/8-core PIUMA systems at K in {8, 256}."""

from repro.piuma import PIUMAConfig, simulate_spmm
from repro.report.figures import series_chart
from repro.workloads.sweeps import BANDWIDTH_SWEEP, LATENCY_SWEEP_NS

CORES = (2, 4, 8)
DIMS = (8, 256)


def test_fig6_bandwidth_sweep(benchmark, emit, products_graph):
    def run():
        series = {}
        for cores in CORES:
            for k in DIMS:
                series[(cores, k)] = [
                    simulate_spmm(
                        products_graph, k,
                        PIUMAConfig(n_cores=cores, dram_bandwidth_scale=s),
                        "dma",
                    ).gflops
                    for s in BANDWIDTH_SWEEP
                ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    nominal = BANDWIDTH_SWEEP.index(1.0)
    chart = series_chart(
        BANDWIDTH_SWEEP,
        [
            (f"{c}c/K={k}", [v / series[(c, k)][nominal]
                             for v in series[(c, k)]])
            for c in CORES for k in DIMS
        ],
        x_label="bw scale",
    )
    emit("fig6_bandwidth_sweep", "GFLOPS normalized to nominal bw\n" + chart)

    # Linear scaling: doubling bandwidth roughly doubles throughput.
    for key, values in series.items():
        ratio = values[-1] / values[nominal]
        assert ratio > 1.6, (key, ratio)


def test_fig6_latency_sweep(benchmark, emit, products_graph):
    def run():
        series = {}
        for cores in CORES:
            for k in DIMS:
                series[(cores, k)] = [
                    simulate_spmm(
                        products_graph, k,
                        PIUMAConfig(n_cores=cores, dram_latency_ns=lat),
                        "dma",
                    ).gflops
                    for lat in LATENCY_SWEEP_NS
                ]
        return series

    series = benchmark.pedantic(run, rounds=1, iterations=1)

    chart = series_chart(
        LATENCY_SWEEP_NS,
        [
            (f"{c}c/K={k}", [v / series[(c, k)][0] for v in series[(c, k)]])
            for c in CORES for k in DIMS
        ],
        x_label="latency ns",
    )
    emit("fig6_latency_sweep", "GFLOPS normalized to 45 ns\n" + chart)

    # Latency-insensitive up to 360 ns with the default 16 threads/MTP.
    for key, values in series.items():
        at_360 = values[LATENCY_SWEEP_NS.index(360)]
        assert at_360 / values[0] > 0.7, (key, at_360 / values[0])
