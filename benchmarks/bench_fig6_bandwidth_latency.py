"""Fig 6: DRAM bandwidth (top) and latency (bottom) sensitivity of the
DMA SpMM kernel for 2/4/8-core PIUMA systems at K in {8, 256}.

Both grids run through the cached, process-parallel sweep runner: a
warm rerun is served entirely from ``benchmarks/out/.cache`` (set
``REPRO_SWEEP_CACHE=0`` to force re-simulation).
"""

from conftest import products_task

from repro.report.figures import series_chart
from repro.workloads.sweeps import BANDWIDTH_SWEEP, LATENCY_SWEEP_NS

CORES = (2, 4, 8)
DIMS = (8, 256)


def _series(report, axis_length):
    """Group flat in-order records into per-(cores, K) value lists."""
    values = [record["gflops"] for record in report.records]
    series = {}
    index = 0
    for cores in CORES:
        for k in DIMS:
            series[(cores, k)] = values[index:index + axis_length]
            index += axis_length
    return series


def test_fig6_bandwidth_sweep(benchmark, emit, sweep_runner):
    tasks = [
        products_task(k, n_cores=cores, dram_bandwidth_scale=scale)
        for cores in CORES for k in DIMS for scale in BANDWIDTH_SWEEP
    ]

    report = benchmark.pedantic(
        lambda: sweep_runner(tasks), rounds=1, iterations=1
    )
    series = _series(report, len(BANDWIDTH_SWEEP))

    nominal = BANDWIDTH_SWEEP.index(1.0)
    chart = series_chart(
        BANDWIDTH_SWEEP,
        [
            (f"{c}c/K={k}", [v / series[(c, k)][nominal]
                             for v in series[(c, k)]])
            for c in CORES for k in DIMS
        ],
        x_label="bw scale",
    )
    emit("fig6_bandwidth_sweep", "GFLOPS normalized to nominal bw\n" + chart)

    # Linear scaling: doubling bandwidth roughly doubles throughput.
    for key, values in series.items():
        ratio = values[-1] / values[nominal]
        assert ratio > 1.6, (key, ratio)


def test_fig6_latency_sweep(benchmark, emit, sweep_runner):
    tasks = [
        products_task(k, n_cores=cores, dram_latency_ns=float(latency))
        for cores in CORES for k in DIMS for latency in LATENCY_SWEEP_NS
    ]

    report = benchmark.pedantic(
        lambda: sweep_runner(tasks), rounds=1, iterations=1
    )
    series = _series(report, len(LATENCY_SWEEP_NS))

    chart = series_chart(
        LATENCY_SWEEP_NS,
        [
            (f"{c}c/K={k}", [v / series[(c, k)][0] for v in series[(c, k)]])
            for c in CORES for k in DIMS
        ],
        x_label="latency ns",
    )
    emit("fig6_latency_sweep", "GFLOPS normalized to 45 ns\n" + chart)

    # Latency-insensitive up to 360 ns with the default 16 threads/MTP.
    for key, values in series.items():
        at_360 = values[LATENCY_SWEEP_NS.index(360)]
        assert at_360 / values[0] > 0.7, (key, at_360 / values[0])
