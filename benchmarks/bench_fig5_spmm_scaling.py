"""Fig 5: SpMM strong scaling on PIUMA — DMA vs loop-unrolled vs model.

Simulates both kernels on the down-scaled `products` graph for 1-32
cores at K=256, normalized to single-core DMA performance exactly as
the paper plots it.  The grid runs through the cached, process-parallel
sweep runner (``repro.runtime``): records carry the matching Equation 5
model numbers, so no extra model evaluation is needed here.
"""

from conftest import products_task

from repro.report.figures import series_chart

CORES = (1, 2, 4, 8, 16, 32)
K = 256
KERNELS = ("dma", "loop")


def test_fig5_strong_scaling(benchmark, emit, sweep_runner):
    tasks = [
        products_task(K, kernel=kernel, n_cores=cores)
        for cores in CORES for kernel in KERNELS
    ]

    report = benchmark.pedantic(
        lambda: sweep_runner(tasks), rounds=1, iterations=1
    )

    by_point = {
        (dict(task.overrides)["n_cores"], task.kernel): record
        for task, record in zip(report.tasks, report.records)
    }
    rows = {
        cores: {
            "model": by_point[(cores, "dma")]["model_gflops"],
            "dma": by_point[(cores, "dma")]["gflops"],
            "loop": by_point[(cores, "loop")]["gflops"],
        }
        for cores in CORES
    }

    base = rows[1]["dma"]
    chart = series_chart(
        CORES,
        [
            ("model", [rows[c]["model"] / base for c in CORES]),
            ("dma", [rows[c]["dma"] / base for c in CORES]),
            ("loop", [rows[c]["loop"] / base for c in CORES]),
            ("dma/model", [rows[c]["dma"] / rows[c]["model"] for c in CORES]),
            ("loop/model", [rows[c]["loop"] / rows[c]["model"] for c in CORES]),
        ],
        x_label="cores",
    )
    emit("fig5_spmm_scaling", "normalized to 1-core DMA (K=256)\n" + chart)

    # Paper shapes: DMA within 10-20% of the model; loop-unrolled under
    # 40% of the model at high core counts.
    for cores in CORES:
        assert rows[cores]["dma"] / rows[cores]["model"] > 0.8, cores
    assert rows[32]["loop"] / rows[32]["model"] < 0.4
    assert rows[16]["loop"] / rows[16]["model"] < 0.5
