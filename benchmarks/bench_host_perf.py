"""Host performance of the DES engine across its backends.

This bench measures how fast the *simulator itself* runs on the host
(events per wall-clock second), not anything about PIUMA.  It executes
the Fig 5 medium point (`products` window, K=256, 8 cores) through
every main-loop / event-scheduler combination the engine ships:

* the **fast path** over the binary heap (``engine_fast_path=True``,
  ``scheduler="heap"`` — both defaults): peek-ahead continuation,
  type-dispatch with a fused DMA closure, per-op execution plans,
  timeline compaction, fused ``heappushpop`` switch;
* the **fast path** over the **calendar queue**
  (``scheduler="calendar"``): same loop semantics over the bucketed
  ring (Brown 1988) with lazy overflow spill and dynamic width
  retuning;
* the **reference path** (``engine_fast_path=False``): the plain
  pop/execute/push loop kept as the semantics oracle.

All combinations must produce bit-identical simulation results (also
enforced by ``tests/piuma/test_engine_fastpath.py`` and
``tests/piuma/test_scheduler.py``); here the bench additionally guards
the performance relationships.  Thresholds are *relative* ratios
measured in the same process, so the guards are machine-independent
and tolerant of slow CI hosts; the absolute per-backend columns (and
the recorded pre-PR baseline) go into
``benchmarks/out/BENCH_host_perf.json`` for eyeballing trends.

On the calendar backend's expectations, honestly: at this point's
queue population (~500 entries, one per runnable thread) CPython's
C-implemented ``heappushpop`` is only a few percent of the per-event
cost, so the pure-Python bucket ring cannot beat it — measured
~0.82-0.87x of the heap-backed fast path.  The guard therefore asserts
the calendar backend stays within a defensible floor of the heap
(no pathological regression — a broken cursor scan shows up as 10x,
not 15%), not that it wins.  Its O(1)-amortized structure is the
asset: the ratio column exists so a future larger-population workload
(or a compiled queue) can be judged against recorded history.

The reference loop shares the kernel-side optimizations (op interning,
vectorized owner-core resolution, memoized topology tables), so the
fast/reference ratio *understates* the improvement over the pre-PR
engine; the recorded baseline below is the pre-PR engine measured on
the same point (best of 5 ``Simulator.run`` walls, same host class).
"""

import json
import time

from conftest import OUT_DIR, PRODUCTS_WINDOW

from repro.graphs.datasets import get_dataset
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig

K = 256
N_CORES = 8
ROUNDS = 5

#: Pre-PR engine on this point (commit before the fast-path work):
#: best-of-5 ``Simulator.run`` wall seconds and the derived events/s,
#: measured with the same methodology as this bench.  Recorded — not
#: re-measured — because the old engine no longer exists in the tree.
PRE_PR_BASELINE = {
    "host_wall_s": 0.8151,
    "events_per_s": 67575,
    "method": "best-of-5 run() wall of the pre-fast-path engine, "
              "products 16384/seed7 K=256 n_cores=8",
}

#: Loop x scheduler combinations benched, in report order.
BACKENDS = (
    ("fast", dict(engine_fast_path=True, scheduler="heap")),
    ("fast-calendar", dict(engine_fast_path=True, scheduler="calendar")),
    ("reference", dict(engine_fast_path=False, scheduler="heap")),
)


def _best_run(adj, check_level=0, **backend):
    """Best-of-ROUNDS simulation; returns (result, best host seconds)."""
    best = None
    result = None
    for _ in range(ROUNDS):
        r = simulate_spmm(
            adj, K, PIUMAConfig(
                n_cores=N_CORES, check_level=check_level, **backend
            )
        )
        if best is None or r.host_wall_s < best:
            best = r.host_wall_s
            result = r
    return result, best


def _signature(result):
    return (
        result.sim_time_ns, result.gflops, result.memory_utilization,
        result.achieved_bandwidth, result.events, result.tag_stats,
    )


def test_host_perf(emit):
    adj = get_dataset("products").materialize(**{
        "max_vertices": PRODUCTS_WINDOW["max_vertices"],
        "seed": PRODUCTS_WINDOW["seed"],
    })
    started = time.perf_counter()
    runs = {
        name: _best_run(adj, **backend) for name, backend in BACKENDS
    }
    checked, checked_s = _best_run(
        adj, check_level=1, engine_fast_path=True, scheduler="heap"
    )
    wall = time.perf_counter() - started

    # Bit-identical simulation results on every backend combination.
    fast, fast_s = runs["fast"]
    for name, (result, _s) in runs.items():
        assert _signature(result) == _signature(fast), (
            f"{name} backend diverged from the fast path"
        )

    # The sanitizer observes, it never perturbs: level 1 must be
    # bit-identical to the unchecked run.
    assert _signature(checked) == _signature(fast)

    columns = {
        name: {"host_wall_s": s, "events_per_s": result.events / s}
        for name, (result, s) in runs.items()
    }
    fast_evs = columns["fast"]["events_per_s"]
    cal_evs = columns["fast-calendar"]["events_per_s"]
    ref_evs = columns["reference"]["events_per_s"]
    vs_ref = fast_evs / ref_evs
    cal_vs_fast = cal_evs / fast_evs
    vs_pre_pr = fast_evs / PRE_PR_BASELINE["events_per_s"]
    check_overhead = checked_s / fast_s

    payload = {
        "point": {
            "dataset": "products",
            **PRODUCTS_WINDOW,
            "embedding_dim": K,
            "n_cores": N_CORES,
            "rounds": ROUNDS,
        },
        "events": fast.events,
        "sim_time_ns": fast.sim_time_ns,
        **columns,
        "checked_level1": {
            "host_wall_s": checked_s,
            "events_per_s": checked.events / checked_s,
        },
        "check_level1_overhead": check_overhead,
        "fast_vs_reference": vs_ref,
        "calendar_vs_fast": cal_vs_fast,
        "pre_pr_baseline": PRE_PR_BASELINE,
        "fast_vs_pre_pr": vs_pre_pr,
        "bench_wall_s": wall,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_host_perf.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    cal_s = columns["fast-calendar"]["host_wall_s"]
    ref_s = columns["reference"]["host_wall_s"]
    emit(
        "host_perf",
        "\n".join([
            f"point: products {PRODUCTS_WINDOW} K={K} n_cores={N_CORES} "
            f"({fast.events:,} DES events)",
            f"fast path (heap):     {fast_s:.4f}s  "
            f"({fast_evs:,.0f} events/s)",
            f"fast path (calendar): {cal_s:.4f}s  "
            f"({cal_evs:,.0f} events/s)",
            f"reference path:       {ref_s:.4f}s  "
            f"({ref_evs:,.0f} events/s)",
            f"check_level=1:        {checked_s:.4f}s  "
            f"({check_overhead:.3f}x the unchecked fast path)",
            f"fast vs reference: {vs_ref:.2f}x",
            f"calendar vs fast-heap: {cal_vs_fast:.2f}x",
            f"fast vs pre-PR engine (recorded "
            f"{PRE_PR_BASELINE['events_per_s']:,} ev/s): {vs_pre_pr:.2f}x",
            f"[written to {path}]",
        ]),
    )

    # Tolerant, machine-independent regression guard: the fast path
    # must beat the reference loop measured on the same host in the
    # same process.  The margin is deliberately thin — the reference
    # loop shares the closure/interning/compaction work, so the
    # loop-only delta is ~1.15x and CI noise must not flake the lane.
    # (The committed JSON tracks the absolute numbers; asserting those
    # would flake across CI machines.)
    assert vs_ref >= 1.05, (
        f"fast path only {vs_ref:.2f}x the reference loop "
        f"({fast_evs:,.0f} vs {ref_evs:,.0f} events/s)"
    )

    # The calendar backend measures ~0.82-0.87x of the heap-backed fast
    # path here (see the module docstring for why it cannot win at this
    # queue population).  0.70x is the tripwire for a *structural*
    # regression — a broken cursor scan or runaway retune degrades the
    # queue to O(n) probes and lands far below it.
    assert cal_vs_fast >= 0.70, (
        f"calendar backend at {cal_vs_fast:.2f}x the heap-backed fast "
        f"path ({cal_evs:,.0f} vs {fast_evs:,.0f} events/s) — "
        "pathological scheduler regression"
    )

    # The level-1 sanitizer promises <10% hot-loop overhead (DESIGN.md,
    # "Runtime invariant sanitizer").  Same-process ratio, so the bound
    # is machine-independent; measured ~1.01x, leaving real headroom.
    assert check_overhead < 1.10, (
        f"check_level=1 costs {check_overhead:.3f}x the unchecked fast "
        f"path ({checked_s:.4f}s vs {fast_s:.4f}s) — over the 10% budget"
    )
