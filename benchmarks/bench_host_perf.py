"""Host performance of the DES engine across its backends.

This bench measures how fast the *simulator itself* runs on the host
(events per wall-clock second), not anything about PIUMA.  It executes
the Fig 5 medium point (`products` window, K=256, 8 cores) through
every main loop the engine ships, selected by the unified
``PIUMAConfig.engine`` knob:

* ``fast``: peek-ahead continuation over the binary heap —
  type-dispatch with a fused DMA closure, per-op execution plans,
  timeline compaction, fused ``heappushpop`` switch;
* ``calendar``: the same loop semantics over the calendar queue
  (Brown 1988) — bucketed ring with lazy overflow spill and dynamic
  width retuning;
* ``vector``: compiled op-program replay
  (``repro.piuma.vector_engine``) — every (op, core, mtp) plan is
  compiled at ``spawn_program`` time into a constant-bound closure,
  ``run()`` only replays them in exact (when, seq) event order with
  deferred integral counters settled post-run;
* ``reference``: the plain pop/execute/push loop kept as the
  semantics oracle.

All engines must produce bit-identical simulation results (also
enforced by ``tests/piuma/test_engine_fastpath.py``,
``tests/piuma/test_vector_engine.py`` and ``repro check``); here the
bench additionally guards the performance relationships.  Thresholds
are *relative* ratios measured in the same process with the rounds
interleaved round-robin across backends — host-frequency drift during
the bench then hits every backend equally instead of biasing whichever
ran last — so the guards are machine-independent and tolerant of slow
CI hosts.  Each backend reports the *median* of its rounds (stable
against one noisy round in either direction, unlike best-of) and the
raw per-round samples go into the JSON artifact so a flaky CI run can
be diagnosed from the record alone.

On the vector engine's expectations, honestly: moving plan compilation
to spawn time leaves ``run()`` a pure replay loop, measured ~1.85-2.05x
the fast path on this point (CPython 3.11) — short of the 2.5x this
engine was sized for.  The measured decomposition (DESIGN.md section
8) shows why: of the ~2.05 us/event replay cost, ~0.55 us is the
per-switch ``heappushpop`` on a ~500-entry queue (the exact
(when, seq) total order is the bit-identity contract, so the switch
cannot be elided) and ~1 us is the DRAM-timeline backfill/merge
charges of the striped DMAs (interval placement feeds back into
simulated time, so it cannot be batched out of the loop).  Both costs
are semantic, not overhead.  The guard asserts a 1.7x floor on the
median per-round ratio — high enough that losing the deferred-counter
machinery, spawn-time plan compilation, or the sentinel-terminated
tight loop each trips it immediately, low enough that a noisy shared
CI host does not — and the recorded columns track the real ratio.

On the calendar backend: at this point's queue population (~500
entries, one per runnable thread) CPython's C-implemented
``heappushpop`` is only a few percent of the per-event cost, so the
pure-Python bucket ring cannot beat it — measured ~0.82-0.87x of the
heap-backed fast path.  The 0.70x guard is the tripwire for a
*structural* regression (a broken cursor scan shows up as 10x, not
15%), not a claim that it wins.

The reference loop shares the kernel-side optimizations (op interning,
vectorized owner-core resolution, memoized topology tables), so the
fast/reference ratio *understates* the improvement over the pre-PR
engine; the recorded baseline below is the pre-PR engine measured on
the same point (best of 5 ``Simulator.run`` walls, same host class).
"""

import json
import statistics
import time

from conftest import OUT_DIR, PRODUCTS_WINDOW

from repro.graphs.datasets import get_dataset
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig

K = 256
N_CORES = 8
ROUNDS = 7

#: Pre-PR engine on this point (commit before the fast-path work):
#: best-of-5 ``Simulator.run`` wall seconds and the derived events/s,
#: measured with the same methodology as this bench.  Recorded — not
#: re-measured — because the old engine no longer exists in the tree.
PRE_PR_BASELINE = {
    "host_wall_s": 0.8151,
    "events_per_s": 67575,
    "method": "best-of-5 run() wall of the pre-fast-path engine, "
              "products 16384/seed7 K=256 n_cores=8",
}

#: Engines benched, in round order (the unified config knob).  The
#: vector engine runs immediately after the fast path inside every
#: round so the guarded pair is measured back-to-back — the tightest
#: pairing against host-frequency drift.
BACKENDS = ("fast", "vector", "calendar", "reference")

#: Floor on the median per-round vector/fast ratio (see docstring).
VECTOR_VS_FAST_FLOOR = 1.7


def _run_once(adj, engine, check_level=0):
    return simulate_spmm(
        adj, K, PIUMAConfig(
            n_cores=N_CORES, check_level=check_level, engine=engine,
        )
    )


def _signature(result):
    return (
        result.sim_time_ns, result.gflops, result.memory_utilization,
        result.achieved_bandwidth, result.events, result.tag_stats,
    )


def test_host_perf(emit):
    adj = get_dataset("products").materialize(**{
        "max_vertices": PRODUCTS_WINDOW["max_vertices"],
        "seed": PRODUCTS_WINDOW["seed"],
    })
    started = time.perf_counter()
    # One untimed warmup pass per backend (JIT-free, but it faults in
    # code objects, datasets, and the branch predictor), then ROUNDS
    # timed rounds interleaved round-robin so host drift is unbiased.
    results = {}
    for engine in BACKENDS:
        results[engine] = _run_once(adj, engine)
    checked = _run_once(adj, "fast", check_level=1)
    # The checked run rides in the same rounds as the engines so every
    # guard below is a same-round paired ratio — a host that slows down
    # halfway through the bench slows both sides of each pair.
    samples = {engine: [] for engine in BACKENDS}
    checked_samples = []
    for _ in range(ROUNDS):
        for engine in BACKENDS:
            samples[engine].append(_run_once(adj, engine).host_wall_s)
        checked_samples.append(
            _run_once(adj, "fast", check_level=1).host_wall_s
        )
    wall = time.perf_counter() - started

    # Bit-identical simulation results on every engine.
    fast = results["fast"]
    for engine, result in results.items():
        assert _signature(result) == _signature(fast), (
            f"{engine} engine diverged from the fast path"
        )

    # The sanitizer observes, it never perturbs: level 1 must be
    # bit-identical to the unchecked run.
    assert _signature(checked) == _signature(fast)

    medians = {
        engine: statistics.median(rounds)
        for engine, rounds in samples.items()
    }
    checked_s = statistics.median(checked_samples)
    columns = {
        engine: {
            "engine": engine,
            "host_wall_s": medians[engine],
            "events_per_s": fast.events / medians[engine],
            "rounds_host_wall_s": samples[engine],
        }
        for engine in BACKENDS
    }
    fast_evs = columns["fast"]["events_per_s"]
    cal_evs = columns["calendar"]["events_per_s"]
    vec_evs = columns["vector"]["events_per_s"]
    ref_evs = columns["reference"]["events_per_s"]

    def vs_fast(engine):
        # Rounds are interleaved, so pairing each backend round with
        # the fast round of the same sweep cancels host-frequency
        # drift; the median of the per-round ratios is far more stable
        # than a ratio of independent medians.
        ratios = [
            f / b for f, b in zip(samples["fast"], samples[engine])
        ]
        return statistics.median(ratios)

    vs_ref = 1 / vs_fast("reference")
    cal_vs_fast = 1 / vs_fast("calendar")
    vec_vs_fast = vs_fast("vector")
    vs_pre_pr = fast_evs / PRE_PR_BASELINE["events_per_s"]
    check_overhead = statistics.median(
        [c / f for c, f in zip(checked_samples, samples["fast"])]
    )

    payload = {
        "point": {
            "dataset": "products",
            **PRODUCTS_WINDOW,
            "embedding_dim": K,
            "n_cores": N_CORES,
            "rounds": ROUNDS,
            "method": "median of interleaved rounds, warmup excluded",
        },
        "events": fast.events,
        "sim_time_ns": fast.sim_time_ns,
        **columns,
        "checked_level1": {
            "engine": "fast",
            "host_wall_s": checked_s,
            "events_per_s": checked.events / checked_s,
            "rounds_host_wall_s": checked_samples,
        },
        "check_level1_overhead": check_overhead,
        "fast_vs_reference": vs_ref,
        "calendar_vs_fast": cal_vs_fast,
        "vector_vs_fast": vec_vs_fast,
        "pre_pr_baseline": PRE_PR_BASELINE,
        "fast_vs_pre_pr": vs_pre_pr,
        "bench_wall_s": wall,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_host_perf.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    emit(
        "host_perf",
        "\n".join([
            f"point: products {PRODUCTS_WINDOW} K={K} n_cores={N_CORES} "
            f"({fast.events:,} DES events, median of {ROUNDS} "
            "interleaved rounds)",
            f"fast (heap):      {medians['fast']:.4f}s  "
            f"({fast_evs:,.0f} events/s)",
            f"calendar:         {medians['calendar']:.4f}s  "
            f"({cal_evs:,.0f} events/s)",
            f"vector replay:    {medians['vector']:.4f}s  "
            f"({vec_evs:,.0f} events/s)",
            f"reference:        {medians['reference']:.4f}s  "
            f"({ref_evs:,.0f} events/s)",
            f"check_level=1:    {checked_s:.4f}s  "
            f"({check_overhead:.3f}x the unchecked fast path)",
            f"fast vs reference: {vs_ref:.2f}x",
            f"calendar vs fast: {cal_vs_fast:.2f}x",
            f"vector vs fast: {vec_vs_fast:.2f}x",
            f"fast vs pre-PR engine (recorded "
            f"{PRE_PR_BASELINE['events_per_s']:,} ev/s): {vs_pre_pr:.2f}x",
            f"[written to {path}]",
        ]),
    )

    # Tolerant, machine-independent regression guard: the fast path
    # must beat the reference loop measured on the same host in the
    # same process.  The margin is deliberately thin — the reference
    # loop shares the closure/interning/compaction work, so the
    # loop-only delta is ~1.15x and CI noise must not flake the lane.
    # (The committed JSON tracks the absolute numbers; asserting those
    # would flake across CI machines.)
    assert vs_ref >= 1.05, (
        f"fast path only {vs_ref:.2f}x the reference loop "
        f"({fast_evs:,.0f} vs {ref_evs:,.0f} events/s)"
    )

    # See the module docstring for why the calendar backend cannot win
    # at this queue population; 0.70x is the structural tripwire.
    assert cal_vs_fast >= 0.70, (
        f"calendar backend at {cal_vs_fast:.2f}x the heap-backed fast "
        f"path ({cal_evs:,.0f} vs {fast_evs:,.0f} events/s) — "
        "pathological scheduler regression"
    )

    # The vector replay engine must hold its measured lead over the
    # fast path (median per-round ratio of back-to-back runs, same
    # process).  Losing spawn-time plan compilation, the deferred
    # counters, or the sentinel-terminated tight loop each costs well
    # over this margin; see DESIGN.md section 8 for the decomposition.
    assert vec_vs_fast >= VECTOR_VS_FAST_FLOOR, (
        f"vector engine at {vec_vs_fast:.2f}x the fast path "
        f"({vec_evs:,.0f} vs {fast_evs:,.0f} events/s) — below the "
        f"{VECTOR_VS_FAST_FLOOR}x floor"
    )

    # The level-1 sanitizer promises <10% hot-loop overhead (DESIGN.md,
    # "Runtime invariant sanitizer").  Same-process ratio, so the bound
    # is machine-independent; measured ~1.01x, leaving real headroom.
    assert check_overhead < 1.10, (
        f"check_level=1 costs {check_overhead:.3f}x the unchecked fast "
        f"path ({checked_s:.4f}s vs {medians['fast']:.4f}s) — over the "
        "10% budget"
    )
