"""Host performance of the DES engine: fast path vs reference path.

This bench measures how fast the *simulator itself* runs on the host
(events per wall-clock second), not anything about PIUMA.  It executes
the Fig 5 medium point (`products` window, K=256, 8 cores) through both
main loops:

* the **fast path** (``engine_fast_path=True``, default): peek-ahead
  continuation, type-dispatch with a fused DMA closure, per-op
  execution plans, timeline compaction;
* the **reference path** (``engine_fast_path=False``): the plain
  pop/execute/push loop kept as the semantics oracle.

Both must produce bit-identical simulation results (also enforced by
``tests/piuma/test_engine_fastpath.py``); here the bench additionally
asserts the fast path actually pays for itself.  Thresholds are
*relative* to the reference loop measured in the same process, so the
guard is machine-independent and tolerant of slow CI hosts; the
absolute numbers (and the recorded pre-PR baseline) go into
``benchmarks/out/BENCH_host_perf.json`` for eyeballing trends.

The reference loop shares the kernel-side optimizations (op interning,
vectorized owner-core resolution, memoized topology tables), so the
fast/reference ratio *understates* the improvement over the pre-PR
engine; the recorded baseline below is the pre-PR engine measured on
the same point (best of 5 ``Simulator.run`` walls, same host class).
"""

import json
import time

from conftest import OUT_DIR, PRODUCTS_WINDOW

from repro.graphs.datasets import get_dataset
from repro.piuma import simulate_spmm
from repro.piuma.config import PIUMAConfig

K = 256
N_CORES = 8
ROUNDS = 5

#: Pre-PR engine on this point (commit before the fast-path work):
#: best-of-5 ``Simulator.run`` wall seconds and the derived events/s,
#: measured with the same methodology as this bench.  Recorded — not
#: re-measured — because the old engine no longer exists in the tree.
PRE_PR_BASELINE = {
    "host_wall_s": 0.8151,
    "events_per_s": 67575,
    "method": "best-of-5 run() wall of the pre-fast-path engine, "
              "products 16384/seed7 K=256 n_cores=8",
}


def _best_run(adj, fast_path, check_level=0):
    """Best-of-ROUNDS simulation; returns (result, best host seconds)."""
    best = None
    result = None
    for _ in range(ROUNDS):
        r = simulate_spmm(
            adj, K, PIUMAConfig(
                n_cores=N_CORES, engine_fast_path=fast_path,
                check_level=check_level,
            )
        )
        if best is None or r.host_wall_s < best:
            best = r.host_wall_s
            result = r
    return result, best


def test_host_perf(emit):
    adj = get_dataset("products").materialize(**{
        "max_vertices": PRODUCTS_WINDOW["max_vertices"],
        "seed": PRODUCTS_WINDOW["seed"],
    })
    started = time.perf_counter()
    fast, fast_s = _best_run(adj, fast_path=True)
    ref, ref_s = _best_run(adj, fast_path=False)
    checked, checked_s = _best_run(adj, fast_path=True, check_level=1)
    wall = time.perf_counter() - started

    # Bit-identical simulation results on both paths.
    assert fast.sim_time_ns == ref.sim_time_ns
    assert fast.gflops == ref.gflops
    assert fast.tag_stats == ref.tag_stats
    assert fast.memory_utilization == ref.memory_utilization
    assert fast.achieved_bandwidth == ref.achieved_bandwidth
    assert fast.events == ref.events

    # The sanitizer observes, it never perturbs: level 1 must be
    # bit-identical to the unchecked run.
    assert checked.sim_time_ns == fast.sim_time_ns
    assert checked.gflops == fast.gflops
    assert checked.events == fast.events

    fast_evs = fast.events / fast_s
    ref_evs = ref.events / ref_s
    vs_ref = fast_evs / ref_evs
    vs_pre_pr = fast_evs / PRE_PR_BASELINE["events_per_s"]
    check_overhead = checked_s / fast_s

    payload = {
        "point": {
            "dataset": "products",
            **PRODUCTS_WINDOW,
            "embedding_dim": K,
            "n_cores": N_CORES,
            "rounds": ROUNDS,
        },
        "events": fast.events,
        "sim_time_ns": fast.sim_time_ns,
        "fast": {"host_wall_s": fast_s, "events_per_s": fast_evs},
        "reference": {"host_wall_s": ref_s, "events_per_s": ref_evs},
        "checked_level1": {
            "host_wall_s": checked_s,
            "events_per_s": checked.events / checked_s,
        },
        "check_level1_overhead": check_overhead,
        "fast_vs_reference": vs_ref,
        "pre_pr_baseline": PRE_PR_BASELINE,
        "fast_vs_pre_pr": vs_pre_pr,
        "bench_wall_s": wall,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_host_perf.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    emit(
        "host_perf",
        "\n".join([
            f"point: products {PRODUCTS_WINDOW} K={K} n_cores={N_CORES} "
            f"({fast.events:,} DES events)",
            f"fast path:      {fast_s:.4f}s  ({fast_evs:,.0f} events/s)",
            f"reference path: {ref_s:.4f}s  ({ref_evs:,.0f} events/s)",
            f"check_level=1:  {checked_s:.4f}s  "
            f"({check_overhead:.3f}x the unchecked fast path)",
            f"fast vs reference: {vs_ref:.2f}x",
            f"fast vs pre-PR engine (recorded "
            f"{PRE_PR_BASELINE['events_per_s']:,} ev/s): {vs_pre_pr:.2f}x",
            f"[written to {path}]",
        ]),
    )

    # Tolerant, machine-independent regression guard: the fast path
    # must beat the reference loop measured on the same host in the
    # same process.  The margin is deliberately thin — the reference
    # loop shares the closure/interning/compaction work, so the
    # loop-only delta is ~1.15x and CI noise must not flake the lane.
    # (The committed JSON tracks the absolute numbers; asserting those
    # would flake across CI machines.)
    assert vs_ref >= 1.05, (
        f"fast path only {vs_ref:.2f}x the reference loop "
        f"({fast_evs:,.0f} vs {ref_evs:,.0f} events/s)"
    )

    # The level-1 sanitizer promises <10% hot-loop overhead (DESIGN.md,
    # "Runtime invariant sanitizer").  Same-process ratio, so the bound
    # is machine-independent; measured ~1.01x, leaving real headroom.
    assert check_overhead < 1.10, (
        f"check_level=1 costs {check_overhead:.3f}x the unchecked fast "
        f"path ({checked_s:.4f}s vs {fast_s:.4f}s) — over the 10% budget"
    )
