"""Prediction-service latency tiers and coalescing effectiveness.

The service's value proposition is the latency ladder: a tier-0
analytical answer in well under a millisecond once warm, a tier-1
cache hit in single-digit milliseconds, both orders of magnitude under
the tier-2 DES run they stand in for.  This bench measures the ladder
end-to-end through :meth:`PredictionService.predict` (query parsing,
task construction, cache keying — the whole request path, minus HTTP)
and records the percentiles in
``benchmarks/out/BENCH_serve_latency.json``.

Guards are deliberately loose absolute ceilings (hundreds of ms on
paths that measure fractions of one) — they catch a tier accidentally
falling through to the simulator, not host jitter.

Coalescing effectiveness is measured with real concurrency: N threads
request the same uncached config simultaneously; the scheduler must
accept exactly one DES execution and fan its record out to everyone.
"""

import json
import statistics
import threading
import time

from conftest import OUT_DIR

from repro.runtime import ResultCache
from repro.runtime.service import PredictionService

#: A small window keeps the single tier-2 run in seconds.
QUERY = {"dataset": "products", "k": 8, "max_vertices": 2048, "seed": 7}

TIER0_SAMPLES = 200
TIER1_SAMPLES = 200
COALESCE_CLIENTS = 8


def percentiles(samples_ms):
    ordered = sorted(samples_ms)

    def pct(p):
        return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

    return {
        "p50_ms": pct(0.50),
        "p95_ms": pct(0.95),
        "p99_ms": pct(0.99),
        "mean_ms": statistics.fmean(ordered),
        "max_ms": ordered[-1],
        "samples": len(ordered),
    }


def timed(fn, n):
    samples = []
    for _ in range(n):
        started = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - started) * 1e3)
    return samples


def test_serve_latency_tiers_and_coalescing(tmp_path, emit):
    cache = ResultCache(directory=tmp_path / "cache")
    service = PredictionService(cache, workers=2, default_deadline_s=300.0)
    try:
        # Warm-up: materialize the graph memo and run the one DES point
        # that backfills tier 1.
        warm_started = time.perf_counter()
        first = service.predict(dict(QUERY))
        tier2_ms = (time.perf_counter() - warm_started) * 1e3
        assert first["tier"] == 2
        assert first["source"] == "simulation"

        tier0 = percentiles(timed(
            lambda: service.predict(dict(QUERY, tier="model")),
            TIER0_SAMPLES,
        ))
        tier1 = percentiles(timed(
            lambda: service.predict(dict(QUERY)), TIER1_SAMPLES
        ))

        # --- coalescing: N concurrent clients, one uncached config ---
        cold = dict(QUERY, k=16)
        barrier = threading.Barrier(COALESCE_CLIENTS)
        answers = []
        answers_lock = threading.Lock()

        def client():
            barrier.wait(timeout=60)
            answer = service.predict(dict(cold))
            with answers_lock:
                answers.append(answer)

        threads = [threading.Thread(target=client)
                   for _ in range(COALESCE_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)
        stats = service.scheduler.stats
        coalescing = {
            "clients": COALESCE_CLIENTS,
            "des_executions": stats.accepted - 1,  # minus the warm-up run
            "coalesced_waiters": stats.coalesced,
            "aliasing_served_from_cache": sum(
                1 for a in answers if a["tier"] == 1
            ),
        }

        # --- guards ---------------------------------------------------
        # Each tier must answer without falling through to the DES; the
        # ceilings are ~100x what the paths measure warm.
        assert tier0["p95_ms"] < 250.0
        assert tier1["p95_ms"] < 250.0
        # One config, eight concurrent clients, one simulation.
        assert len(answers) == COALESCE_CLIENTS
        assert all(a["source"] == "simulation" for a in answers)
        assert coalescing["des_executions"] == 1
        assert (coalescing["coalesced_waiters"]
                + coalescing["aliasing_served_from_cache"]
                == COALESCE_CLIENTS - 1)

        health = service.healthz()
        payload = {
            "query": QUERY,
            "tier2_cold_ms": tier2_ms,
            "tier0": tier0,
            "tier1": tier1,
            "coalescing": coalescing,
            "counters": health["counters"],
        }
        OUT_DIR.mkdir(exist_ok=True)
        path = OUT_DIR / "BENCH_serve_latency.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

        lines = [
            f"tier 2 (cold DES + backfill): {tier2_ms:,.0f} ms",
            (f"tier 0 (analytical):  p50 {tier0['p50_ms']:.2f} ms, "
             f"p95 {tier0['p95_ms']:.2f} ms, "
             f"p99 {tier0['p99_ms']:.2f} ms"),
            (f"tier 1 (cache hit):   p50 {tier1['p50_ms']:.2f} ms, "
             f"p95 {tier1['p95_ms']:.2f} ms, "
             f"p99 {tier1['p99_ms']:.2f} ms"),
            (f"coalescing: {COALESCE_CLIENTS} clients -> "
             f"{coalescing['des_executions']} DES execution(s) "
             f"({coalescing['coalesced_waiters']} coalesced, "
             f"{coalescing['aliasing_served_from_cache']} cache hits)"),
            f"[payload written to {path}]",
        ]
        emit("serve_latency", "\n".join(lines))
    finally:
        service.close()
