"""Section VI extension studies, made quantitative.

Heterogeneous SoC dense:sparse ratio sweep, random-walk sampling
throughput (PIUMA vs CPU), clustering cost, and the distributed-CPU
(MPI) versus multi-node PIUMA (DGAS) comparison.
"""

from repro.cpu.config import XeonConfig
from repro.ext.clustering import clustering_time_cpu, clustering_time_piuma
from repro.ext.distributed import (
    ClusterConfig,
    distributed_spmm_time,
    measure_cut_fraction,
    piuma_multinode_spmm_time,
)
from repro.ext.heterogeneous import sweep_dense_units
from repro.ext.sampling import walk_time_cpu, walk_time_piuma
from repro.graphs.datasets import get_dataset
from repro.piuma.config import PIUMAConfig
from repro.report.tables import format_table, format_time_ns
from repro.workloads.gcn_workload import workload_for

PRODUCTS = get_dataset("products")


def test_ext_heterogeneous_soc(benchmark, emit, piuma_node):
    """How many dense tiles fix the Fig 10 Dense-MM bottleneck?"""
    counts = (0, 1, 2, 4, 8, 16)
    workload = workload_for("arxiv", 256)

    results = benchmark(sweep_dense_units, workload, piuma_node, counts)

    emit(
        "ext_heterogeneous_soc",
        format_table(
            ["dense units", "GCN time", "dense share"],
            [[c, format_time_ns(results[c].total),
              f"{results[c].fraction('dense'):.0%}"] for c in counts],
            title="PIUMA + dense tiles on arxiv, K=256 (Section VI)",
        ),
    )
    assert results[16].total < 0.6 * results[0].total


def test_ext_random_walk(benchmark, emit, piuma_node, xeon):
    """Random-walk sampling: latency-bound, so contexts win."""
    n_walks, length = 1_000_000, 40

    def run():
        return (
            walk_time_cpu(n_walks, length, xeon),
            walk_time_piuma(n_walks, length, piuma_node),
        )

    cpu, piuma = benchmark(run)

    emit(
        "ext_random_walk",
        format_table(
            ["platform", "time", "steps/s", "contexts"],
            [["Xeon", format_time_ns(cpu.time_ns),
              f"{cpu.steps_per_second:.2e}", cpu.parallel_contexts],
             ["PIUMA node", format_time_ns(piuma.time_ns),
              f"{piuma.steps_per_second:.2e}", piuma.parallel_contexts]],
            title=f"{n_walks:,} walks of length {length}",
        ),
    )
    assert piuma.time_ns < cpu.time_ns / 5


def test_ext_clustering(benchmark, emit, piuma_node, xeon):
    """Clustering sweeps (Cluster-GCN preprocessing) on both platforms."""
    v, e = PRODUCTS.n_vertices, PRODUCTS.n_edges

    def run():
        return (
            clustering_time_cpu(v, e, xeon),
            clustering_time_piuma(v, e, piuma_node),
        )

    cpu, piuma = benchmark(run)

    emit(
        "ext_clustering",
        format_table(
            ["platform", "per sweep", "10 sweeps"],
            [["Xeon", format_time_ns(cpu.time_ns),
              format_time_ns(cpu.total_ns)],
             ["PIUMA node", format_time_ns(piuma.time_ns),
              format_time_ns(piuma.total_ns)]],
            title="Label-propagation clustering on products",
        ),
    )
    assert piuma.total_ns < cpu.total_ns


def test_ext_distributed_cpu_vs_dgas(benchmark, emit, xeon, piuma_node,
                                     products_graph):
    """Scaling out: MPI Xeon cluster vs multi-node PIUMA DGAS."""
    nodes = (1, 2, 4, 8, 16)
    v, e = PRODUCTS.n_vertices, PRODUCTS.n_edges + PRODUCTS.n_vertices

    def run():
        rows = []
        for n in nodes:
            cut = measure_cut_fraction(products_graph, n)
            cpu = distributed_spmm_time(
                v, e, 256, xeon, ClusterConfig(n_nodes=n), cut
            )
            piuma = piuma_multinode_spmm_time(v, e, 256, piuma_node, n)
            rows.append((n, cut, cpu, piuma))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ext_distributed",
        format_table(
            ["nodes", "cut", "CPU cluster", "comm share", "PIUMA DGAS"],
            [[n, f"{cut:.0%}", format_time_ns(cpu.time_ns),
              f"{cpu.communication_share:.0%}",
              format_time_ns(piuma)] for n, cut, cpu, piuma in rows],
            title="Distributed SpMM on products, K=256 (Section V-A/VI)",
        ),
    )
    # PIUMA scales perfectly; the CPU cluster's communication share
    # grows with node count on this cut-heavy power-law graph.
    shares = [cpu.communication_share for _n, _c, cpu, _p in rows[1:]]
    assert shares[-1] >= shares[0]
    last = rows[-1]
    assert last[3] < last[2].time_ns  # PIUMA beats CPU cluster at 16 nodes


def test_ext_training_cost(benchmark, emit, xeon, a100, piuma_node):
    """Section VI (training): one full-batch step across platforms."""
    from repro.ext.training_cost import compare_training

    workload = workload_for("products", 128)

    results = benchmark(compare_training, workload, xeon, a100, piuma_node)

    emit(
        "ext_training_cost",
        format_table(
            ["platform", "fwd", "bwd", "step", "epochs/hour"],
            [[p, format_time_ns(r.forward.total),
              format_time_ns(r.backward.total),
              format_time_ns(r.step_ns),
              f"{r.epochs_per_hour():.0f}"]
             for p, r in results.items()],
            title="Full-batch training step on products, K=128",
        ),
    )
    assert results["piuma"].step_ns < results["cpu"].step_ns
