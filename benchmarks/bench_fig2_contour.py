"""Fig 2: SpMM-fraction contours over (scale, density), K=256, CPU.

Regenerates the contour map from the CPU timing model over a log-spaced
grid, overlays the Table I datasets, and reports the 40/60/80% contour
densities per scale.
"""

import numpy as np

from repro.core.contour import (
    annotate_datasets,
    contour_grid,
    find_contour_density,
)
from repro.report.figures import contour_map
from repro.report.tables import format_table

VERTEX_GRID = [10**k for k in (4, 5, 6, 7, 8)]
DENSITY_GRID = [10.0**e for e in range(-8, -1)]


def test_fig2_contour_map(benchmark, emit, xeon):
    grid = benchmark(
        contour_grid, VERTEX_GRID, DENSITY_GRID, xeon, 256
    )

    chart = contour_map(np.asarray(grid), VERTEX_GRID, DENSITY_GRID)

    contour_rows = []
    for level in (0.4, 0.6, 0.8):
        row = [f"{level:.0%}"]
        for v in VERTEX_GRID:
            d = find_contour_density(v, level, xeon)
            row.append(f"{d:.2e}" if d is not None else "-")
        contour_rows.append(row)
    lines_table = format_table(
        ["SpMM share"] + [f"|V|={v:.0e}" for v in VERTEX_GRID],
        contour_rows,
        title="Contour densities (uniform-degree RMAT, K=256)",
    )

    points = annotate_datasets(xeon)
    annot = format_table(
        ["dataset", "|V|", "density", "SpMM share"],
        [[p.name, f"{p.n_vertices:,}", f"{p.density:.2e}",
          f"{p.spmm_fraction:.1%}"] for p in points],
        title="OGB datasets on the Fig 2 plane",
    )
    emit("fig2_contour", chart + "\n\n" + lines_table + "\n\n" + annot)

    # Shape assertions: monotone in both axes, arxiv/collab under 60%.
    grid = np.asarray(grid)
    assert np.all(np.diff(grid, axis=0) >= 0)
    by_name = {p.name: p.spmm_fraction for p in points}
    assert by_name["arxiv"] < 0.6 and by_name["collab"] < 0.6
