"""Fig 10: PIUMA execution-time breakdown across OGB workloads and K.

The complement of Figs 3 and 4: on PIUMA, growing the embedding
dimension shifts the bottleneck from SpMM to Dense MM (no SIMD units).
"""

from repro.graphs.datasets import list_datasets
from repro.piuma.gcn import gcn_breakdown as piuma_gcn_breakdown
from repro.report.figures import breakdown_chart
from repro.report.tables import format_table, format_time_ns
from repro.workloads.gcn_workload import workload_for
from repro.workloads.sweeps import EMBEDDING_SWEEP


def test_fig10_piuma_breakdown(benchmark, emit, piuma_node):
    def evaluate():
        return {
            (name, k): piuma_gcn_breakdown(
                workload_for(name, k), piuma_node
            )
            for name in list_datasets()
            for k in EMBEDDING_SWEEP
        }

    results = benchmark(evaluate)

    bars = breakdown_chart(
        [
            (f"{name:10s} K={k:<3d}", results[(name, k)])
            for name in list_datasets()
            for k in (8, 64, 256)
        ]
    )
    table = format_table(
        ["dataset", "K", "SpMM", "Dense", "total"],
        [
            [name, k,
             format_time_ns(results[(name, k)].spmm),
             format_time_ns(results[(name, k)].dense),
             format_time_ns(results[(name, k)].total)]
            for name in list_datasets()
            for k in (8, 64, 256)
        ],
        title="PIUMA node absolute times",
    )
    emit("fig10_piuma_breakdown", bars + "\n\n" + table)

    # Paper: arxiv, collab, mag, citation2 (and papers) are >75% Dense
    # MM at K=256 on PIUMA; dense share always grows with K.
    for name in ("arxiv", "collab", "mag", "citation2"):
        assert results[(name, 256)].fraction("dense") > 0.6, name
    for name in list_datasets():
        assert (results[(name, 256)].fraction("dense")
                > results[(name, 8)].fraction("dense")), name
