"""Fig 7: threads/MTP vs DRAM-latency tolerance on an 8-core die.

Sweeps the DRAM latency from 45 to 720 ns and threads per MTP from 1 to
16 for the DMA kernel; with one thread the latency insensitivity is
lost for small embedding dimensions, with 16 threads even extreme
latencies are tolerated.  The 50-point grid runs through the cached,
process-parallel sweep runner.
"""

from conftest import products_task

from repro.report.figures import series_chart
from repro.workloads.sweeps import LATENCY_SWEEP_NS, THREADS_PER_MTP_SWEEP

DIMS = (8, 256)


def test_fig7_thread_latency_tolerance(benchmark, emit, sweep_runner):
    tasks = [
        products_task(
            k, n_cores=8, threads_per_mtp=tpm,
            dram_latency_ns=float(latency),
        )
        for k in DIMS
        for tpm in THREADS_PER_MTP_SWEEP
        for latency in LATENCY_SWEEP_NS
    ]

    report = benchmark.pedantic(
        lambda: sweep_runner(tasks), rounds=1, iterations=1
    )

    values = [record["gflops"] for record in report.records]
    series = {}
    index = 0
    for k in DIMS:
        for tpm in THREADS_PER_MTP_SWEEP:
            series[(k, tpm)] = values[index:index + len(LATENCY_SWEEP_NS)]
            index += len(LATENCY_SWEEP_NS)

    sections = []
    for k in DIMS:
        chart = series_chart(
            LATENCY_SWEEP_NS,
            [
                (f"{tpm} thr", [v / series[(k, tpm)][0]
                                for v in series[(k, tpm)]])
                for tpm in THREADS_PER_MTP_SWEEP
            ],
            x_label="latency ns",
        )
        sections.append(f"K={k} (normalized to 45 ns)\n{chart}")
    emit("fig7_thread_latency", "\n\n".join(sections))

    def retention(k, tpm, latency):
        values = series[(k, tpm)]
        return values[LATENCY_SWEEP_NS.index(latency)] / values[0]

    # Single thread, K=8: latency tolerance lost.
    assert retention(8, 1, 360) < 0.5
    # 16 threads, K=8: tolerated far better.
    assert retention(8, 16, 360) > 2 * retention(8, 1, 360)
    # K=256 retains tolerance even with a single thread.
    assert retention(256, 1, 360) > 0.7
