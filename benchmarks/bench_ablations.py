"""Ablations of the design choices DESIGN.md calls out.

Each test knocks one mechanism out of a platform model and shows the
paper-level conclusion that depends on it:

* DMA staging-buffer credits      -> latency tolerance (Figs 6/7)
* hashed DGAS placement           -> scaling on power-law graphs
* generous network injection      -> "memory-bound, not network-bound"
  (Key Takeaway 3 of Section IV)
* CPU cache model                 -> the products CPU-vs-PIUMA gap
* CPU atomics cost                -> vertex-parallel beating
  edge-parallel on Xeon (Section V-A)
"""

from repro.cpu.config import XeonConfig
from repro.cpu.spmm import spmm_time, spmm_time_edge_parallel
from repro.piuma import PIUMAConfig, simulate_spmm
from repro.report.tables import format_table

K = 64


def test_ablation_dma_credits(benchmark, emit, products_graph):
    """Shrinking the DMA staging buffer removes latency tolerance."""
    buffers = (1024, 4096, 32768)
    latency = 360.0

    def run():
        return {
            b: simulate_spmm(
                products_graph, K,
                PIUMAConfig(dma_inflight_bytes=b, dram_latency_ns=latency),
                "dma",
            ).gflops
            for b in buffers
        }

    gflops = benchmark.pedantic(run, rounds=1, iterations=1)

    nominal = simulate_spmm(
        products_graph, K, PIUMAConfig(dma_inflight_bytes=32768), "dma"
    ).gflops
    emit(
        "ablation_dma_credits",
        format_table(
            ["staging bytes", "GFLOP/s @360ns", "vs 45ns nominal"],
            [[b, f"{gflops[b]:.1f}", f"{gflops[b] / nominal:.0%}"]
             for b in buffers],
            title="DMA staging-buffer credits vs latency tolerance",
        ),
    )
    assert gflops[32768] > 2 * gflops[1024]


def test_ablation_hashed_placement(benchmark, emit, products_graph):
    """Naive modulo placement concentrates hub traffic on one slice."""

    def run():
        hashed = simulate_spmm(
            products_graph, K, PIUMAConfig(n_cores=8), "dma"
        ).gflops
        naive = simulate_spmm(
            products_graph, K,
            PIUMAConfig(n_cores=8, hashed_placement=False), "dma",
        ).gflops
        return hashed, naive

    hashed, naive = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_hashed_placement",
        format_table(
            ["placement", "GFLOP/s (8 cores)"],
            [["hashed (DGAS)", f"{hashed:.1f}"],
             ["v mod n_cores", f"{naive:.1f}"]],
            title="Vertex placement on a power-law graph",
        ),
    )
    assert hashed > 1.3 * naive


def test_ablation_network_bandwidth(benchmark, emit, products_graph):
    """Key Takeaway 3: at nominal injection bandwidth SpMM is memory
    bound; only a drastically choked network changes the answer."""
    ports = (512.0, 64.0, 4.0)

    def run():
        return {
            p: simulate_spmm(
                products_graph, K,
                PIUMAConfig(n_cores=8, network_bandwidth_gbps=p),
                "dma",
            ).gflops
            for p in ports
        }

    gflops = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_network_bandwidth",
        format_table(
            ["injection GB/s", "GFLOP/s (8 cores)"],
            [[p, f"{gflops[p]:.1f}"] for p in ports],
            title="Network injection bandwidth (Takeaway 3 check)",
        ),
    )
    # Halving headroom (512 -> 64 GB/s) barely moves SpMM...
    assert gflops[64.0] > 0.85 * gflops[512.0]
    # ...but a choked network finally binds, proving the knob works.
    assert gflops[4.0] < 0.75 * gflops[512.0]


def test_ablation_cpu_cache(benchmark, emit, xeon):
    """Without feature-vector caching, `products` SpMM on the CPU loses
    the reuse that lets it stay competitive at moderate core counts."""
    v, e = 2_449_029, 64_308_169

    def run():
        cached = spmm_time(v, e, 256, xeon, n_cores=16, skew=0.55)
        uncached = spmm_time(
            v, e, 256, xeon.with_(cache_bandwidth_gbps_per_core=1e-6,
                                  l2_kb_per_core=0, l3_mb_per_socket=0),
            n_cores=16, skew=0.55,
        )
        return cached, uncached

    cached, uncached = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_cpu_cache",
        format_table(
            ["model", "GFLOP/s (16 cores)", "hit rate"],
            [["cache-aware", f"{cached.gflops:.1f}",
              f"{cached.hit_rate:.0%}"],
             ["no cache", f"{uncached.gflops:.1f}",
              f"{uncached.hit_rate:.0%}"]],
            title="products SpMM, CPU cache model on/off",
        ),
    )
    assert cached.gflops > 1.2 * uncached.gflops


def test_ablation_cpu_atomics(benchmark, emit, xeon):
    """Sweeping the atomic RMW cost shows why edge-parallel loses on
    Xeon but wins on PIUMA (whose remote atomics are nearly free)."""
    costs = (0.0, 20.0, 80.0)
    v, e = 576_289, 30_902_562  # ppa

    def run():
        vertex = spmm_time(v, e, K, xeon).time_ns
        edge = {
            c: spmm_time_edge_parallel(
                v, e, K, xeon.with_(atomic_ns=c)
            ).time_ns
            for c in costs
        }
        return vertex, edge

    vertex, edge = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_cpu_atomics",
        format_table(
            ["atomic ns", "edge-parallel / vertex-parallel"],
            [[c, f"{edge[c] / vertex:.2f}x"] for c in costs],
            title="CPU edge-parallel penalty vs atomic cost (ppa, K=64)",
        ),
    )
    assert edge[0.0] <= vertex * 1.0001     # free atomics: no penalty
    assert edge[80.0] > edge[20.0] > vertex  # costly atomics: penalty


def test_ablation_vertex_vs_edge_parallel(benchmark, emit, products_graph):
    """Section IV-B trade-off: vertex-parallel saves the binary search
    and the atomics but eats hub-thread load imbalance; edge-parallel
    pays near-free remote atomics and stays balanced."""
    cfg = PIUMAConfig(n_cores=16)

    def run():
        return (
            simulate_spmm(products_graph, K, cfg, "dma").gflops,
            simulate_spmm(products_graph, K, cfg, "vertex").gflops,
        )

    edge, vertex = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_vertex_vs_edge",
        format_table(
            ["strategy", "GFLOP/s (16 cores)"],
            [["edge-parallel + atomics", f"{edge:.1f}"],
             ["vertex-parallel", f"{vertex:.1f}"]],
            title="SpMM parallelization strategy on PIUMA (products, K=64)",
        ),
    )
    assert edge > vertex


def test_ablation_atomic_cost_on_piuma(benchmark, emit, products_graph):
    """Sweep the near-memory atomic unit cost: PIUMA's defaults make
    edge-parallel write-backs nearly free; a CPU-like cost would not."""
    overheads = (2.0, 50.0, 500.0)

    def run():
        return {
            o: simulate_spmm(
                products_graph, K,
                PIUMAConfig(n_cores=8, atomic_overhead_ns=o),
                "dma",
            ).gflops
            for o in overheads
        }

    gflops = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "ablation_piuma_atomics",
        format_table(
            ["atomic overhead ns", "GFLOP/s (8 cores)"],
            [[o, f"{gflops[o]:.1f}"] for o in overheads],
            title="Remote-atomic cost vs edge-parallel SpMM on PIUMA",
        ),
    )
    assert gflops[2.0] >= gflops[500.0]
