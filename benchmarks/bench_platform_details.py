"""Platform-model detail benches: NUMA policies, measured GPU sampling
costs, and ordering-driven locality."""

import numpy as np

from repro.cpu.numa import numa_bandwidth, spmm_time_with_numa
from repro.gpu.sampling import measure_receptive_expansion, sampled_run_cost
from repro.graphs.datasets import get_dataset
from repro.graphs.degree import window_span_fraction
from repro.report.tables import format_table, format_time_ns
from repro.sparse.reorder import apply_permutation, random_order, rcm_order

PRODUCTS = get_dataset("products")


def test_numa_policies(benchmark, emit, xeon):
    """numactl matters: the paper pinned threads and memory for a
    reason.  Quantify each policy's SpMM cost on products."""
    v, e, k = PRODUCTS.n_vertices, PRODUCTS.n_edges + PRODUCTS.n_vertices, 128
    policies = ("local", "interleave", "remote")

    def run():
        return {
            p: spmm_time_with_numa(v, e, k, xeon, policy=p)
            for p in policies
        }

    results = benchmark(run)

    emit(
        "numa_policies",
        format_table(
            ["policy", "effective GB/s (80t)", "SpMM time", "GFLOP/s"],
            [[p, f"{numa_bandwidth(80, xeon, p):.0f}",
              format_time_ns(results[p].time_ns),
              f"{results[p].gflops:.1f}"] for p in policies],
            title="NUMA placement vs products SpMM (K=128)",
        ),
    )
    assert results["local"].time_ns < results["interleave"].time_ns
    assert results["interleave"].time_ns < results["remote"].time_ns


def test_measured_sampling_cost(benchmark, emit, a100, products_graph):
    """Receptive-field explosion measured on the down-scaled graph,
    priced at full products scale."""

    def run():
        profile = measure_receptive_expansion(
            products_graph, batch_size=256, n_layers=3, n_probes=3
        )
        estimate = sampled_run_cost(
            PRODUCTS.n_vertices, PRODUCTS.n_edges, 128, profile, a100
        )
        return profile, estimate

    profile, estimate = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(
        "measured_sampling_cost",
        format_table(
            ["metric", "value"],
            [["3-hop frontier fraction",
              f"{profile.mean_frontier_fraction:.0%}"],
             ["edges touched per batch",
              f"{profile.mean_edges_fraction:.0%} of |E|"],
             ["batches to cover the graph", f"{estimate.n_batches:,}"],
             ["host sampling time", format_time_ns(estimate.sampling_ns)],
             ["PCIe offload time", format_time_ns(estimate.offload_ns)]],
            title="Full-neighborhood sampling, measured expansion "
                  "(batch=256, L=3)",
        ),
    )
    # Neighborhood explosion: each batch touches a large share of the
    # graph, so batched sampling costs orders of magnitude more than
    # one full-graph pass.
    assert profile.mean_frontier_fraction > 0.3
    assert estimate.host_ns > 10 * (
        PRODUCTS.n_edges * 128 * 4 / a100.sample_gather_gbps
    )


def test_ordering_locality(benchmark, emit, xeon):
    """RCM reordering narrows the window span and lifts the modeled
    CPU hit rate (the products effect, manufactured on demand)."""
    from repro.graphs.rmat import RMATParams, rmat_graph

    adj = rmat_graph(RMATParams(scale=16, edge_factor=8), seed=0)
    shuffled = apply_permutation(adj, random_order(adj, seed=1))

    def run():
        ordered = apply_permutation(shuffled, rcm_order(shuffled))
        return (
            window_span_fraction(shuffled),
            window_span_fraction(ordered),
        )

    span_shuffled, span_ordered = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    emit(
        "ordering_locality",
        format_table(
            ["ordering", "window span fraction"],
            [["shuffled", f"{span_shuffled:.2f}"],
             ["rcm", f"{span_ordered:.2f}"]],
            title="Vertex ordering vs memory locality (scale-16 RMAT)",
        ),
    )
    assert span_ordered < 0.6 * span_shuffled
