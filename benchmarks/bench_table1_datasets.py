"""Table I: OGB dataset descriptions.

Regenerates the dataset table from the catalog and benchmarks the
synthetic materialization path that stands in for OGB loading.
"""

from repro.graphs.datasets import OGB_TABLE_I, get_dataset
from repro.graphs.degree import degree_stats
from repro.report.tables import format_number, format_table


def test_table1_dataset_descriptions(benchmark, emit):
    spec = get_dataset("ddi")  # the only graph small enough to time fully

    adj = benchmark(spec.materialize, seed=0)

    stats = degree_stats(adj)
    rows = [
        [s.name, format_number(s.n_vertices), format_number(s.n_edges),
         f"{s.avg_degree:.1f}", f"{s.density:.2e}", s.task]
        for s in OGB_TABLE_I
    ]
    table = format_table(
        ["Name", "|V|", "|E|", "avg deg", "density", "task"],
        rows,
        title="TABLE I — OGB dataset descriptions",
    )
    table += (
        f"\n\nmaterialized ddi: {adj.nnz:,} edges "
        f"(degree gini {stats.gini:.2f})"
    )
    emit("table1_datasets", table)

    assert adj.shape == (4_267, 4_267)
