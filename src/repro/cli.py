"""Command-line interface.

``python -m repro <command>`` exposes the characterization workflows
without writing any Python:

* ``datasets``  — print Table I.
* ``breakdown`` — GCN execution-time breakdown of one dataset on one
  platform (Figs 3/4/10, one row).
* ``speedup``   — cross-platform speedups for one dataset (Fig 9 row).
* ``simulate``  — run the PIUMA DES on a (down-scaled) dataset.
* ``sweep``     — run a DES grid through the cached, process-parallel
  sweep runner (``repro.runtime``); ``--degrade`` runs the whole grid
  on a deterministically faulted fabric.
* ``multinode`` — partition-aware multi-node scale-out: shard a graph
  (block or degree-aware blocks), simulate every shard as its own DES
  task, assemble the halo-exchange estimate and strong-scaling curve.
* ``resilience`` — graceful-degradation curve: SpMM slowdown vs the
  fraction of degraded fabric, against the derated Eq.5 envelope.
* ``check``     — differential conformance suite + invariant-sanitizer
  mutation smoke-checks (``repro.testing``).
* ``advise``    — the Fig 2 contour as a decision rule.
* ``serve``     — the tiered prediction service: a JSON HTTP endpoint
  answering prediction queries from the analytical models (tier 0),
  the shared result cache (tier 1), or a scheduled DES run (tier 2),
  with admission control, coalescing, and a circuit breaker.
* ``cache``     — inspect / garbage-collect / clear the shared
  content-addressed result cache.
"""

from __future__ import annotations

import argparse
import sys


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GCN-on-PIUMA characterization toolkit (ISPASS 2023 "
                    "reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the Table I catalog")

    breakdown = sub.add_parser(
        "breakdown", help="execution-time breakdown on one platform"
    )
    breakdown.add_argument("dataset")
    breakdown.add_argument(
        "--platform", choices=("cpu", "gpu", "piuma"), default="cpu"
    )
    breakdown.add_argument("--hidden", type=int, default=64,
                           help="hidden embedding dimension")

    speedup = sub.add_parser(
        "speedup", help="PIUMA/GPU speedups over the Xeon baseline"
    )
    speedup.add_argument("dataset")
    speedup.add_argument("--hidden", type=int, default=64)

    simulate = sub.add_parser(
        "simulate", help="run the PIUMA discrete-event simulator"
    )
    simulate.add_argument("dataset")
    simulate.add_argument("--kernel", choices=("dma", "loop", "vertex"),
                          default="dma")
    simulate.add_argument("--cores", type=int, default=8)
    simulate.add_argument("--hidden", type=int, default=64)
    simulate.add_argument("--latency-ns", type=float, default=45.0)
    simulate.add_argument("--bandwidth-scale", type=float, default=1.0)
    simulate.add_argument("--threads-per-mtp", type=int, default=16)
    simulate.add_argument("--max-vertices", type=int, default=16384,
                          help="down-scale the graph to this many vertices")
    simulate.add_argument("--scheduler", choices=("heap", "calendar"),
                          default="heap",
                          help="event-scheduler backend of the DES loop "
                               "(bit-identical results; host speed only)")
    simulate.add_argument("--engine",
                          choices=("auto", "fast", "calendar", "vector",
                                   "reference"),
                          default="auto",
                          help="DES main loop (bit-identical results; "
                               "host speed only); \"auto\" resolves from "
                               "the legacy --scheduler knob")
    simulate.add_argument("--no-cache", action="store_true",
                          help="bypass the on-disk result cache")

    sweep = sub.add_parser(
        "sweep",
        help="run a simulator grid through the cached parallel runner",
    )
    sweep.add_argument("--dataset", default="products")
    sweep.add_argument("--kernel", choices=("dma", "loop", "vertex"),
                       default="dma")
    sweep.add_argument("--dims", type=int, nargs="+", default=None,
                       help="embedding dims (default: the Fig 3 grid)")
    sweep.add_argument("--cores", type=int, nargs="+", default=[8])
    sweep.add_argument("--latency-ns", type=float, nargs="+",
                       default=[45.0])
    sweep.add_argument("--bandwidth-scale", type=float, nargs="+",
                       default=[1.0])
    sweep.add_argument("--threads-per-mtp", type=int, nargs="+",
                       default=[16])
    sweep.add_argument("--max-vertices", type=int, default=16384)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="process-pool size (default: min(4, CPUs), "
                            "or $REPRO_SWEEP_WORKERS)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="invalidate (delete) all cached records first")
    sweep.add_argument("--cache-dir", default=None,
                       help="cache location (default benchmarks/out/.cache "
                            "or $REPRO_CACHE_DIR)")
    sweep.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-point wall-clock budget in seconds; hung "
                            "workers are killed and the point retried "
                            "(needs >= 2 workers)")
    sweep.add_argument("--retries", type=int, default=0,
                       help="extra attempts per point after a timeout, "
                            "worker crash, or exception")
    sweep.add_argument("--on-error", choices=("raise", "skip", "fallback"),
                       default="raise",
                       help="policy once retries are exhausted: abort the "
                            "sweep, record a structured failure, or degrade "
                            "the point to the Eq.5 analytical model")
    sweep.add_argument("--check-level", type=int, default=None,
                       choices=(0, 1, 2),
                       help="run every point under the runtime invariant "
                            "sanitizer at this level (default: off)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep from its "
                            "checkpoint manifest (under the cache dir)")
    sweep.add_argument("--profile", action="store_true",
                       help="report host DES throughput (events/s) and "
                            "the slowest computed points")
    sweep.add_argument("--engine",
                       choices=("fast", "calendar", "vector", "reference"),
                       default=None,
                       help="run every point on this DES main loop "
                            "(bit-identical results; host speed only; "
                            "records carry an \"engine\" provenance "
                            "field)")
    sweep.add_argument("--scheduler", choices=("heap", "calendar"),
                       default=None,
                       help="run every point on this event-scheduler "
                            "backend (bit-identical results; records "
                            "carry a \"scheduler\" provenance field)")
    sweep.add_argument("--degrade", default=None, metavar="SPEC",
                       help="run the whole grid on a degraded fabric: a "
                            "preset name (mild, moderate, severe, links, "
                            "slices, dma, compute) or a JSON spec file")

    multinode = sub.add_parser(
        "multinode",
        help="partition-aware multi-node scale-out: shard the graph, "
             "simulate every shard as its own DES task, assemble the "
             "halo-exchange estimate and the strong-scaling curve",
    )
    multinode.add_argument("--dataset", default="papers")
    multinode.add_argument("--nodes", type=int, nargs="+",
                           default=[1, 2, 4, 8],
                           help="node counts of the strong-scaling study "
                                "(one shard per node)")
    multinode.add_argument("--strategy",
                           choices=("block", "degree", "both"),
                           default="both",
                           help="partitioning strategy: equal-vertex "
                                "blocks, degree-aware equal-edge-load "
                                "blocks, or a side-by-side comparison")
    multinode.add_argument("--kernel", choices=("dma", "loop", "vertex"),
                           default="dma")
    multinode.add_argument("--hidden", type=int, default=None,
                           help="embedding dimension (default: the "
                                "dataset's feature dim)")
    multinode.add_argument("--max-vertices", type=int, default=16384,
                           help="down-scale the graph to this many "
                                "vertices before sharding")
    multinode.add_argument("--seed", type=int, default=0)
    multinode.add_argument("--workers", type=int, default=None,
                           help="process-pool size across shard tasks")
    multinode.add_argument("--no-cache", action="store_true",
                           help="bypass the on-disk result cache")
    multinode.add_argument("--cache-dir", default=None,
                           help="cache location (default "
                                "benchmarks/out/.cache or $REPRO_CACHE_DIR)")
    multinode.add_argument("--timeout", type=float, default=None,
                           metavar="S",
                           help="per-shard wall-clock budget in seconds")
    multinode.add_argument("--retries", type=int, default=0,
                           help="extra attempts per shard after a timeout, "
                                "worker crash, or exception")
    multinode.add_argument("--on-error",
                           choices=("raise", "skip", "fallback"),
                           default="raise",
                           help="policy once retries are exhausted; "
                                "\"fallback\" degrades lost shards to the "
                                "Eq.5 model so the assembly still closes")
    multinode.add_argument("--check-level", type=int, default=None,
                           choices=(0, 1, 2),
                           help="run every shard under the runtime "
                                "invariant sanitizer at this level")
    multinode.add_argument("--resume", action="store_true",
                           help="resume interrupted runs from their "
                                "per-shard checkpoint manifests")
    multinode.add_argument("--engine",
                           choices=("fast", "calendar", "vector",
                                    "reference"),
                           default=None,
                           help="DES main loop for every shard "
                                "(bit-identical results; host speed only)")
    multinode.add_argument("--scheduler", choices=("heap", "calendar"),
                           default=None,
                           help="event-scheduler backend for every shard "
                                "(bit-identical results)")
    multinode.add_argument("--degrade", default=None, metavar="SPEC",
                           help="run every shard on a degraded fabric: a "
                                "preset name or a JSON spec file")
    multinode.add_argument("--recover", action="store_true",
                           help="arm the per-shard failure model: "
                                "bounded retries per shard domain, "
                                "hedged re-execution of stragglers, and "
                                "partial assembly (failed shards degrade "
                                "to Eq.5 with shard_fallback provenance "
                                "and a widened-envelope verdict instead "
                                "of aborting); --retries/--timeout feed "
                                "the recovery spec")
    multinode.add_argument("--hedge-after", type=float, default=None,
                           metavar="S",
                           help="with --recover: launch a speculative "
                                "duplicate of any shard still running "
                                "after S seconds (first result wins; "
                                "default: adaptive, 3x the median shard "
                                "time)")
    multinode.add_argument("--json", default=None, metavar="PATH",
                           help="write the scaling rows as a JSON artifact")

    resilience = sub.add_parser(
        "resilience",
        help="graceful-degradation curve: SpMM slowdown vs fraction of "
             "degraded fabric, with the derated Eq.5 model as envelope",
    )
    resilience.add_argument("--dataset", default="products")
    resilience.add_argument("--kernel", choices=("dma", "loop", "vertex"),
                            default="dma")
    resilience.add_argument("--hidden", type=int, default=256)
    resilience.add_argument("--cores", type=int, default=8)
    resilience.add_argument("--max-vertices", type=int, default=16384)
    resilience.add_argument("--seed", type=int, default=7,
                            help="graph down-scaling seed (default: the "
                                 "Fig 5 medium-point window)")
    resilience.add_argument("--severities", type=float, nargs="+",
                            default=[0.0, 0.25, 0.5, 0.75, 1.0],
                            help="degraded-fraction grid; the fault sets "
                                 "nest with severity, so the curve is "
                                 "monotone by construction")
    resilience.add_argument("--fault-seed", type=int, default=0,
                            help="seed of the degradation membership draws")
    resilience.add_argument("--check-level", type=int, default=1,
                            choices=(0, 1, 2),
                            help="invariant sanitizer level armed inside "
                                 "every point (default 1)")
    resilience.add_argument("--engine",
                            choices=("auto", "fast", "calendar", "vector",
                                     "reference"),
                            default="auto",
                            help="DES main loop for the curve "
                                 "(bit-identical results; host speed "
                                 "only)")
    resilience.add_argument("--scheduler", choices=("heap", "calendar"),
                            default="heap",
                            help="event-scheduler backend for the curve "
                                 "(bit-identical results)")
    resilience.add_argument("--verify-engines", action="store_true",
                            help="additionally run every point through the "
                                 "reference engine and require bit-identity")
    resilience.add_argument("--workers", type=int, default=None)
    resilience.add_argument("--no-cache", action="store_true",
                            help="bypass the on-disk result cache")
    resilience.add_argument("--json", default=None, metavar="PATH",
                            help="write the curve as a JSON artifact")

    check = sub.add_parser(
        "check",
        help="differential conformance suite: fast-vs-reference "
             "bit-identity, Eq.5 envelope, metamorphic relations, and "
             "invariant-sanitizer mutation smoke-checks",
    )
    check.add_argument("--level", type=int, default=2, choices=(0, 1, 2),
                       help="invariant sanitizer level armed inside every "
                            "differential run (default 2)")
    check.add_argument("--cases", type=int, default=25,
                       help="seeded conformance cases to generate")
    check.add_argument("--seed", type=int, default=0,
                       help="case-population seed")
    check.add_argument("--engine",
                       choices=("fast", "reference", "calendar", "vector",
                                "both", "all"),
                       default="both",
                       help="engine path(s) to run (default both; "
                            "\"all\" spans every backend incl. vector)")
    check.add_argument("--no-metamorphic", action="store_true",
                       help="skip the metamorphic relations")
    check.add_argument("--no-mutations", action="store_true",
                       help="skip the mutation smoke-checks")
    check.add_argument("--artifact", default=None, metavar="PATH",
                       help="write the JSON report (incl. any shrunk "
                            "failing case) to this path")
    check.add_argument("--quiet", action="store_true",
                       help="only print the final summary line")

    advise = sub.add_parser(
        "advise", help="predict the CPU SpMM share for a (|V|, density)"
    )
    advise.add_argument("vertices", type=float)
    advise.add_argument("density", type=float)
    advise.add_argument("--hidden", type=int, default=256)

    calibrate = sub.add_parser(
        "calibrate",
        help="measure the DES efficiency vs the Eq.5 model on a grid",
    )
    calibrate.add_argument("--dataset", default="products")
    calibrate.add_argument("--max-vertices", type=int, default=8192)
    calibrate.add_argument("--cores", type=int, nargs="+",
                           default=[1, 2, 4, 8])
    calibrate.add_argument("--dims", type=int, nargs="+",
                           default=[8, 64, 256])
    calibrate.add_argument("--workers", type=int, default=None,
                           help="process-pool size for the grid")
    calibrate.add_argument("--no-cache", action="store_true",
                           help="bypass the on-disk result cache")

    validate = sub.add_parser(
        "validate", help="run the simulator invariant self-test"
    )
    validate.add_argument("--dataset", default="products")
    validate.add_argument("--max-vertices", type=int, default=8192)
    validate.add_argument("--hidden", type=int, default=64)

    roofline = sub.add_parser(
        "roofline", help="place the GCN kernels on a platform roofline"
    )
    roofline.add_argument(
        "--platform", choices=("cpu", "gpu", "piuma"), default="piuma"
    )
    roofline.add_argument("--dataset", default="products")

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "name",
        help="experiment id: table1, fig2 ... fig10 (see DESIGN.md)",
    )
    experiment.add_argument("--max-vertices", type=int, default=16384)

    report = sub.add_parser(
        "report", help="run every experiment into one markdown report"
    )
    report.add_argument("--max-vertices", type=int, default=8192)
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--only", nargs="+", default=None,
                        help="subset of experiment ids")

    serve = sub.add_parser(
        "serve",
        help="run the tiered prediction service (JSON over HTTP): "
             "analytical tier 0, cached tier 1, simulated tier 2",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8023,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=None,
                       help="DES worker processes (default: min(4, CPUs), "
                            "or $REPRO_SWEEP_WORKERS)")
    serve.add_argument("--max-pending", type=int, default=32,
                       help="admission bound: pending tier-2 jobs beyond "
                            "this are rejected with HTTP 429 + Retry-After")
    serve.add_argument("--retries", type=int, default=1,
                       help="extra DES attempts after a worker crash or "
                            "timeout before degrading to the model")
    serve.add_argument("--task-timeout", type=float, default=120.0,
                       metavar="S",
                       help="per-attempt DES wall-clock budget; hung "
                            "workers are killed (0 disables)")
    serve.add_argument("--deadline", type=float, default=30.0, metavar="S",
                       help="default per-request deadline before the "
                            "answer degrades to the tier-0 model "
                            "(queries may override with 'deadline_s')")
    serve.add_argument("--breaker-threshold", type=int, default=5,
                       help="consecutive crash/timeout attempts that trip "
                            "the circuit breaker")
    serve.add_argument("--breaker-reset", type=float, default=30.0,
                       metavar="S",
                       help="breaker cooldown before a half-open probe")
    serve.add_argument("--cache-dir", default=None,
                       help="shared result-cache location (default "
                            "benchmarks/out/.cache or $REPRO_CACHE_DIR)")
    serve.add_argument("--cache-max-bytes", type=int, default=None,
                       help="LRU size budget for the shared cache "
                            "(default: unbounded)")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the shared cache (tiers 0/2 "
                            "only)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request log lines")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="S",
                       help="on SIGTERM/SIGINT: stop accepting, wait up "
                            "to this long for in-flight jobs to finish, "
                            "then close (remaining jobs fail with "
                            "structured shutdown errors)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded deterministic chaos campaign: composed fault "
             "schedules (crashes, hangs, kill+resume, saturation, "
             "corrupt cache, dead shards) against the batch, service, "
             "and multinode frontends, with the recovery invariants "
             "verified (no lost work, bit-identity, breaker closes)",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="schedule-derivation seed (each "
                            "(frontend, round) cell has its own stream)")
    chaos.add_argument("--rounds", type=int, default=1,
                       help="chaos rounds per frontend")
    chaos.add_argument("--frontend",
                       choices=("batch", "service", "multinode", "all"),
                       default="all",
                       help="which frontend(s) to torture (default all)")
    chaos.add_argument("--schedule", default=None, metavar="PATH",
                       help="JSON fault-schedule file to replay instead "
                            "of deriving one from --seed/--rounds")
    chaos.add_argument("--artifact", default=None, metavar="PATH",
                       help="write the JSON verdict document (schedule, "
                            "per-invariant outcomes, recovery stats)")
    chaos.add_argument("--workdir", default=None, metavar="DIR",
                       help="scratch directory kept after the run for "
                            "postmortems (default: temp dir, removed)")

    cache = sub.add_parser(
        "cache",
        help="inspect or maintain the shared content-addressed result "
             "cache",
    )
    cache.add_argument("action", choices=("stats", "gc", "clear"),
                       help="stats: size/hygiene summary; gc: evict LRU "
                            "entries beyond --max-bytes; clear: delete "
                            "every record")
    cache.add_argument("--cache-dir", default=None,
                       help="cache location (default benchmarks/out/.cache "
                            "or $REPRO_CACHE_DIR)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="size budget for gc (required for gc)")
    cache.add_argument("--entries", type=int, default=0, metavar="N",
                       help="stats: also list the N most recently used "
                            "records")
    return parser


def _cmd_datasets(_args, out):
    from repro.graphs.datasets import OGB_TABLE_I
    from repro.report.tables import format_number, format_table

    rows = [
        [s.name, format_number(s.n_vertices), format_number(s.n_edges),
         f"{s.avg_degree:.1f}", s.task, f"{s.locality:.2f}"]
        for s in OGB_TABLE_I
    ]
    out(format_table(
        ["name", "|V|", "|E|", "avg deg", "task", "locality"],
        rows, title="Table I — OGB datasets",
    ))
    return 0


def _cmd_breakdown(args, out):
    from repro.report.figures import breakdown_chart
    from repro.report.tables import format_time_ns
    from repro.workloads.gcn_workload import workload_for

    workload = workload_for(args.dataset, args.hidden)
    if args.platform == "cpu":
        from repro.cpu.config import XeonConfig
        from repro.cpu.gcn import gcn_breakdown

        result = gcn_breakdown(workload, XeonConfig())
    elif args.platform == "gpu":
        from repro.gpu.config import A100Config
        from repro.gpu.gcn import gcn_breakdown

        result = gcn_breakdown(workload, A100Config())
    else:
        from repro.piuma.config import PIUMAConfig
        from repro.piuma.gcn import gcn_breakdown

        result = gcn_breakdown(workload, PIUMAConfig.node())
    label = f"{args.dataset} K={args.hidden} on {args.platform}"
    out(breakdown_chart([(label, result)]))
    out(f"total: {format_time_ns(result.total)}")
    return 0


def _cmd_speedup(args, out):
    from repro.core.speedup import compare_platforms
    from repro.cpu.config import XeonConfig
    from repro.gpu.config import A100Config
    from repro.piuma.config import PIUMAConfig
    from repro.report.tables import format_table
    from repro.workloads.gcn_workload import workload_for

    comparison = compare_platforms(
        workload_for(args.dataset, args.hidden),
        XeonConfig(), A100Config(), PIUMAConfig.node(),
    )
    out(format_table(
        ["platform", "GCN speedup", "SpMM speedup"],
        [[p, f"{comparison.gcn_speedup(p):.2f}x",
          f"{comparison.spmm_speedup(p):.2f}x"]
         for p in ("piuma", "gpu")],
        title=f"{args.dataset} K={args.hidden} vs dual-socket Xeon",
    ))
    return 0


def _cmd_simulate(args, out):
    from repro.report.tables import format_time_ns
    from repro.runtime import ResultCache, run_sweep, spmm_task

    task = spmm_task(
        args.dataset, args.hidden, kernel=args.kernel,
        max_vertices=args.max_vertices,
        n_cores=args.cores,
        dram_latency_ns=args.latency_ns,
        dram_bandwidth_scale=args.bandwidth_scale,
        threads_per_mtp=args.threads_per_mtp,
        scheduler=args.scheduler,
        engine=args.engine,
    )
    cache = ResultCache(enabled=not args.no_cache)
    report = run_sweep([task], workers=1, cache=cache)
    record = report.records[0]
    out(f"graph: {record['n_vertices']:,} vertices, "
        f"{record['n_edges']:,} edges "
        f"(window {record['window_edges']:,} edges)")
    out(f"kernel {args.kernel}, {args.cores} cores, "
        f"{args.threads_per_mtp} threads/MTP, "
        f"{args.latency_ns:.0f} ns DRAM")
    out(f"achieved {record['gflops']:.1f} GFLOP/s "
        f"({record['efficiency']:.0%} of the Eq.5 model); "
        f"memory utilization {record['memory_utilization']:.0%}")
    out(f"projected kernel time: "
        f"{format_time_ns(record['projected_time_ns'])}")
    if report.cache_hits:
        out("(served from the result cache; --no-cache to re-simulate)")
    return 0


def _resolve_degradation(value):
    """``--degrade`` argument -> :class:`DegradationSpec`.

    Accepts a preset name from :data:`DEGRADATION_PRESETS` or the path
    of a JSON file holding the spec's fields.
    """
    import json
    import pathlib

    from repro.piuma import DEGRADATION_PRESETS
    from repro.piuma.degradation import DegradationSpec

    preset = DEGRADATION_PRESETS.get(value)
    if preset is not None:
        return preset
    path = pathlib.Path(value)
    if path.is_file():
        return DegradationSpec.from_json(json.loads(path.read_text()))
    raise ValueError(
        f"--degrade {value!r} is neither a preset "
        f"({', '.join(sorted(DEGRADATION_PRESETS))}) nor a JSON spec file"
    )


def _cmd_sweep(args, out):
    from repro.report.tables import format_table
    from repro.runtime import (
        ProgressTracker,
        ResultCache,
        SweepCheckpoint,
        gc_manifests,
        run_sweep,
        spmm_task,
    )
    from repro.workloads.sweeps import EMBEDDING_SWEEP, grid

    dims = tuple(args.dims) if args.dims else EMBEDDING_SWEEP
    points = grid(
        n_cores=args.cores,
        embedding_dim=dims,
        dram_latency_ns=args.latency_ns,
        dram_bandwidth_scale=args.bandwidth_scale,
        threads_per_mtp=args.threads_per_mtp,
    )
    tasks = [
        spmm_task(
            args.dataset, point.pop("embedding_dim"), kernel=args.kernel,
            max_vertices=args.max_vertices, seed=args.seed, **point,
        )
        for point in points
    ]
    if args.degrade:
        # Rewrite the tasks *before* deriving the checkpoint manifest:
        # the spec is part of each task's identity, so a degraded sweep
        # never shares a manifest (or cache records) with a healthy one.
        spec = _resolve_degradation(args.degrade)
        tasks = [task.with_degradation(spec) for task in tasks]
    if args.scheduler:
        # Same ordering rule as --degrade: the backend is part of each
        # task's identity (cache key + checkpoint manifest).
        tasks = [task.with_scheduler(args.scheduler) for task in tasks]
    if args.engine:
        tasks = [task.with_engine(args.engine) for task in tasks]
    cache = ResultCache(directory=args.cache_dir,
                        enabled=not args.no_cache)
    if args.clear_cache:
        out(f"cleared {cache.clear()} cached record(s)")
    removed = gc_manifests(directory=cache.directory)
    if removed:
        out(f"garbage-collected {removed} abandoned sweep manifest(s)")
    checkpoint = SweepCheckpoint.for_tasks(tasks, directory=cache.directory)
    progress = ProgressTracker(total=len(tasks), out=out)
    report = run_sweep(tasks, workers=args.workers, cache=cache,
                       progress=progress, timeout=args.timeout,
                       retries=args.retries, on_error=args.on_error,
                       checkpoint=checkpoint, resume=args.resume,
                       check_level=args.check_level)
    rows = []
    for task, record in zip(report.tasks, report.records):
        over = dict(task.overrides)
        row = [over["n_cores"], task.embedding_dim,
               f"{over['dram_latency_ns']:.0f}",
               f"{over['dram_bandwidth_scale']:g}",
               over["threads_per_mtp"]]
        if record.get("source") == "failed":
            row += [f"failed:{record['error']['kind']}", "-", "-", "-"]
        else:
            mark = "*" if record.get("source") == "model_fallback" else ""
            row += [f"{record['gflops']:.1f}{mark}",
                    f"{record['model_gflops']:.1f}",
                    f"{record['efficiency']:.2f}",
                    f"{record['memory_utilization']:.0%}"]
        rows.append(row)
    out(format_table(
        ["cores", "K", "lat ns", "bw", "thr/MTP",
         "DES GF", "model GF", "eff", "mem util"],
        rows,
        title=f"{args.dataset}/{args.kernel} sweep "
              f"({args.max_vertices:,}-vertex window)",
    ))
    if report.resumed:
        out(f"resumed {report.resumed} point(s) from "
            f"{checkpoint.path.name}")
    if report.failures:
        out(f"{len(report.failures)} point(s) degraded "
            "(* = Eq.5 model fallback):")
        for entry in report.failures:
            out(f"  - {entry['label']}: {entry['kind']} after "
                f"{entry['attempts']} attempt(s) — {entry['message']}")
    out(progress.summary())
    if args.profile:
        for line in progress.profile_lines():
            out(line)
    out(f"cache: {cache.stats}")
    if args.degrade:
        out(f"degraded fabric: --degrade {args.degrade} (records carry "
            "a \"degradation\" provenance field)")
    if args.scheduler:
        out(f"event scheduler: --scheduler {args.scheduler} "
            "(bit-identical results; host speed only)")
    if args.engine:
        out(f"DES engine: --engine {args.engine} "
            "(bit-identical results; host speed only)")
    # The sweep ran to completion (possibly degraded): its manifest has
    # served its purpose.  Failed points are deliberately not recorded
    # in it, so a later --resume rerun would retry exactly those.
    if not report.failures:
        checkpoint.discard()
    return 0


def _cmd_multinode(args, out):
    import json
    import pathlib

    from repro.ext.distributed import MULTINODE_ENVELOPES
    from repro.piuma.multinode import scaling_figure, strong_scaling
    from repro.report.tables import format_table, format_time_ns
    from repro.runtime import ResultCache

    nodes = sorted(set(args.nodes))
    if any(n < 1 for n in nodes):
        raise ValueError("--nodes must be positive")
    strategies = (("block", "degree") if args.strategy == "both"
                  else (args.strategy,))
    cache = ResultCache(directory=args.cache_dir,
                        enabled=not args.no_cache)
    sweep_kwargs = {
        "workers": args.workers,
        "cache": cache,
        "timeout": args.timeout,
        "retries": args.retries,
        "on_error": args.on_error,
        "check_level": args.check_level,
        "engine": args.engine,
        "scheduler": args.scheduler,
    }
    if args.degrade:
        sweep_kwargs["degradation"] = _resolve_degradation(args.degrade)
    recovery = None
    if args.recover:
        from repro.runtime.shard import ShardRecovery

        recovery = ShardRecovery(
            retries=max(args.retries, 1), timeout=args.timeout,
            hedge_after_s=args.hedge_after,
        )
    result = strong_scaling(
        args.dataset, nodes=tuple(nodes), strategies=strategies,
        embedding_dim=args.hidden, kernel=args.kernel,
        max_vertices=args.max_vertices, seed=args.seed,
        sweep_kwargs=sweep_kwargs, checkpoint_dir=cache.directory,
        resume=args.resume, recovery=recovery,
    )
    rows = result["rows"]
    out(format_table(
        ["strategy", "nodes", "time", "speedup", "eff",
         "comm%", "cut%", "balance", "halo MB", "dgas x"],
        [[r["strategy"], r["n_nodes"], format_time_ns(r["time_ns"]),
          f"{r['speedup']:.2f}x", f"{r['efficiency']:.2f}",
          f"{100 * r['comm_share']:.1f}", f"{100 * r['cut_fraction']:.1f}",
          f"{r['balance']:.3f}", f"{r['halo_bytes'] / 1e6:.2f}",
          f"{r['dgas_ratio']:.2f}"]
         for r in rows],
        title=f"{args.dataset}/{args.kernel} multi-node strong scaling "
              f"({args.max_vertices:,}-vertex window per study)",
    ))
    out(scaling_figure(rows, nodes))
    full = next((r for r in rows if r["n_nodes"] == max(nodes)), None)
    if full is not None and full["full_time_ns"] != full["time_ns"]:
        out(f"full-scale projection ({args.dataset}): "
            f"{format_time_ns(full['full_time_ns'])} per SpMM at "
            f"{max(nodes)} nodes ({full['strategy']})")
    low, high = MULTINODE_ENVELOPES[args.kernel]
    if args.degrade:
        # Same exemption as the conformance oracle: the analytical DGAS
        # aggregate knows nothing of fault derating.
        breaches = []
        out(f"Eq.5 DGAS envelope [{low}, {high}]: skipped "
            f"(degraded fabric '{args.degrade}')")
    elif recovery is not None:
        # The failure model widens the envelope per degraded shard and
        # renders an explicit verdict instead of a raw ratio check.
        breaches = [r for r in rows
                    if r["envelope_verdict"]["verdict"] == "violated"]
        degraded = [r for r in rows
                    if r["envelope_verdict"]["verdict"] == "degraded"]
        out(f"Eq.5 DGAS envelope [{low}, {high}]: "
            + (f"VIOLATED at {len(breaches)} point(s)" if breaches
               else (f"held — {len(degraded)} point(s) on a "
                     "shard_fallback-widened envelope" if degraded
                     else "held at every point")))
        for r in degraded:
            verdict = r["envelope_verdict"]
            out(f"  {r['strategy']}/{r['n_nodes']} nodes: "
                f"{verdict['degraded_shards']} shard(s) degraded to "
                f"Eq.5 fallback, envelope widened x{verdict['widened']:.2f}"
                f" (ratio {verdict['ratio']:.2f})")
        stats = {}
        for r in rows:
            for name, value in (r.get("recovery") or {}).items():
                stats[name] = stats.get(name, 0) + value
        if stats.get("retries") or stats.get("hedges_launched"):
            out("recovery: "
                f"{stats.get('retries', 0)} retried shard attempt(s), "
                f"{stats.get('hedges_won', 0)}/"
                f"{stats.get('hedges_launched', 0)} hedge(s) won, "
                f"{stats.get('fallbacks', 0)} fallback(s)")
    else:
        breaches = [r for r in rows if not low <= r["dgas_ratio"] <= high]
        out(f"Eq.5 DGAS envelope [{low}, {high}]: "
            + ("held at every point" if not breaches
               else f"VIOLATED at {len(breaches)} point(s)"))
    failures = sum(r["failures"] for r in rows)
    if failures:
        out(f"{failures} shard(s) degraded to the Eq.5 fallback")
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "dataset": args.dataset,
            "kernel": args.kernel,
            "max_vertices": args.max_vertices,
            "seed": args.seed,
            "nodes": nodes,
            "strategies": list(strategies),
            "envelope": [low, high],
            "rows": rows,
        }, indent=2, sort_keys=True) + "\n")
        out(f"scaling rows written to {path}")
    return 0 if not breaches else 1


#: Record fields that must be bit-identical across the fast and
#: reference engines (``repro resilience --verify-engines``).
_ENGINE_IDENTITY_FIELDS = (
    "sim_time_ns", "gflops", "projected_time_ns", "events",
    "window_edges", "memory_utilization", "achieved_bandwidth",
    "tag_stats",
)


def _cmd_resilience(args, out):
    import json
    import pathlib

    from repro.piuma import effective_total_bandwidth, spmm_model
    from repro.piuma.degradation import DegradationSpec
    from repro.report.tables import format_table
    from repro.runtime import ResultCache, run_sweep, spmm_task
    from repro.testing.oracle import ENVELOPES

    severities = [float(s) for s in args.severities]
    if sorted(severities) != severities:
        raise ValueError("--severities must be non-decreasing")

    def task_for(severity, fast_path=True):
        # The primary curve runs on --engine; the --verify-engines leg
        # pins the reference loop through the unified knob (the legacy
        # fast_path flag spelled the same request before it existed).
        engine = args.engine if fast_path else "reference"
        task = spmm_task(
            args.dataset, args.hidden, kernel=args.kernel,
            max_vertices=args.max_vertices, seed=args.seed,
            n_cores=args.cores, engine=engine,
            scheduler=args.scheduler,
        )
        if severity > 0.0:
            task = task.with_degradation(
                DegradationSpec.at_severity(severity, seed=args.fault_seed)
            )
        return task

    tasks = [task_for(s) for s in severities]
    cache = ResultCache(enabled=not args.no_cache)
    report = run_sweep(tasks, workers=args.workers, cache=cache,
                       check_level=args.check_level)

    mismatches = []
    if args.verify_engines:
        reference = run_sweep(
            [task_for(s, fast_path=False) for s in severities],
            workers=args.workers, cache=cache,
            check_level=args.check_level,
        )
        for severity, fast, ref in zip(
            severities, report.records, reference.records
        ):
            diverged = [
                name for name in _ENGINE_IDENTITY_FIELDS
                if fast[name] != ref[name]
            ]
            if diverged:
                mismatches.append((severity, diverged))

    low, high = ENVELOPES[args.kernel]
    baseline = report.records[0]["sim_time_ns"]
    rows, curve = [], []
    monotone = True
    in_envelope = True
    previous = None
    for severity, record in zip(severities, report.records):
        config = task_for(severity).config()
        bandwidth = effective_total_bandwidth(config)
        model = spmm_model(
            record["n_vertices"], record["n_edges"], args.hidden, config,
            read_bandwidth=bandwidth, write_bandwidth=bandwidth,
        )
        efficiency = (record["gflops"] / model.gflops
                      if model.gflops > 0 else 0.0)
        slowdown = (record["sim_time_ns"] / baseline
                    if baseline > 0 else 0.0)
        if previous is not None and record["sim_time_ns"] < previous:
            monotone = False
        previous = record["sim_time_ns"]
        if not low <= efficiency <= high:
            in_envelope = False
        rows.append([
            f"{severity:.2f}", f"{record['sim_time_ns']:,.0f}",
            f"{slowdown:.2f}x", f"{bandwidth:.0f}",
            f"{record['gflops']:.1f}", f"{model.gflops:.1f}",
            f"{efficiency:.2f}",
        ])
        curve.append({
            "severity": severity,
            "sim_time_ns": record["sim_time_ns"],
            "slowdown": slowdown,
            "effective_bandwidth_gbps": bandwidth,
            "gflops": record["gflops"],
            "derated_model_gflops": model.gflops,
            "derated_efficiency": efficiency,
            "degradation": record.get("degradation"),
        })
    out(format_table(
        ["severity", "sim ns", "slowdown", "bw GB/s",
         "DES GF", "derated model GF", "eff"],
        rows,
        title=f"graceful degradation — {args.dataset}/{args.kernel} "
              f"K={args.hidden}, {args.cores} cores "
              f"({args.max_vertices:,}-vertex window)",
    ))

    passed = monotone and in_envelope and not mismatches
    out(f"monotone slowdown: {'yes' if monotone else 'NO'}; "
        f"derated Eq.5 envelope [{low}, {high}]: "
        f"{'held' if in_envelope else 'VIOLATED'}")
    if args.verify_engines:
        if mismatches:
            for severity, diverged in mismatches:
                out(f"engine mismatch at severity {severity:.2f}: "
                    + ", ".join(diverged))
        else:
            out("fast and reference engines bit-identical at every "
                "severity")
    if args.json:
        path = pathlib.Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({
            "point": {
                "dataset": args.dataset, "kernel": args.kernel,
                "embedding_dim": args.hidden, "n_cores": args.cores,
                "max_vertices": args.max_vertices, "seed": args.seed,
                "fault_seed": args.fault_seed,
                "check_level": args.check_level,
            },
            "curve": curve,
            "monotone": monotone,
            "envelope": [low, high],
            "in_envelope": in_envelope,
            "engines_verified": bool(args.verify_engines),
            "engine_mismatches": [
                {"severity": s, "fields": d} for s, d in mismatches
            ],
            "passed": passed,
        }, indent=2, sort_keys=True) + "\n")
        out(f"curve written to {path}")
    return 0 if passed else 1


def _cmd_check(args, out):
    from repro.testing import run_conformance

    report = run_conformance(
        n_cases=args.cases,
        seed=args.seed,
        check_level=args.level,
        engine=args.engine,
        metamorphic=not args.no_metamorphic,
        mutations=not args.no_mutations,
        artifact=args.artifact,
        out=None if args.quiet else out,
    )
    out(report.summary())
    for failure in report.failures:
        out(f"  - {failure['case']} {failure['check']}: "
            f"{failure['detail']}")
    for failure in report.mutation_failures:
        out(f"  - mutation {failure['mutation']} ({failure['engine']}): "
            f"{failure['detail']}")
    if report.shrunk is not None:
        out(f"  shrunk repro ({report.shrunk['check']}): "
            f"{report.shrunk['case']}")
    return 0 if report.passed else 1


def _cmd_advise(args, out):
    from repro.core.contour import spmm_fraction
    from repro.cpu.config import XeonConfig

    fraction = spmm_fraction(
        int(args.vertices), args.density, XeonConfig(),
        embedding_dim=args.hidden,
    )
    verdict = (
        "accelerator-favored" if fraction >= 0.6
        else "mixed" if fraction >= 0.4 else "CPU/GPU-favored"
    )
    out(f"SpMM share of a K={args.hidden} GCN layer on CPU: "
        f"{fraction:.0%} -> {verdict}")
    return 0


def _cmd_calibrate(args, out):
    from repro.report.tables import format_table
    from repro.runtime import ResultCache, run_sweep
    from repro.validation import calibration_from_records, calibration_tasks

    tasks = calibration_tasks(
        args.dataset, core_counts=tuple(args.cores),
        embedding_dims=tuple(args.dims), max_vertices=args.max_vertices,
    )
    cache = ResultCache(enabled=not args.no_cache)
    report = run_sweep(tasks, workers=args.workers, cache=cache)
    result = calibration_from_records(report.tasks, report.records)
    n_vertices = report.records[0]["n_vertices"]
    out(format_table(
        ["cores", "K", "DES GF", "model GF", "efficiency"],
        result.table_rows(),
        title=f"DMA-kernel calibration on {args.dataset}/"
              f"{n_vertices:,} vertices",
    ))
    out(f"mean {result.mean_efficiency:.2f}, "
        f"min {result.min_efficiency:.2f}; "
        f"recommended node-projection efficiency: {result.recommended:.2f}")
    return 0


def _cmd_validate(args, out):
    from repro.graphs.datasets import get_dataset
    from repro.validation import run_all_checks

    adj = get_dataset(args.dataset).materialize(
        max_vertices=args.max_vertices, seed=0
    )
    reports = run_all_checks(adj, embedding_dim=args.hidden)
    failures = 0
    for report in reports:
        status = "PASS" if report.passed else "FAIL"
        out(f"[{status}] {report.name}: {report.detail}")
        failures += not report.passed
    return 1 if failures else 0


def _cmd_roofline(args, out):
    from repro.graphs.datasets import get_dataset
    from repro.report.roofline import (
        KernelPoint,
        cpu_roofline,
        gpu_roofline,
        piuma_roofline,
        render_roofline,
        spmm_kernel_point,
    )

    spec = get_dataset(args.dataset)
    v, e = spec.n_vertices, spec.n_edges + spec.n_vertices
    if args.platform == "cpu":
        from repro.cpu.config import XeonConfig
        from repro.cpu.spmm import spmm_time

        config = XeonConfig()
        roofline = cpu_roofline(config)
        achieved = spmm_time(v, e, 256, config).gflops
    elif args.platform == "gpu":
        from repro.gpu.config import A100Config
        from repro.gpu.kernels import spmm_time as gpu_spmm

        config = A100Config()
        roofline = gpu_roofline(config)
        achieved = gpu_spmm(v, e, 256, config, spec.locality).gflops
    else:
        from repro.piuma import spmm_model
        from repro.piuma.config import PIUMAConfig

        config = PIUMAConfig.node()
        roofline = piuma_roofline(config)
        achieved = spmm_model(v, e, 256, config).gflops * 0.88
    gemm_intensity = 2 * 256 * 256 / ((256 + 256) * 4)
    gemm = KernelPoint(
        "dense K=256", gemm_intensity,
        min(roofline.peak_gflops * 0.6,
            roofline.attainable(gemm_intensity)),
    )
    spmm_point = spmm_kernel_point(v, e, 256, achieved)
    out(render_roofline(roofline, [spmm_point, gemm]))
    return 0


def _cmd_experiment(args, out):
    from repro.experiments import ExperimentContext, run_experiment

    context = ExperimentContext(max_vertices=args.max_vertices)
    out(run_experiment(args.name, context))
    return 0


def _cmd_report(args, out):
    import pathlib

    from repro.experiments import ExperimentContext
    from repro.report.markdown import generate_report

    context = ExperimentContext(max_vertices=args.max_vertices)
    text = generate_report(context, experiments=args.only)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        out(f"report written to {args.output}")
    else:
        out(text)
    return 0


def _cmd_serve(args, out):
    from repro.runtime import (
        CircuitBreaker,
        GracefulShutdown,
        PredictionService,
        ResultCache,
        default_workers,
        make_server,
    )

    cache = None
    if not args.no_cache:
        cache = ResultCache(directory=args.cache_dir,
                            max_bytes=args.cache_max_bytes)
    service = PredictionService(
        cache,
        workers=args.workers or default_workers(),
        max_pending=args.max_pending,
        retries=args.retries,
        task_timeout_s=args.task_timeout or None,
        default_deadline_s=args.deadline,
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_threshold,
            reset_timeout_s=args.breaker_reset,
        ),
    )
    server = make_server(service, host=args.host, port=args.port,
                         out=None if args.quiet else out)
    host, port = server.server_address[:2]
    out(f"repro serve listening on http://{host}:{port}")
    out("endpoints: POST /predict (JSON query), "
        "GET /predict?dataset=...&k=..., GET /healthz")
    if cache is not None:
        out(f"shared cache: {cache.directory}"
            + (f" (budget {cache.max_bytes:,} bytes)"
               if cache.max_bytes else ""))
    shutdown = GracefulShutdown(server, service,
                                drain_timeout_s=args.drain_timeout,
                                out=out).install()
    try:
        server.serve_forever()
        if shutdown.signal_name:
            out(f"{shutdown.signal_name} received; draining before "
                "shutdown")
    except KeyboardInterrupt:
        out("interrupted; shutting down")
    finally:
        shutdown.uninstall()
        server.server_close()
        shutdown.drain()
    return 0


def _cmd_cache(args, out):
    from repro.report.tables import format_table
    from repro.runtime import ResultCache

    cache = ResultCache(directory=args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        out(f"cleared {removed} cached record(s) from {cache.directory} "
            "(stale tmp files, quarantined entries, and the eviction "
            "manifest swept too)")
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            raise ValueError("cache gc needs --max-bytes (the size "
                             "budget to evict down to)")
        evicted = cache.gc(max_bytes=args.max_bytes)
        out(f"evicted {evicted} least-recently-used record(s); "
            f"{len(cache)} remaining, {cache.total_bytes():,} bytes "
            f"(budget {args.max_bytes:,})")
        return 0
    entries = cache.entries()
    out(f"cache directory: {cache.directory}")
    out(f"{len(entries)} record(s), {cache.total_bytes():,} bytes")
    quarantined = cache.quarantined()
    if quarantined:
        out(f"{quarantined} corrupt entr(ies) quarantined (*.corrupt) — "
            "inspect or delete them; they are never read again")
    manifest = cache.read_manifest()
    if manifest:
        out(f"last gc: evicted {manifest['evicted_last_gc']} record(s) "
            f"down to {manifest['bytes']:,} bytes "
            f"(budget {manifest['max_bytes']:,})")
    if args.entries and entries:
        recent = list(reversed(entries))[:args.entries]
        out(format_table(
            ["key", "bytes", "age"],
            [[key[:16] + "…", f"{size:,}", _age(mtime)]
             for key, size, mtime in recent],
            title=f"{len(recent)} most recently used",
        ))
    return 0


def _age(mtime):
    import time

    seconds = max(0.0, time.time() - mtime)
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _cmd_chaos(args, out):
    import json
    import pathlib

    from repro.runtime.chaos import CHAOS_FRONTENDS, ChaosSchedule, run_chaos

    frontends = (CHAOS_FRONTENDS if args.frontend == "all"
                 else (args.frontend,))
    schedule = None
    if args.schedule:
        doc = json.loads(pathlib.Path(args.schedule).read_text())
        schedule = ChaosSchedule.from_json(doc)
        out(f"replaying schedule {args.schedule} "
            f"({len(schedule.events)} event(s), seed {schedule.seed})")
    verdict = run_chaos(
        seed=args.seed, frontends=frontends, rounds=args.rounds,
        schedule=schedule, workdir=args.workdir, out=out,
    )
    from repro.report.tables import format_table

    rows = []
    for frontend in verdict["frontends"]:
        for row in verdict["results"][frontend]:
            for name, outcome in row["invariants"].items():
                rows.append([
                    frontend, row["round"], name,
                    "ok" if outcome["passed"] else "FAIL",
                    outcome["detail"][:48],
                ])
    out(format_table(
        ["frontend", "round", "invariant", "verdict", "detail"], rows,
        title=f"chaos campaign (seed {verdict['seed']}, "
              f"{verdict['rounds']} round(s))",
    ))
    stats = verdict["stats"]
    out(f"faults injected: {stats['injected']}; "
        f"recovered by retry: {stats['recovered_retry']}; "
        f"by hedge: {stats['recovered_hedge']}; "
        f"degraded fallbacks: {stats['degraded_fallback']}; "
        f"structured rejections: {stats['rejected']}; "
        f"resumed points: {stats['resumed']}; "
        f"LOST: {stats['lost']}")
    out("verdict: " + ("PASSED — every invariant held under fault "
                       "composition" if verdict["passed"]
                       else "FAILED — see the table above"))
    if args.artifact:
        path = pathlib.Path(args.artifact)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdict, indent=2, sort_keys=True,
                                   default=str) + "\n")
        out(f"verdict artifact written to {path}")
    return 0 if verdict["passed"] else 1


_COMMANDS = {
    "datasets": _cmd_datasets,
    "breakdown": _cmd_breakdown,
    "speedup": _cmd_speedup,
    "simulate": _cmd_simulate,
    "sweep": _cmd_sweep,
    "multinode": _cmd_multinode,
    "resilience": _cmd_resilience,
    "check": _cmd_check,
    "advise": _cmd_advise,
    "calibrate": _cmd_calibrate,
    "validate": _cmd_validate,
    "roofline": _cmd_roofline,
    "experiment": _cmd_experiment,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "chaos": _cmd_chaos,
}


def main(argv=None, out=print):
    """CLI entry point; returns a process exit code."""
    from repro.runtime.errors import TaskError

    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except TaskError as error:
        out(f"error: {error.kind}: {error}")
        out("hint: completed points are checkpointed — rerun with "
            "--resume to continue, or --on-error skip|fallback to "
            "finish despite failures")
        return 3
    except (KeyError, ValueError) as error:
        out(f"error: {error}")
        return 2


if __name__ == "__main__":
    sys.exit(main())
