"""Distributed-memory CPU baseline (paper Section V-A and VI).

The paper argues CPU clusters can scale SpMM only by paying MPI
communication for every cut edge, while PIUMA's DGAS scales bandwidth
with no partitioning at all ("communication overheads of MPI
significantly reduce performance relative to an at-scale DGAS system",
citing the COST critique).  This module prices that trade: a
block-partitioned SpMM on an MPI cluster of Xeon nodes versus a
multi-node PIUMA system, with the edge cut measured on a (down-scaled)
materialization of the actual graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.partition import evaluate_partition, partition_graph


class ClusterConfigError(ValueError):
    """A :class:`ClusterConfig` field failed validation.

    A structured ``ValueError``: ``field``/``value``/``reason`` survive
    as attributes and :meth:`payload` serializes them for sweep
    reports and CLI output, matching the runtime error taxonomy's
    plain-JSON convention.
    """

    def __init__(self, field, value, reason):
        super().__init__(f"ClusterConfig.{field}={value!r}: {reason}")
        self.field = field
        self.value = value
        self.reason = reason

    def payload(self):
        return {
            "kind": "cluster-config",
            "field": self.field,
            "value": repr(self.value),
            "reason": self.reason,
        }


@dataclass(frozen=True)
class ClusterConfig:
    """An MPI cluster of identical Xeon nodes."""

    n_nodes: int
    interconnect_gbps: float = 12.5   # 100 Gb/s network per node
    mpi_latency_us: float = 2.0       # per message pair
    messages_per_layer: int = 2       # halo exchange: post + reduce

    def __post_init__(self):
        # Validation is exhaustive on purpose: an inf bandwidth or NaN
        # latency used to flow straight through the estimate arithmetic
        # and come back as a confidently nonsensical number (NaN time,
        # zero communication at any cut) instead of an error.
        if not isinstance(self.n_nodes, int) or self.n_nodes < 1:
            raise ClusterConfigError(
                "n_nodes", self.n_nodes, "must be a positive integer"
            )
        if not math.isfinite(self.interconnect_gbps) \
                or self.interconnect_gbps <= 0:
            raise ClusterConfigError(
                "interconnect_gbps", self.interconnect_gbps,
                "bisection bandwidth must be finite and positive",
            )
        if not math.isfinite(self.mpi_latency_us) or self.mpi_latency_us < 0:
            raise ClusterConfigError(
                "mpi_latency_us", self.mpi_latency_us,
                "message latency must be finite and non-negative",
            )
        if not isinstance(self.messages_per_layer, int) \
                or self.messages_per_layer < 0:
            raise ClusterConfigError(
                "messages_per_layer", self.messages_per_layer,
                "must be a non-negative integer",
            )


@dataclass(frozen=True)
class DistributedSpMMEstimate:
    """One distributed SpMM: local compute plus halo communication."""

    compute_ns: float
    communication_ns: float
    cut_fraction: float

    @property
    def time_ns(self):
        return self.compute_ns + self.communication_ns

    @property
    def communication_share(self):
        return self.communication_ns / self.time_ns if self.time_ns else 0.0


def measure_cut_fraction(adj, n_nodes, strategy="block"):
    """Edge-cut fraction of an ``n_nodes``-way partition of ``adj``.

    ``strategy`` names a :data:`repro.graphs.partition.PARTITION_STRATEGIES`
    entry; the historical default is the equal-vertex block partition.
    Always in ``[0, 1]`` and exactly ``0.0`` for a single node.
    """
    if n_nodes == 1:
        return 0.0
    part = partition_graph(adj, n_nodes, strategy=strategy)
    report = evaluate_partition(adj, part)
    return report.edge_cut / adj.nnz if adj.nnz else 0.0


def distributed_spmm_time(n_vertices, n_edges, embedding_dim, xeon_config,
                          cluster, cut_fraction):
    """SpMM across an MPI cluster of Xeon nodes.

    Local work divides across nodes (each node runs the single-node
    SpMM model on its shard); every cut edge ships a K-element feature
    vector over the interconnect, each node sending/receiving its share
    in parallel, plus per-layer message latency.
    """
    from repro.cpu.spmm import spmm_time

    if not 0 <= cut_fraction <= 1:
        raise ValueError("cut_fraction must be in [0, 1]")
    shard = spmm_time(
        max(1, n_vertices // cluster.n_nodes),
        max(1, n_edges // cluster.n_nodes),
        embedding_dim,
        xeon_config,
    )
    cut_edges = cut_fraction * n_edges
    halo_bytes = cut_edges * embedding_dim * 4
    per_node_bytes = halo_bytes / cluster.n_nodes
    communication_ns = (
        per_node_bytes / cluster.interconnect_gbps
        + cluster.messages_per_layer * cluster.mpi_latency_us * 1e3
    ) if cluster.n_nodes > 1 else 0.0
    return DistributedSpMMEstimate(
        compute_ns=shard.time_ns,
        communication_ns=communication_ns,
        cut_fraction=cut_fraction,
    )


def piuma_multinode_spmm_time(n_vertices, n_edges, embedding_dim,
                              piuma_node_config, n_nodes,
                              spmm_efficiency=0.88):
    """SpMM across ``n_nodes`` PIUMA nodes.

    The DGAS means no partitioning and no halo exchange: aggregate
    bandwidth simply scales, which is Key Takeaway 1 of Section V.
    """
    from repro.piuma.analytical import spmm_model

    bandwidth = piuma_node_config.total_bandwidth_gbps * n_nodes
    model = spmm_model(
        n_vertices, n_edges, embedding_dim, piuma_node_config,
        read_bandwidth=bandwidth, write_bandwidth=bandwidth,
    )
    return model.time_ns / spmm_efficiency


#: Tier-3 oracle bounds for the *sharded* multi-node simulation
#: (``repro.piuma.multinode``), per kernel, expressed as the allowed
#: ratio of the assembled end-to-end estimate over the Eq.5-derived
#: DGAS time of :func:`piuma_multinode_spmm_time`.  A partitioned
#: bulk-synchronous system can never beat the no-partition DGAS
#: aggregate by much (the DGAS path already assumes perfectly scaled
#: bandwidth; the floor absorbs per-shard DES windows landing *above*
#: the analytical model), while halo exchange plus load imbalance slow
#: it down boundedly.  The spread mirrors the per-kernel single-node
#: ``ENVELOPES`` of ``repro.testing.oracle``: the dma kernel tracks the
#: bandwidth-bound model closely, the loop kernel is latency-bound and
#: lands a large factor above it (its single-node efficiency floor is
#: 0.03, i.e. ~33x the model's time, before imbalance), the vertex
#: kernel sits between.  Calibrated on the seeded sharded case
#: population (healthy fabric, 200-case pool) with >= 1.5x headroom
#: above the observed extremes; the high ceilings are honest — tiny
#: conformance shards pay a per-shard launch overhead and never reach
#: the steady state the bandwidth model assumes, a regime the
#: realistic 16k-vertex ``repro multinode`` windows (observed < 4x)
#: never enter.
MULTINODE_ENVELOPES = {
    "dma": (0.3, 60.0),
    "loop": (0.3, 90.0),
    "vertex": (0.3, 24.0),
}

#: Back-compat / default bounds (the dma kernel, the paper's winner).
MULTINODE_ENVELOPE = MULTINODE_ENVELOPES["dma"]


def multinode_envelope_failure(time_ns, n_vertices, n_edges, embedding_dim,
                               piuma_node_config, n_nodes, kernel="dma"):
    """Tier-3 check: assembled multi-node time vs the Eq.5 DGAS envelope.

    Returns ``None`` when ``time_ns`` is within the kernel's
    :data:`MULTINODE_ENVELOPES` bounds of the analytical
    :func:`piuma_multinode_spmm_time`, else a human-readable detail
    string (the conformance suite's failure record body).
    """
    analytical = piuma_multinode_spmm_time(
        n_vertices, n_edges, embedding_dim, piuma_node_config, n_nodes
    )
    low, high = MULTINODE_ENVELOPES[kernel]
    if analytical <= 0:
        return f"analytical multi-node time {analytical} ns is not positive"
    ratio = time_ns / analytical
    if low <= ratio <= high:
        return None
    return (
        f"assembled {n_nodes}-node {kernel} time {time_ns:,.0f} ns is "
        f"{ratio:.3f}x the Eq.5 DGAS time {analytical:,.0f} ns, "
        f"outside [{low}, {high}]"
    )
