"""Distributed-memory CPU baseline (paper Section V-A and VI).

The paper argues CPU clusters can scale SpMM only by paying MPI
communication for every cut edge, while PIUMA's DGAS scales bandwidth
with no partitioning at all ("communication overheads of MPI
significantly reduce performance relative to an at-scale DGAS system",
citing the COST critique).  This module prices that trade: a
block-partitioned SpMM on an MPI cluster of Xeon nodes versus a
multi-node PIUMA system, with the edge cut measured on a (down-scaled)
materialization of the actual graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.partition import block_vertex_partition, evaluate_partition


@dataclass(frozen=True)
class ClusterConfig:
    """An MPI cluster of identical Xeon nodes."""

    n_nodes: int
    interconnect_gbps: float = 12.5   # 100 Gb/s network per node
    mpi_latency_us: float = 2.0       # per message pair
    messages_per_layer: int = 2       # halo exchange: post + reduce

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be positive")
        if self.interconnect_gbps <= 0:
            raise ValueError("interconnect bandwidth must be positive")


@dataclass(frozen=True)
class DistributedSpMMEstimate:
    """One distributed SpMM: local compute plus halo communication."""

    compute_ns: float
    communication_ns: float
    cut_fraction: float

    @property
    def time_ns(self):
        return self.compute_ns + self.communication_ns

    @property
    def communication_share(self):
        return self.communication_ns / self.time_ns if self.time_ns else 0.0


def measure_cut_fraction(adj, n_nodes):
    """Edge-cut fraction of a block vertex partition of ``adj``."""
    if n_nodes == 1:
        return 0.0
    part = block_vertex_partition(adj.n_rows, n_nodes)
    report = evaluate_partition(adj, part)
    return report.edge_cut / adj.nnz if adj.nnz else 0.0


def distributed_spmm_time(n_vertices, n_edges, embedding_dim, xeon_config,
                          cluster, cut_fraction):
    """SpMM across an MPI cluster of Xeon nodes.

    Local work divides across nodes (each node runs the single-node
    SpMM model on its shard); every cut edge ships a K-element feature
    vector over the interconnect, each node sending/receiving its share
    in parallel, plus per-layer message latency.
    """
    from repro.cpu.spmm import spmm_time

    if not 0 <= cut_fraction <= 1:
        raise ValueError("cut_fraction must be in [0, 1]")
    shard = spmm_time(
        max(1, n_vertices // cluster.n_nodes),
        max(1, n_edges // cluster.n_nodes),
        embedding_dim,
        xeon_config,
    )
    cut_edges = cut_fraction * n_edges
    halo_bytes = cut_edges * embedding_dim * 4
    per_node_bytes = halo_bytes / cluster.n_nodes
    communication_ns = (
        per_node_bytes / cluster.interconnect_gbps
        + cluster.messages_per_layer * cluster.mpi_latency_us * 1e3
    ) if cluster.n_nodes > 1 else 0.0
    return DistributedSpMMEstimate(
        compute_ns=shard.time_ns,
        communication_ns=communication_ns,
        cut_fraction=cut_fraction,
    )


def piuma_multinode_spmm_time(n_vertices, n_edges, embedding_dim,
                              piuma_node_config, n_nodes,
                              spmm_efficiency=0.88):
    """SpMM across ``n_nodes`` PIUMA nodes.

    The DGAS means no partitioning and no halo exchange: aggregate
    bandwidth simply scales, which is Key Takeaway 1 of Section V.
    """
    from repro.piuma.analytical import spmm_model

    bandwidth = piuma_node_config.total_bandwidth_gbps * n_nodes
    model = spmm_model(
        n_vertices, n_edges, embedding_dim, piuma_node_config,
        read_bandwidth=bandwidth, write_bandwidth=bandwidth,
    )
    return model.time_ns / spmm_efficiency
