"""Layer-wise sampled mini-batch inference (the GPU `papers` path).

When a graph exceeds device memory, the paper's GPU baseline samples
full neighborhoods layer by layer on the host and runs each batch's
computation on device (Fig 4).  This module implements that pipeline
*functionally*: build the L-hop receptive field of a batch of target
vertices, extract the induced block of the normalized adjacency, and
run the GCN on the subgraph — numerically equivalent, for the sampled
vertices, to full-graph inference with full-neighborhood sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.spmm import spmm


@dataclass(frozen=True)
class SampledBatch:
    """The receptive field of one target batch.

    Attributes
    ----------
    targets:
        The vertices whose outputs this batch computes.
    layers:
        One vertex array per GCN layer *input*, outermost first:
        ``layers[0]`` is the L-hop frontier, ``layers[-1]`` the targets.
    """

    targets: np.ndarray
    layers: tuple

    @property
    def frontier_size(self):
        return int(self.layers[0].shape[0])


def full_neighborhood(adj, vertices):
    """All in-neighbors of ``vertices`` (plus the vertices themselves)."""
    vertices = np.asarray(vertices, dtype=np.int64)
    chunks = [vertices]
    for v in vertices:
        neighbors, _ = adj.row(int(v))
        chunks.append(neighbors)
    return np.unique(np.concatenate(chunks))


def sample_batch(adj, targets, n_layers):
    """Expand targets to their L-hop full-neighborhood receptive field."""
    if n_layers < 1:
        raise ValueError("n_layers must be positive")
    targets = np.unique(np.asarray(targets, dtype=np.int64))
    if targets.size == 0:
        raise ValueError("batch has no targets")
    if targets.min() < 0 or targets.max() >= adj.n_rows:
        raise ValueError("target vertex out of range")
    layers = [targets]
    frontier = targets
    for _ in range(n_layers):
        frontier = full_neighborhood(adj, frontier)
        layers.append(frontier)
    return SampledBatch(targets=targets, layers=tuple(reversed(layers)))


def induced_block(adj, out_vertices, in_vertices):
    """The ``adj[out_vertices, in_vertices]`` block as a small CSR.

    Rows are the output vertices (local ids), columns the input
    vertices; entries copy the normalized adjacency weights.
    """
    in_position = {int(v): i for i, v in enumerate(in_vertices)}
    rows, cols, vals = [], [], []
    for local_u, u in enumerate(out_vertices):
        neighbors, weights = adj.row(int(u))
        for v, w in zip(neighbors, weights):
            position = in_position.get(int(v))
            if position is not None:
                rows.append(local_u)
                cols.append(position)
                vals.append(w)
    return COOMatrix(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals, dtype=np.float64),
        (len(out_vertices), len(in_vertices)),
    ).to_csr()


def sampled_inference(model, features, targets):
    """Inference for ``targets`` via layer-wise full-neighborhood batches.

    Numerically equivalent (up to float associativity) to
    ``model.forward(features)[targets]`` — asserted by the test suite —
    while touching only the receptive field, which is the point of
    sampling on memory-limited devices.
    """
    features = np.asarray(features, dtype=np.float64)
    batch = sample_batch(model.adj, targets, model.n_layers)
    h = features[batch.layers[0]]
    for depth, layer in enumerate(model.layers):
        in_vertices = batch.layers[depth]
        out_vertices = batch.layers[depth + 1]
        block = induced_block(model.adj, out_vertices, in_vertices)
        h = layer.activate(layer.update(spmm(block, h)))
    return h, batch
