"""Graph clustering for subgraph-based GCN training (paper Section VI).

Cluster-GCN-style training needs a clustering pass to build
mini-batches.  This module provides a functional label-propagation
clusterer over CSR graphs (the cheap, parallel family of methods the
paper says PIUMA accelerates, e.g. Louvain), a mini-batch builder on
top of it, and timing models: one clustering sweep is SpMM-shaped
traffic with K=1, so the platform SpMM models price it directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.spmm import spmm_traffic


def label_propagation(adj, n_iters=10, seed=0):
    """Cluster vertices by synchronous label propagation.

    Each vertex adopts the most common label among its neighbors
    (ties broken toward the smaller label); labels start unique.
    Returns an int64 label array of length ``n_rows`` relabeled to
    0..n_clusters-1.
    """
    if n_iters < 0:
        raise ValueError("n_iters must be non-negative")
    del seed  # deterministic variant; kept for API stability
    labels = np.arange(adj.n_rows, dtype=np.int64)
    row_of_edge = np.repeat(
        np.arange(adj.n_rows, dtype=np.int64), adj.row_degrees()
    )
    for _ in range(n_iters):
        neighbor_labels = labels[adj.indices]
        # Majority label per row: count (row, label) pairs.
        keys = row_of_edge * (adj.n_rows + 1) + neighbor_labels
        unique_keys, counts = np.unique(keys, return_counts=True)
        rows = unique_keys // (adj.n_rows + 1)
        candidate = unique_keys % (adj.n_rows + 1)
        # Sort so the best (count desc, label asc) pair per row wins.
        order = np.lexsort((candidate, -counts, rows))
        rows_sorted = rows[order]
        first = np.ones(rows_sorted.shape[0], dtype=bool)
        first[1:] = rows_sorted[1:] != rows_sorted[:-1]
        new_labels = labels.copy()
        new_labels[rows_sorted[first]] = candidate[order][first]
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    _, relabeled = np.unique(labels, return_inverse=True)
    return relabeled.astype(np.int64)


def cluster_minibatches(labels, max_batch_vertices):
    """Group clusters into mini-batches of bounded vertex count.

    Greedy first-fit over clusters in size order (Cluster-GCN's
    stochastic multiple-partition scheme, deterministic variant).
    Returns a list of int64 vertex arrays covering every vertex once.
    """
    if max_batch_vertices < 1:
        raise ValueError("max_batch_vertices must be positive")
    labels = np.asarray(labels, dtype=np.int64)
    batches = []
    current = []
    current_size = 0
    cluster_ids, sizes = np.unique(labels, return_counts=True)
    for cluster, size in sorted(
        zip(cluster_ids, sizes), key=lambda pair: -pair[1]
    ):
        if current_size and current_size + size > max_batch_vertices:
            batches.append(np.concatenate(current))
            current, current_size = [], 0
        current.append(np.flatnonzero(labels == cluster))
        current_size += size
    if current:
        batches.append(np.concatenate(current))
    return batches


@dataclass(frozen=True)
class ClusteringCost:
    """Per-sweep clustering cost on one platform."""

    time_ns: float
    sweeps: int

    @property
    def total_ns(self):
        return self.time_ns * self.sweeps


def clustering_time_cpu(n_vertices, n_edges, config, sweeps=10,
                        n_cores=None):
    """Label-propagation cost on the Xeon model.

    One sweep touches every edge once with K=1 payloads — SpMM-shaped
    traffic priced at the CPU SpMM model.
    """
    from repro.cpu.spmm import spmm_time

    per_sweep = spmm_time(
        n_vertices, n_edges, 1, config, n_cores=n_cores, skew=0.0
    ).time_ns
    return ClusteringCost(time_ns=per_sweep, sweeps=sweeps)


def clustering_time_piuma(n_vertices, n_edges, config, sweeps=10,
                          spmm_efficiency=0.88):
    """Label-propagation cost on the PIUMA model (Eq. 5 at K=1)."""
    from repro.piuma.analytical import spmm_model

    per_sweep = spmm_model(n_vertices, n_edges, 1, config).time_ns
    return ClusteringCost(
        time_ns=per_sweep / spmm_efficiency, sweeps=sweeps
    )
