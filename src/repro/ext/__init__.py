"""Extensions: the paper's Section VI directions, made quantitative.

Heterogeneous SoC (PIUMA + dense tiles), random-walk neighbor sampling,
clustering for mini-batch GCN training, and the distributed-memory CPU
baseline that DGAS obviates.
"""

from repro.ext.clustering import (
    ClusteringCost,
    cluster_minibatches,
    clustering_time_cpu,
    clustering_time_piuma,
    label_propagation,
)
from repro.ext.distributed import (
    ClusterConfig,
    DistributedSpMMEstimate,
    distributed_spmm_time,
    measure_cut_fraction,
    piuma_multinode_spmm_time,
)
from repro.ext.minibatch import (
    SampledBatch,
    induced_block,
    sample_batch,
    sampled_inference,
)
from repro.ext.heterogeneous import (
    DenseUnit,
    HeterogeneousSoC,
    hetero_gcn_breakdown,
    sweep_dense_units,
)
from repro.ext.sampling import (
    WalkTimeEstimate,
    random_walks,
    walk_time_cpu,
    walk_time_piuma,
)
from repro.ext.training_cost import (
    TrainingStepEstimate,
    compare_training,
    training_step_cost,
)

__all__ = [
    "ClusterConfig",
    "ClusteringCost",
    "DenseUnit",
    "DistributedSpMMEstimate",
    "HeterogeneousSoC",
    "WalkTimeEstimate",
    "cluster_minibatches",
    "clustering_time_cpu",
    "clustering_time_piuma",
    "distributed_spmm_time",
    "hetero_gcn_breakdown",
    "label_propagation",
    "measure_cut_fraction",
    "piuma_multinode_spmm_time",
    "random_walks",
    "sample_batch",
    "sampled_inference",
    "SampledBatch",
    "TrainingStepEstimate",
    "compare_training",
    "induced_block",
    "sweep_dense_units",
    "training_step_cost",
    "walk_time_cpu",
    "walk_time_piuma",
]
