"""Training-step cost across platforms (Section VI, "training").

A full-batch GCN training step runs, per layer, the forward SpMM and
dense update plus their backward counterparts: the gradient SpMM
(``A_tilde^T``, same traffic as forward on the symmetric adjacency) and
two dense products (weight gradient and input gradient), plus the
optimizer's elementwise pass over the weights.  This module prices that
on each platform model and projects epochs — quantifying the §VI claim
that the paper's inference findings carry (doubled) into training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import ExecutionBreakdown, combine


@dataclass(frozen=True)
class TrainingStepEstimate:
    """One full-batch step on one platform."""

    platform: str
    forward: ExecutionBreakdown
    backward: ExecutionBreakdown

    @property
    def step_ns(self):
        return self.forward.total + self.backward.total

    def epochs_per_hour(self):
        return 3.6e12 / self.step_ns if self.step_ns else 0.0


def _forward(workload, platform, config):
    if platform == "cpu":
        from repro.cpu.gcn import gcn_breakdown
    elif platform == "gpu":
        from repro.gpu.gcn import gcn_breakdown
    elif platform == "piuma":
        from repro.piuma.gcn import gcn_breakdown
    else:
        raise ValueError(f"unknown platform {platform!r}")
    return gcn_breakdown(workload, config)


def _backward(workload, platform, config):
    """Backward cost from the same per-layer primitives.

    Per layer: one gradient SpMM (same |V|, |E|, K as forward), one
    dense product for dW (same FLOPs as forward's update) and one for
    dH (same again), plus a glue-scale elementwise pass (activation
    mask + optimizer update).  Modeled as forward with the dense phase
    doubled.
    """
    forward = _forward(workload, platform, config)
    return ExecutionBreakdown(
        spmm=forward.spmm,
        dense=2.0 * forward.dense,
        glue=forward.glue,
        offload=forward.offload,
        sampling=forward.sampling,
    )


def training_step_cost(workload, platform, config):
    """Estimate one full-batch training step on a platform model."""
    return TrainingStepEstimate(
        platform=platform,
        forward=_forward(workload, platform, config),
        backward=_backward(workload, platform, config),
    )


def compare_training(workload, cpu_config, gpu_config, piuma_config):
    """Training-step estimates for all three platforms.

    Returns ``{platform: TrainingStepEstimate}``.  The paper's Fig 9
    ordering tends to *strengthen* for training on CPU-vs-PIUMA (two
    SpMMs per layer), while the GPU's dense advantage grows (three
    dense products per layer).
    """
    return {
        "cpu": training_step_cost(workload, "cpu", cpu_config),
        "gpu": training_step_cost(workload, "gpu", gpu_config),
        "piuma": training_step_cost(workload, "piuma", piuma_config),
    }
