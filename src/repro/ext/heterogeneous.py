"""Heterogeneous SoC study (paper Section VI, "Heterogeneous SoC").

The paper proposes combining PIUMA dies with dense-compute accelerators
to fix the Dense-MM bottleneck of Fig 10, noting "the ratio of PIUMA
dies to dense units will largely depend on the application
requirements".  This module models such an SoC: SpMM and glue stay on
the PIUMA fabric, the dense update runs on attached matrix units that
share the DGAS (so activations stream at DRAM bandwidth), and the unit
count is the swept design parameter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.breakdown import ExecutionBreakdown, combine
from repro.piuma.analytical import spmm_model
from repro.piuma.gcn import DEFAULT_SPMM_EFFICIENCY


@dataclass(frozen=True)
class DenseUnit:
    """One attached dense-compute tile (systolic-array class).

    Defaults approximate a modest inference NPU tile: 8 TFLOP/s fp32
    peak at 80% achievable GEMM efficiency.
    """

    peak_gflops: float = 8000.0
    efficiency: float = 0.80

    def __post_init__(self):
        if self.peak_gflops <= 0:
            raise ValueError("peak_gflops must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    @property
    def achievable_gflops(self):
        return self.peak_gflops * self.efficiency


@dataclass(frozen=True)
class HeterogeneousSoC:
    """PIUMA fabric plus ``n_dense_units`` attached dense tiles."""

    piuma: object  # PIUMAConfig
    n_dense_units: int
    dense_unit: DenseUnit = DenseUnit()

    def __post_init__(self):
        if self.n_dense_units < 0:
            raise ValueError("n_dense_units must be non-negative")

    def dense_gflops(self):
        return self.n_dense_units * self.dense_unit.achievable_gflops


def hetero_layer_breakdown(shape, soc, spmm_efficiency=DEFAULT_SPMM_EFFICIENCY):
    """One GCN layer on the heterogeneous SoC, in nanoseconds.

    With zero dense units the dense update falls back to the PIUMA
    scalar pipelines (the Fig 10 baseline).
    """
    from repro.piuma.densemm import dense_mm_time
    from repro.piuma.gcn import layer_breakdown as piuma_layer

    base = piuma_layer(shape, soc.piuma, spmm_efficiency)
    if soc.n_dense_units == 0:
        return base
    flops = 2 * shape.n_vertices * shape.in_dim * shape.out_dim
    compute_ns = flops / soc.dense_gflops()
    streamed = shape.n_vertices * (shape.in_dim + shape.out_dim) * (
        soc.piuma.feature_bytes
    )
    bandwidth_ns = streamed / soc.piuma.total_bandwidth_gbps
    accel_ns = max(compute_ns, bandwidth_ns)
    # The accelerator can never be worse than the scalar fallback.
    scalar_ns = dense_mm_time(
        shape.n_vertices, shape.in_dim, shape.out_dim, soc.piuma
    ).time_ns
    return ExecutionBreakdown(
        spmm=base.spmm, dense=min(accel_ns, scalar_ns), glue=base.glue
    )


def hetero_gcn_breakdown(workload, soc, spmm_efficiency=DEFAULT_SPMM_EFFICIENCY):
    """Whole-model breakdown on the heterogeneous SoC (ns)."""
    return combine(
        hetero_layer_breakdown(shape, soc, spmm_efficiency)
        for shape in workload.layer_shapes()
    )


def sweep_dense_units(workload, piuma_config, unit_counts,
                      dense_unit=DenseUnit()):
    """GCN time for each dense-unit count; the §VI ratio study.

    Returns ``{count: ExecutionBreakdown}``.  The knee of this curve is
    where the SoC stops being dense-bound — adding more units past it
    buys nothing because SpMM and glue set the floor.
    """
    results = {}
    for count in unit_counts:
        soc = HeterogeneousSoC(
            piuma=piuma_config, n_dense_units=count, dense_unit=dense_unit
        )
        results[count] = hetero_gcn_breakdown(workload, soc)
    return results
