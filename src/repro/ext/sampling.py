"""Random-walk neighbor sampling (paper Section VI, "Graph Clustering
and Sampling").

pinSAGE/GraphSAGE-style GNNs sample neighborhoods with random walks,
"known to be latency bound"; the paper notes PIUMA "has been shown to
greatly accelerate random-walk over standard CPUs".  This module
provides a functional random-walk sampler over CSR graphs plus latency
-bound timing models for both platforms: each walk step is a dependent
pointer chase, so throughput is (parallel walk contexts) / (step
latency) — PIUMA's 16K thread contexts versus a CPU core's handful of
outstanding misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def random_walks(adj, start_vertices, walk_length, seed=0):
    """Sample one random walk per start vertex (functional layer).

    Returns an int64 array of shape ``(len(start_vertices),
    walk_length + 1)`` whose first column is the starts.  A walk that
    reaches a sink vertex (no out-edges) stays there.
    """
    if walk_length < 0:
        raise ValueError("walk_length must be non-negative")
    rng = np.random.default_rng(seed)
    current = np.asarray(start_vertices, dtype=np.int64)
    if current.size and (
        current.min() < 0 or current.max() >= adj.n_rows
    ):
        raise ValueError("start vertex out of range")
    walks = np.empty((current.shape[0], walk_length + 1), dtype=np.int64)
    walks[:, 0] = current
    degrees = adj.row_degrees()
    for step in range(1, walk_length + 1):
        deg = degrees[current]
        draws = (rng.random(current.shape[0]) * np.maximum(deg, 1)).astype(
            np.int64
        )
        if adj.nnz:
            # Sinks gather a dummy offset 0 and are masked out below.
            offsets = np.where(deg > 0, adj.indptr[current] + draws, 0)
            next_vertices = adj.indices[offsets]
        else:
            next_vertices = current
        # Sinks stay put.
        current = np.where(deg > 0, next_vertices, current)
        walks[:, step] = current
    return walks


@dataclass(frozen=True)
class WalkTimeEstimate:
    """Latency-bound random-walk timing."""

    time_ns: float
    steps_per_second: float
    parallel_contexts: int


#: Outstanding pointer chases a Xeon core sustains (MLP limited by the
#: miss queue and the dependent-load pattern).
CPU_CONTEXTS_PER_CORE = 10
#: Average DRAM round trip for a dependent random access on the CPU.
CPU_STEP_LATENCY_NS = 90.0


def walk_time_cpu(n_walks, walk_length, config, n_cores=None):
    """Random-walk time on the Xeon model.

    Walk steps are dependent loads; each core keeps a bounded number of
    independent walks in flight, so throughput saturates at
    ``cores x contexts / latency``.
    """
    n_cores = n_cores or config.physical_cores
    contexts = min(n_walks, n_cores * CPU_CONTEXTS_PER_CORE)
    total_steps = n_walks * walk_length
    steps_per_ns = contexts / CPU_STEP_LATENCY_NS
    time_ns = total_steps / steps_per_ns if total_steps else 0.0
    return WalkTimeEstimate(
        time_ns=time_ns,
        steps_per_second=steps_per_ns * 1e9,
        parallel_contexts=contexts,
    )


def walk_time_piuma(n_walks, walk_length, config):
    """Random-walk time on the PIUMA model.

    Every hardware thread advances one walk; the step latency is the
    remote DGAS round trip (worse per step than the CPU's local DRAM),
    but 16K contexts bury it — the latency-tolerance argument of the
    paper applied to sampling.
    """
    from repro.piuma.network import Network

    mean_hop = Network(config).mean_remote_latency()
    step_latency = config.dram_latency_ns + 2 * mean_hop
    contexts = min(n_walks, config.n_threads)
    total_steps = n_walks * walk_length
    steps_per_ns = contexts / step_latency
    time_ns = total_steps / steps_per_ns if total_steps else 0.0
    return WalkTimeEstimate(
        time_ns=time_ns,
        steps_per_second=steps_per_ns * 1e9,
        parallel_contexts=contexts,
    )
