"""GPU memory footprint of a GCN workload.

The capacity gate of Fig 4/9: a workload whose adjacency, features,
weights and double-buffered activations exceed device memory cannot run
full-graph on the GPU and falls back to host-side sampling — the cliff
that makes ``papers`` two orders of magnitude slower on A100.
"""

from __future__ import annotations

from dataclasses import dataclass

ELEMENT = 4  # fp32 / int32 everywhere on device


@dataclass(frozen=True)
class Footprint:
    """Bytes resident on the GPU for one full-graph inference."""

    adjacency: int
    features: int
    activations: int
    weights: int

    @property
    def total(self):
        return self.adjacency + self.features + self.activations + self.weights


def workload_footprint(workload):
    """Compute the :class:`Footprint` of a GCN workload.

    Adjacency in CSR (row offsets + column indices + values), the input
    feature matrix, two activation buffers of the widest layer (ping
    pong), and all weight matrices.
    """
    n_v = workload.n_vertices
    n_e = workload.n_edges_normalized
    adjacency = (n_v + 1) * ELEMENT + 2 * n_e * ELEMENT
    features = n_v * workload.config.in_dim * ELEMENT
    widest = max(
        max(shape.in_dim, shape.out_dim) for shape in workload.layer_shapes()
    )
    activations = 2 * n_v * widest * ELEMENT
    weights = sum(
        shape.in_dim * shape.out_dim * ELEMENT
        for shape in workload.layer_shapes()
    )
    return Footprint(
        adjacency=int(adjacency),
        features=int(features),
        activations=int(activations),
        weights=int(weights),
    )


def fits_on_gpu(workload, config):
    """Whether the workload runs full-graph on the device."""
    return workload_footprint(workload).total <= config.memory_bytes
