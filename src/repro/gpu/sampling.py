"""Measured sampling-cost model for out-of-memory GPU inference.

The coarse Fig 4 model charges host sampling as one full-neighborhood
gather of every layer's edges.  For batched execution the real cost
depends on how fast receptive fields *expand*: an L-layer full
neighborhood of a small batch can touch a large fraction of a dense
graph (neighborhood explosion).  This module measures that expansion on
a (down-scaled) materialization with the functional sampler and prices
the resulting per-batch gather, offload and kernel work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ext.minibatch import sample_batch


@dataclass(frozen=True)
class SamplingProfile:
    """Measured receptive-field statistics for one (graph, L) pair.

    Attributes
    ----------
    batch_size:
        Targets per batch.
    n_layers:
        GCN depth.
    mean_frontier_fraction:
        Mean |L-hop receptive field| / |V| across probes.
    mean_edges_fraction:
        Mean touched-edge fraction per batch (edges into each layer's
        output set), relative to |E|.
    """

    batch_size: int
    n_layers: int
    mean_frontier_fraction: float
    mean_edges_fraction: float


def measure_receptive_expansion(adj, batch_size, n_layers, n_probes=5,
                                seed=0):
    """Probe random batches and measure their receptive fields."""
    if batch_size < 1 or n_probes < 1:
        raise ValueError("batch_size and n_probes must be positive")
    rng = np.random.default_rng(seed)
    degrees = adj.row_degrees()
    frontier_fractions = []
    edge_fractions = []
    for _ in range(n_probes):
        targets = rng.choice(
            adj.n_rows, size=min(batch_size, adj.n_rows), replace=False
        )
        batch = sample_batch(adj, targets, n_layers)
        frontier_fractions.append(batch.frontier_size / adj.n_rows)
        touched = sum(
            int(degrees[layer].sum()) for layer in batch.layers[1:]
        )
        edge_fractions.append(touched / max(adj.nnz, 1))
    return SamplingProfile(
        batch_size=batch_size,
        n_layers=n_layers,
        mean_frontier_fraction=float(np.mean(frontier_fractions)),
        mean_edges_fraction=float(np.mean(edge_fractions)),
    )


@dataclass(frozen=True)
class SampledRunEstimate:
    """Cost of covering every vertex once with sampled batches."""

    n_batches: int
    sampling_ns: float
    offload_ns: float

    @property
    def host_ns(self):
        return self.sampling_ns + self.offload_ns


def sampled_run_cost(n_vertices, n_edges, embedding_dim, profile, config):
    """Price a full-inference pass under measured expansion.

    Each batch gathers its touched edges' feature vectors on the host
    and ships them over PCIe; batches cover all vertices once.
    Neighborhood explosion shows up as ``mean_edges_fraction`` close to
    1 even for small batches — each of the many batches re-gathers a
    large share of the graph, which is exactly why `papers` drowns in
    sampling time.
    """
    if embedding_dim < 1:
        raise ValueError("embedding_dim must be positive")
    n_batches = max(1, -(-n_vertices // profile.batch_size))
    per_batch_bytes = profile.mean_edges_fraction * n_edges * (
        embedding_dim
    ) * 4
    sampling_ns = n_batches * per_batch_bytes / config.sample_gather_gbps
    offload_ns = n_batches * per_batch_bytes / config.pcie_gbps
    return SampledRunEstimate(
        n_batches=n_batches,
        sampling_ns=sampling_ns,
        offload_ns=offload_ns,
    )
