"""Full-GCN timing on the A100 model (Fig 4).

Two regimes, gated by device memory:

* **Full-graph** — adjacency and input features cross PCIe once
  (inductive inference; "data offload is an unavoidable runtime
  contribution"), then all layers run on device.  Offload dominates for
  small hidden dims; kernel shares grow with K because the offloaded
  volume is fixed while hidden-layer compute is not.
* **Sampled** — the graph does not fit (``papers``): layer-wise
  full-neighborhood sampling runs on the host CPU, every layer's
  neighbor features are gathered and shipped over PCIe.  Sampling plus
  offload consume effectively all the runtime (>99% in the paper).
"""

from __future__ import annotations

from repro.core.breakdown import ExecutionBreakdown, combine
from repro.gpu.footprint import fits_on_gpu, workload_footprint
from repro.gpu.kernels import dense_mm_time, spmm_time


def _layer_kernels(shape, config, locality):
    """SpMM + Dense + glue of one on-device layer, in ns."""
    spmm_ns = spmm_time(
        shape.n_vertices, shape.n_edges, shape.in_dim, config, locality
    ).time_ns
    dense_ns = dense_mm_time(
        shape.n_vertices, shape.update_in_dim, shape.out_dim, config
    ).time_ns
    passes = 2 if shape.has_activation else 1
    glue_ns = (
        passes * 2 * shape.n_vertices * shape.out_dim * 4 / config.hbm_gbps
        + config.launch_overhead_ns
    )
    return ExecutionBreakdown(spmm=spmm_ns, dense=dense_ns, glue=glue_ns)


def gcn_breakdown(workload, config, locality=None):
    """Whole-model A100 :class:`ExecutionBreakdown` (ns) for a workload."""
    if locality is None:
        locality = workload.dataset.locality
    kernels = combine(
        _layer_kernels(shape, config, locality)
        for shape in workload.layer_shapes()
    )
    if fits_on_gpu(workload, config):
        footprint = workload_footprint(workload)
        offload_bytes = footprint.adjacency + footprint.features
        offload_ns = offload_bytes / config.pcie_gbps
        if config.overlap_offload:
            # Double-buffered streaming hides transfer behind compute;
            # only the non-overlappable excess remains visible.
            offload_ns = max(0.0, offload_ns - kernels.total)
        return kernels + ExecutionBreakdown(offload=offload_ns)
    # Sampling regime: every layer's full neighborhood is gathered on
    # the host and shipped across PCIe.
    sampled_bytes = sum(
        shape.n_edges * shape.in_dim * 4 for shape in workload.layer_shapes()
    )
    sampling_ns = sampled_bytes / config.sample_gather_gbps
    offload_ns = sampled_bytes / config.pcie_gbps
    return kernels + ExecutionBreakdown(
        offload=offload_ns, sampling=sampling_ns
    )
