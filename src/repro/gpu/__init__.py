"""Analytical timing model of the NVIDIA A100 GPU testbed."""

from repro.gpu.config import A100Config
from repro.gpu.footprint import Footprint, fits_on_gpu, workload_footprint
from repro.gpu.gcn import gcn_breakdown as gpu_gcn_breakdown
from repro.gpu.kernels import GPUKernelEstimate
from repro.gpu.kernels import dense_mm_time as gpu_dense_mm_time
from repro.gpu.kernels import spmm_time as gpu_spmm_time
from repro.gpu.sampling import (
    SampledRunEstimate,
    SamplingProfile,
    measure_receptive_expansion,
    sampled_run_cost,
)

__all__ = [
    "A100Config",
    "Footprint",
    "GPUKernelEstimate",
    "SampledRunEstimate",
    "SamplingProfile",
    "fits_on_gpu",
    "gpu_dense_mm_time",
    "gpu_gcn_breakdown",
    "gpu_spmm_time",
    "measure_receptive_expansion",
    "sampled_run_cost",
    "workload_footprint",
]
