"""NVIDIA A100 configuration (the paper's ref [16] testbed).

A100-40GB over PCIe 4.0 with a dual-socket Xeon 8358 host.  The GPU
numbers that matter to the paper's analysis are memory capacity (the
sampling cliff), HBM bandwidth (SpMM), fp32 compute (Dense MM), PCIe
bandwidth (offload) and the host's sampling throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class A100Config:
    """A100-40GB + PCIe 4.0 host model parameters."""

    # Device memory.
    memory_gb: float = 40.0
    hbm_gbps: float = 1555.0
    l2_mb: float = 40.0
    #: Service bandwidth for L2-resident gathers.
    l2_gbps: float = 3000.0

    # Compute (fp32 CUDA cores; GCN inference in the paper is fp32).
    peak_fp32_gflops: float = 19500.0
    gemm_efficiency: float = 0.70

    # SpMM effective-bandwidth calibration: irregular gathers sustain a
    # locality-dependent fraction of HBM bandwidth.
    spmm_hbm_efficiency_base: float = 0.25
    spmm_hbm_efficiency_locality: float = 0.50

    # Host link.
    pcie_gbps: float = 25.0  # PCIe 4.0 x16, effective

    # Host-side full-neighborhood sampling (layer-wise, CPU): gather +
    # batch assembly throughput including dataloader overhead.  Slow by
    # construction — random-access gathers plus Python-side batch
    # bookkeeping; calibrated so sampling takes >75% of `papers` time
    # (Fig 4) with sampling+offload >99%.
    sample_gather_gbps: float = 7.0

    # Per-layer kernel launch and framework overhead on GPU.
    launch_overhead_ns: float = 2.0e4

    #: Overlap PCIe offload with device compute (double-buffered
    #: streaming).  The paper's baseline does not overlap — this knob
    #: exists to quantify how much of Fig 4's offload share is
    #: recoverable by software.
    overlap_offload: bool = False

    def __post_init__(self):
        if self.memory_gb <= 0 or self.hbm_gbps <= 0 or self.pcie_gbps <= 0:
            raise ValueError("capacities and bandwidths must be positive")

    @property
    def memory_bytes(self):
        return self.memory_gb * 1e9

    @property
    def l2_bytes(self):
        return self.l2_mb * 1e6

    def spmm_bandwidth(self, locality):
        """Effective HBM bandwidth (GB/s) for SpMM at a given locality."""
        if not 0 <= locality < 1:
            raise ValueError("locality must be in [0, 1)")
        eff = (
            self.spmm_hbm_efficiency_base
            + self.spmm_hbm_efficiency_locality * locality
        )
        return self.hbm_gbps * eff

    def with_(self, **changes):
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
