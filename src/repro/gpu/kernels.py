"""Device-kernel timing: SpMM and Dense MM on the A100 model.

SpMM gathers run at a locality-dependent fraction of HBM bandwidth —
unless the feature working set fits in the 40 MB L2, where small
well-clustered graphs (``ddi``, ``proteins`` at low K) are served at
on-chip bandwidth; that L2 residency is why the GPU wins SpMM on those
graphs in Fig 9 while losing badly on the low-locality power graphs.
Dense MM is a plain fp32 roofline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.spmm import spmm_traffic

GPU_ELEMENT_BYTES = {"row": 4, "col": 4, "nnz": 4, "feature": 4}


@dataclass(frozen=True)
class GPUKernelEstimate:
    """Prediction for one device kernel."""

    time_ns: float
    gflops: float
    bound: str


def spmm_time(n_vertices, n_edges, embedding_dim, config, locality=0.5):
    """SpMM kernel time on the A100 model."""
    traffic = spmm_traffic(
        n_vertices, n_edges, embedding_dim, GPU_ELEMENT_BYTES
    )
    working_set = n_vertices * embedding_dim * 4
    if working_set <= config.l2_bytes:
        bandwidth = config.l2_gbps
        bound = "l2"
    else:
        bandwidth = config.spmm_bandwidth(locality)
        bound = "hbm"
    time_ns = traffic.total_bytes / bandwidth
    return GPUKernelEstimate(
        time_ns=time_ns, gflops=traffic.flops / time_ns, bound=bound
    )


def dense_mm_time(n_rows, in_dim, out_dim, config):
    """Dense update kernel time on the A100 model."""
    if min(n_rows, in_dim, out_dim) < 1:
        raise ValueError("matrix dimensions must be positive")
    flops = 2 * n_rows * in_dim * out_dim
    compute_ns = flops / (config.peak_fp32_gflops * config.gemm_efficiency)
    streamed = n_rows * (in_dim + out_dim) * 4
    bandwidth_ns = streamed / config.hbm_gbps
    time_ns = max(compute_ns, bandwidth_ns)
    return GPUKernelEstimate(
        time_ns=time_ns,
        gflops=flops / time_ns,
        bound="compute" if compute_ns >= bandwidth_ns else "bandwidth",
    )
