"""PIUMA hardware configuration.

Numbers follow the public PIUMA description (Aananthakrishnan et al.,
arXiv:2010.06277, the paper's ref [5]) and the paper's own experiment
setup: cores hold 4 multi-threaded pipelines (MTPs) with 16 threads
each plus 2 single-threaded pipelines (STPs); 8 cores form a die
(Fig 7 calls an 8-core system "1 die"); dies aggregate into a node with
>16K threads; each core hosts a DRAM slice of the distributed global
address space.  DRAM latency defaults to 45 ns — the start of the
paper's latency sweep, i.e. its nominal point.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.piuma.degradation import DegradationSpec
from repro.piuma.scheduler import SCHEDULERS

#: Valid values of :attr:`PIUMAConfig.engine`.  ``"auto"`` defers to the
#: legacy ``engine_fast_path``/``scheduler`` knobs (back-compat); the
#: named engines select a main loop directly.
ENGINES = ("auto", "fast", "calendar", "vector", "reference")


@dataclass(frozen=True)
class PIUMAConfig:
    """Parameters of a simulated PIUMA system.

    Every sensitivity study in the paper is a sweep over one of these
    fields (``dram_latency_ns``, ``dram_bandwidth_scale``,
    ``threads_per_mtp``, ``n_cores``).
    """

    # Topology
    n_cores: int = 8
    cores_per_die: int = 8
    #: Dies per node; cores beyond ``cores_per_die * dies_per_node``
    #: belong to further nodes reached over the optical HyperX tier.
    dies_per_node: int = 32
    mtps_per_core: int = 4
    threads_per_mtp: int = 16
    stps_per_core: int = 2

    # Clocking: MTPs/STPs are single-issue in-order pipelines.
    clock_ghz: float = 2.0

    # DRAM slice per core.
    dram_bandwidth_gbps: float = 25.6  # per-slice GB/s (one DDR channel)
    dram_bandwidth_scale: float = 1.0  # Fig 6 (top) sweep knob
    dram_latency_ns: float = 45.0      # Fig 6 (bottom) / Fig 7 sweep knob

    # Network (HyperX with optical die-to-die and node-to-node links).
    intra_die_latency_ns: float = 15.0
    inter_die_latency_ns: float = 100.0
    inter_node_latency_ns: float = 400.0
    network_bandwidth_gbps: float = 512.0  # per-core injection; generous
                                           # by design (Takeaway 3: net is
                                           # not the bottleneck)

    # Near-memory atomic unit, one per core, serializing RMW updates to
    # the local slice.
    atomic_rate_gbps: float = 51.2
    atomic_overhead_ns: float = 2.0

    # DMA offload engine, one per core, requests serialized in order.
    dma_rate_gbps: float = 128.0       # engine streaming rate (5x slice,
                                       # so the slice stays the bottleneck)
    dma_overhead_ns: float = 0.1       # per-descriptor setup
    dma_issue_instrs: int = 3          # MTP instructions to enqueue a req
    dma_inflight_bytes: int = 32768    # staging-buffer credits per engine

    # Element sizes (bytes) of the hardware kernels (4-byte floats/ids).
    feature_bytes: int = 4
    index_bytes: int = 4
    value_bytes: int = 4
    cache_line_bytes: int = 64

    # Loop-unrolled kernel: compiler unrolls 8 embedding elements.
    unroll: int = 8
    #: MTP instructions per unrolled round of 8 elements: four 8-byte
    #: load issues, four packed MACs, one bookkeeping instruction.
    instrs_per_unrolled_round: int = 9

    # NNZ reads are grouped: one col-index line + one value line covers
    # this many edges.
    nnz_group_edges: int = 8

    #: Max slices a bulk row access stripes across (line interleaving of
    #: the DGAS; capped to bound simulation cost).
    stripe_lines: int = 4

    #: Hash vertex placement across slices (the DGAS default).  False
    #: switches to naive ``v % n_cores`` placement — an ablation showing
    #: the hub-hotspot collapse hashing prevents on power-law graphs.
    hashed_placement: bool = True

    # STP-side kernel launch / teardown overhead.
    launch_overhead_ns: float = 2000.0

    #: Select the DES main loop: ``True`` (default) runs the fast path
    #: (type-dispatch table + peek-ahead thread continuation), ``False``
    #: the reference pop/execute/push loop.  Both are bit-identical in
    #: results and event accounting — the switch exists as an escape
    #: hatch and as the differential-test oracle (DESIGN.md, "Host
    #: performance").
    engine_fast_path: bool = True

    #: Event-scheduler backend of the DES main loops
    #: (``repro.piuma.scheduler``): ``"heap"`` (default) drives the
    #: original ``heapq`` binary heap, ``"calendar"`` a calendar queue —
    #: a bucketed ring indexed by quantized timestamp with lazy overflow
    #: spill and dynamic width retuning.  Composes with
    #: :attr:`engine_fast_path`; every (loop, scheduler) combination is
    #: bit-identical in results and event accounting.
    scheduler: str = "heap"

    #: Unified main-loop selector: ``"fast"`` (peek-ahead loop over the
    #: binary heap), ``"calendar"`` (same loop over the calendar queue),
    #: ``"vector"`` (compiled op-program replay,
    #: ``repro.piuma.vector_engine``), or ``"reference"`` (the plain
    #: pop/execute/push oracle, honoring :attr:`scheduler`).  The
    #: default ``"auto"`` preserves the historical knobs: it resolves
    #: from :attr:`engine_fast_path` and :attr:`scheduler`.  All engines
    #: are bit-identical in results and event accounting.
    engine: str = "auto"

    #: Runtime invariant sanitizer level (``repro.piuma.invariants``):
    #: 0 disables all checking (the default — zero overhead), 1 enables
    #: the cheap per-event checks (event-time monotonicity, thread
    #: state-machine legality) plus the post-run resource accounting
    #: cross-checks, 2 additionally tracks per-op byte/stat expectations
    #: and scans the DRAM timelines for interval-order violations.
    #: Violations raise ``repro.runtime.errors.InvariantViolation``.
    check_level: int = 0

    # Simulation watchdogs: hard ceilings on the DES event loop so a
    # buggy kernel generator or pathological sweep point raises
    # ``SimulationDiverged`` instead of hanging a worker forever.  A
    # value of 0 disables the corresponding guard.
    #: Max events (heap pops) per kernel invocation; normal windows
    #: stay well under a few million.
    max_events: int = 50_000_000
    #: Max simulated nanoseconds before the run counts as diverged.
    max_sim_ns: float = 0.0
    #: Max consecutive events with no simulated-time progress (zero-cost
    #: op loops) before the run counts as stalled.
    stall_events: int = 2_000_000

    #: Hardware-fault model (``repro.piuma.degradation``): ``None`` (the
    #: default) simulates a healthy fabric; a
    #: :class:`~repro.piuma.degradation.DegradationSpec` deterministically
    #: degrades links, DRAM slices, DMA engines, and pipelines.  The spec
    #: is a frozen all-primitive dataclass, so it serializes with the
    #: config and participates in the sweep cache key.
    degradation: DegradationSpec | None = None

    def __post_init__(self):
        if self.n_cores < 1:
            raise ValueError("n_cores must be positive")
        if self.threads_per_mtp < 1 or self.mtps_per_core < 1:
            raise ValueError("pipeline counts must be positive")
        if self.dram_bandwidth_gbps <= 0 or self.dram_bandwidth_scale <= 0:
            raise ValueError("bandwidth must be positive")
        if self.dram_latency_ns < 0:
            raise ValueError("latency must be non-negative")
        if self.max_events < 0 or self.max_sim_ns < 0 or self.stall_events < 0:
            raise ValueError("watchdog ceilings must be non-negative")
        if self.check_level not in (0, 1, 2):
            raise ValueError("check_level must be 0, 1, or 2")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"scheduler must be one of {SCHEDULERS}, "
                f"got {self.scheduler!r}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.degradation is not None and not isinstance(
            self.degradation, DegradationSpec
        ):
            raise ValueError(
                "degradation must be a DegradationSpec or None, got "
                f"{type(self.degradation).__name__}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def resolved_engine(self):
        """The main loop :meth:`~repro.piuma.engine.Simulator.run` uses.

        ``"auto"`` maps the legacy knobs onto the named engines:
        ``engine_fast_path=False`` is the reference loop, otherwise the
        fast loop over whichever scheduler backend is selected.
        """
        if self.engine != "auto":
            return self.engine
        if not self.engine_fast_path:
            return "reference"
        return "calendar" if self.scheduler == "calendar" else "fast"

    @property
    def resolved_scheduler(self):
        """Event-queue backend implied by the resolved engine.

        The fast and vector loops require the heap (the vector loop
        drains the initial population into its own sorted pending list),
        the calendar loop its bucket ring; only the reference loop
        honors :attr:`scheduler` as an independent axis.
        """
        engine = self.resolved_engine
        if engine == "calendar":
            return "calendar"
        if engine == "reference":
            return self.scheduler
        return "heap"

    @property
    def n_dies(self):
        """Dies spanned by ``n_cores`` (partial dies round up)."""
        return -(-self.n_cores // self.cores_per_die)

    @property
    def threads_per_core(self):
        return self.mtps_per_core * self.threads_per_mtp

    @property
    def n_threads(self):
        """Total MTP threads across the system."""
        return self.n_cores * self.threads_per_core

    @property
    def slice_bandwidth_bytes_per_ns(self):
        """Effective per-slice bandwidth (GB/s == bytes/ns)."""
        return self.dram_bandwidth_gbps * self.dram_bandwidth_scale

    @property
    def total_bandwidth_gbps(self):
        """Aggregate DRAM bandwidth of the system."""
        return self.n_cores * self.slice_bandwidth_bytes_per_ns

    @property
    def instr_ns(self):
        """Nanoseconds per single-issue instruction."""
        return 1.0 / self.clock_ghz

    def with_(self, **changes):
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def die(cls, **overrides):
        """One die: 8 cores (the Fig 7 system)."""
        return cls(**{"n_cores": 8, **overrides})

    @property
    def cores_per_node(self):
        return self.cores_per_die * self.dies_per_node

    @property
    def n_nodes(self):
        """Nodes spanned by ``n_cores`` (partial nodes round up)."""
        return -(-self.n_cores // self.cores_per_node)

    @classmethod
    def multinode(cls, n_nodes, dies_per_node=1, **overrides):
        """A small multi-node system the DES can afford to simulate.

        Shrinking ``dies_per_node`` keeps the core count tractable while
        still exercising the inter-node latency tier of the DGAS.
        """
        return cls(**{
            "n_cores": n_nodes * dies_per_node * 8,
            "dies_per_node": dies_per_node,
            **overrides,
        })

    @classmethod
    def node(cls, n_dies=32, **overrides):
        """A full PIUMA node.

        32 dies x 8 cores x 64 MTP threads = 16384 threads ("more than
        16K threads" with the STPs included) and ~6.5 TB/s aggregate
        DRAM bandwidth ("TB/s bandwidths").
        """
        return cls(**{"n_cores": n_dies * 8, **overrides})
