"""Simulated Dense MM kernel on PIUMA (the ref [21] measurement, rebuilt).

The paper computes PIUMA Dense MM time from "the observed peak FLOPS"
of the SU3 bench characterization.  Here the observation is reproduced
in the DES: MTP threads stream activation rows in via DMA, run the
multiply-accumulate loop on the scalar pipelines (no SIMD — one packed
2-element MAC per instruction), and stream results out.  The kernel
validates the analytical :func:`repro.piuma.densemm.dense_mm_time`
roofline: for square-ish updates the pipelines saturate; for skinny
updates the DMA streams do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.piuma.engine import Simulator
from repro.piuma.ops import Compute, DMAOp, OpProgram, PhaseMarker
from repro.piuma.spmm_loop import owner_core

#: Scalar instructions per MAC: PIUMA's pipelines have no SIMD, so one
#: MAC is one instruction, plus amortized loop/address bookkeeping.
INSTRS_PER_MAC = 1.25


@dataclass(frozen=True)
class DenseKernelResult:
    """Outcome of one simulated Dense MM window."""

    sim_time_ns: float
    window_rows: int
    total_rows: int
    gflops: float
    projected_time_ns: float
    pipeline_utilization: float


def dense_thread(rows, in_dim, out_dim, config, core_of_row):
    """Thread generator: stream rows, MAC them against the resident W.

    The MAC burst is one shared op instance and the stream-in/out DMA
    descriptors are interned per target core (the same immutable-op
    reuse as the SpMM kernels).
    """
    row_in_bytes = in_dim * config.feature_bytes
    row_out_bytes = out_dim * config.feature_bytes
    macs = in_dim * out_dim
    instrs = max(1, int(round(macs * INSTRS_PER_MAC)))
    yield PhaseMarker()
    mac_op = Compute(n_instrs=instrs, tag="dense_mac")
    in_ops = {}   # target core -> DMAOp (activation stream-in)
    out_ops = {}  # target core -> DMAOp (result stream-out)
    for row in rows:
        target = core_of_row(row)
        op = in_ops.get(target)
        if op is None:
            op = in_ops[target] = DMAOp(
                kind="read", nbytes=row_in_bytes, target_core=target,
                tag="dense_in",
            )
        yield op
        yield mac_op
        op = out_ops.get(target)
        if op is None:
            op = out_ops[target] = DMAOp(
                kind="write", nbytes=row_out_bytes, target_core=target,
                tag="dense_out",
            )
        yield op


#: Static op stream: safe to compile into an OpProgram (vector engine).
dense_thread.program_safe = True


def simulate_dense_mm(n_rows, in_dim, out_dim, config, window_rows=None):
    """Run the Dense MM kernel on a row window and project.

    Parameters
    ----------
    n_rows, in_dim, out_dim:
        ``(n_rows x in_dim) @ (in_dim x out_dim)``; the weight matrix is
        scratchpad-resident (no DRAM traffic).
    config:
        :class:`PIUMAConfig`.
    window_rows:
        Rows simulated (default: enough for every thread to stream a
        few rows, capped).
    """
    if min(n_rows, in_dim, out_dim) < 1:
        raise ValueError("matrix dimensions must be positive")
    if window_rows is None:
        window_rows = int(min(n_rows, max(2048, config.n_threads * 4),
                              32768))
    simulator = Simulator(config)
    n_threads = config.n_threads
    per_thread = max(1, window_rows // n_threads)
    hashed = config.hashed_placement
    # Dense MM's op stream is static (see dense_thread.program_safe):
    # under the vector engine, drain each generator into an OpProgram.
    compile_programs = (
        config.resolved_engine == "vector" and dense_thread.program_safe
    )
    spawned_rows = 0
    for t in range(n_threads):
        start = t * per_thread
        if start >= window_rows:
            break
        rows = range(start, min(start + per_thread, window_rows))
        spawned_rows += len(rows)
        core = t // config.threads_per_core
        mtp = (t % config.threads_per_core) // config.threads_per_mtp
        generator = dense_thread(
            rows, in_dim, out_dim, config,
            core_of_row=lambda r: owner_core(r, config.n_cores, hashed),
        )
        if compile_programs:
            simulator.spawn_program(
                OpProgram.from_generator(generator), core, mtp
            )
        else:
            simulator.spawn(generator, core, mtp)
    end = simulator.run()
    steady = max(end - config.launch_overhead_ns - simulator.setup_end, 1e-9)
    flops = 2.0 * spawned_rows * in_dim * out_dim
    gflops = flops / steady
    total_flops = 2.0 * n_rows * in_dim * out_dim
    horizon = max(end, 1e-9)
    pipes = [p for row in simulator.pipelines for p in row]
    utilization = sum(p.utilization(horizon) for p in pipes) / len(pipes)
    return DenseKernelResult(
        sim_time_ns=end,
        window_rows=spawned_rows,
        total_rows=n_rows,
        gflops=gflops,
        projected_time_ns=config.launch_overhead_ns + total_flops / gflops,
        pipeline_utilization=utilization,
    )
