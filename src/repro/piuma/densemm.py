"""Dense matrix multiplication on PIUMA.

PIUMA has no SIMD units, so Dense MM throughput is bounded by the
scalar-issue MAC rate of the MTPs — the paper computes PIUMA Dense MM
time from the peak FLOPS observed in its ref [21] (SU3 bench), and this
model does the same: a pipeline roofline (peak MAC throughput times an
achievable-efficiency factor) crossed with a bandwidth roofline for the
streamed activations.  This is the structural reason PIUMA's GCN
advantage shrinks as the embedding dimension grows (Fig 9/10).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fraction of scalar peak a hand-tuned blocked GEMM achieves on the
#: MTPs (loads and address math share the single issue port with MACs).
DEFAULT_GEMM_EFFICIENCY = 0.65


@dataclass(frozen=True)
class DenseMMEstimate:
    """Time and limiting factor of one dense multiply."""

    time_ns: float
    flops: int
    gflops: float
    bound: str  # "compute" or "bandwidth"


def peak_mac_gflops(config):
    """Scalar MAC peak: every MTP retires one 2-FLOP MAC per cycle."""
    pipelines = config.n_cores * config.mtps_per_core
    return pipelines * config.clock_ghz * 2.0


def dense_mm_time(n_rows, in_dim, out_dim, config,
                  efficiency=DEFAULT_GEMM_EFFICIENCY):
    """Estimate ``(n_rows x in_dim) @ (in_dim x out_dim)`` on PIUMA.

    The weight matrix is scratchpad-resident (it is tiny next to the
    activations); activations stream through DRAM once in, once out.
    """
    if min(n_rows, in_dim, out_dim) < 1:
        raise ValueError("matrix dimensions must be positive")
    if not 0 < efficiency <= 1:
        raise ValueError("efficiency must be in (0, 1]")
    flops = 2 * n_rows * in_dim * out_dim
    compute_ns = flops / (peak_mac_gflops(config) * efficiency)
    streamed = n_rows * (in_dim + out_dim) * config.feature_bytes
    bandwidth_ns = streamed / config.total_bandwidth_gbps
    time_ns = max(compute_ns, bandwidth_ns)
    return DenseMMEstimate(
        time_ns=time_ns,
        flops=flops,
        gflops=flops / time_ns,
        bound="compute" if compute_ns >= bandwidth_ns else "bandwidth",
    )
