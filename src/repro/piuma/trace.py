"""Event tracing for the PIUMA simulator.

A :class:`Tracer` wraps a :class:`Simulator` and records every executed
op (time, thread placement, op tag, resume/completion).  Traces render
as a text timeline — the tool for answering "why is this kernel slow"
questions the aggregate tag stats cannot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One executed op."""

    issued_at: float
    resumed_at: float
    completed_at: float
    core: int
    mtp: int
    tag: str

    @property
    def blocked_ns(self):
        """Time the issuing thread was stalled by this op."""
        return self.resumed_at - self.issued_at


class Tracer:
    """Records simulator ops by monkey-patching ``_execute``.

    Bounded: keeps at most ``capacity`` events (the earliest ones),
    which is what you want for inspecting kernel warm-up and steady
    state without holding the entire run.
    """

    def __init__(self, simulator, capacity=10_000):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.events = []
        self.capacity = capacity
        self.dropped = 0
        self._simulator = simulator
        self._original = simulator._execute
        simulator._execute = self._traced_execute

    def _traced_execute(self, op, now, core, mtp):
        resume, completion = self._original(op, now, core, mtp)
        tag = getattr(op, "tag", type(op).__name__)
        if len(self.events) < self.capacity:
            self.events.append(
                TraceEvent(
                    issued_at=now,
                    resumed_at=resume,
                    completed_at=completion,
                    core=core,
                    mtp=mtp,
                    tag=tag,
                )
            )
        else:
            self.dropped += 1
        return resume, completion

    def detach(self):
        """Stop tracing; the simulator keeps running untraced."""
        self._simulator._execute = self._original

    # -- analysis ------------------------------------------------------------

    def blocked_time_by_tag(self):
        """Total thread-blocking nanoseconds per op tag."""
        totals = {}
        for event in self.events:
            totals[event.tag] = totals.get(event.tag, 0.0) + event.blocked_ns
        return totals

    def slowest(self, n=10):
        """The ``n`` events that blocked their thread longest."""
        return sorted(self.events, key=lambda e: -e.blocked_ns)[:n]

    def render(self, limit=40):
        """Text timeline of the first ``limit`` events."""
        lines = [
            f"{'t(ns)':>10s}  {'core':>4s}  {'mtp':>3s}  "
            f"{'blocked':>9s}  tag"
        ]
        for event in self.events[:limit]:
            lines.append(
                f"{event.issued_at:>10.1f}  {event.core:>4d}  "
                f"{event.mtp:>3d}  {event.blocked_ns:>9.1f}  {event.tag}"
            )
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity)")
        return "\n".join(lines)
