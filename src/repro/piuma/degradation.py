"""Deterministic hardware-fault model for the PIUMA DES.

The paper's conclusions are measured on a *healthy* fabric, but the
PIUMA architecture description (arXiv:2010.06277) is a multi-die,
multi-node optical HyperX system where degraded links, slow DRAM
slices, and disabled pipelines are the expected operating regime at
scale.  This module answers "how does SpMM time degrade when the
fabric does?" with a seeded, fully deterministic fault model:

* **links** — per-link latency multipliers (a marginal optical link
  retrains at a lower rate) and link-down rerouting through a healthy
  intermediate core, handled by :class:`~repro.piuma.network.Network`;
* **DRAM slices** — per-slice bandwidth/latency derating (a slice
  running at half rate after post-package repair) and periodic
  transient stall windows (refresh storms, thermal throttling),
  handled by :class:`~repro.piuma.resources.DRAMSlice`;
* **DMA engines** — dead engines (kernels that need them raise a
  structured :class:`~repro.runtime.errors.HardwareExhausted`) and
  flaky engines whose descriptors periodically fail and retry with a
  fixed backoff, visible to the issuing thread;
* **compute** — disabled MTPs and whole cores, forcing the kernels'
  work division to redistribute threads over the surviving pipelines
  (:func:`thread_placements`); the dead core's DRAM slice and atomic
  unit stay reachable — the distributed global address space survives
  its compute.

Which units are degraded is decided by a *fixed per-unit hash*
compared against the spec's fraction knobs: the same ``(seed, kind,
index)`` always hashes to the same value, so growing a fraction only
*adds* members (degraded sets are nested across severities) and the
graceful-degradation curve is monotone by construction.  Everything is
pure topology — both engine main loops see identical degradation state
and stay bit-identical under any spec.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from repro.runtime.errors import HardwareExhausted

#: Fraction knobs of :class:`DegradationSpec` (values in ``[0, 1]``).
_FRACTION_FIELDS = (
    "degraded_link_fraction",
    "link_down_fraction",
    "degraded_slice_fraction",
    "stall_slice_fraction",
    "dead_dma_fraction",
    "flaky_dma_fraction",
    "dead_core_fraction",
    "dead_mtp_fraction",
)


@dataclass(frozen=True)
class DegradationSpec:
    """JSON-serializable description of a degraded PIUMA fabric.

    All fields are plain primitives, so ``dataclasses.asdict`` of a
    :class:`~repro.piuma.config.PIUMAConfig` carrying a spec stays
    JSON-able and the spec participates in the sweep cache key like
    every other config field.  The default instance is fully healthy
    (:attr:`is_trivial`), and a config with ``degradation=None``
    behaves identically to one with a trivial spec.
    """

    #: Seed of the per-unit membership hashes.  Different seeds degrade
    #: different units at the same fractions.
    seed: int = 0

    # -- network links -------------------------------------------------------
    #: Fraction of core-to-core links running at degraded latency.
    degraded_link_fraction: float = 0.0
    #: Latency multiplier of a degraded (but up) link.
    link_latency_scale: float = 4.0
    #: Fraction of links that are down entirely; traffic reroutes via a
    #: healthy intermediate core.
    link_down_fraction: float = 0.0
    #: Extra per-message cost of taking a reroute detour.
    reroute_overhead_ns: float = 20.0

    # -- DRAM slices ---------------------------------------------------------
    #: Fraction of slices with derated bandwidth/latency.
    degraded_slice_fraction: float = 0.0
    #: Bandwidth multiplier of a degraded slice (< 1 slows it down).
    slice_bandwidth_derate: float = 0.5
    #: Access-latency multiplier of a degraded slice.
    slice_latency_scale: float = 2.0
    #: Fraction of slices with periodic transient stall windows.
    stall_slice_fraction: float = 0.0
    #: Stall period: every ``stall_period_ns`` the slice freezes.
    stall_period_ns: float = 50000.0
    #: Stall length: arrivals inside the window wait for its end.
    stall_duration_ns: float = 2000.0

    # -- DMA engines ---------------------------------------------------------
    #: Fraction of DMA engines that are dead (kernels needing them
    #: raise :class:`HardwareExhausted`).
    dead_dma_fraction: float = 0.0
    #: Fraction of (live) DMA engines that are flaky.
    flaky_dma_fraction: float = 0.0
    #: On a flaky engine every N-th descriptor fails and is retried.
    dma_fail_period: int = 64
    #: Thread-visible delay of one descriptor retry.
    dma_retry_backoff_ns: float = 200.0

    # -- compute -------------------------------------------------------------
    #: Fraction of cores whose pipelines are disabled entirely (their
    #: DRAM slice and atomic unit stay up — DGAS survives).
    dead_core_fraction: float = 0.0
    #: Fraction of individual MTPs disabled on otherwise-live cores.
    dead_mtp_fraction: float = 0.0

    def __post_init__(self):
        for name in _FRACTION_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.link_latency_scale < 1.0:
            raise ValueError("link_latency_scale must be >= 1")
        if self.slice_latency_scale < 1.0:
            raise ValueError("slice_latency_scale must be >= 1")
        if not 0.0 < self.slice_bandwidth_derate <= 1.0:
            raise ValueError("slice_bandwidth_derate must be in (0, 1]")
        if self.reroute_overhead_ns < 0 or self.dma_retry_backoff_ns < 0:
            raise ValueError("overheads must be non-negative")
        if self.stall_period_ns <= 0:
            raise ValueError("stall_period_ns must be positive")
        if not 0.0 <= self.stall_duration_ns < self.stall_period_ns:
            raise ValueError(
                "stall_duration_ns must be in [0, stall_period_ns)"
            )
        if self.dma_fail_period < 1:
            raise ValueError("dma_fail_period must be >= 1")

    @property
    def is_trivial(self):
        """True when no unit can be degraded (all fractions zero)."""
        return all(getattr(self, name) == 0.0 for name in _FRACTION_FIELDS)

    def to_json(self):
        """Plain-JSON form (CLI spec files, sweep records)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data):
        return cls(**data)

    def with_(self, **changes):
        """Copy with fields replaced (severity-sweep helper)."""
        return replace(self, **changes)

    @classmethod
    def at_severity(cls, severity, seed=0):
        """A mixed-fault spec whose degraded sets *nest* with severity.

        Only the membership fractions scale with ``severity``; every
        intensity knob (latency scales, stall windows, backoff) stays
        fixed.  Because unit membership is a fixed hash compared
        against the fraction, the degraded sets at severity ``s1`` are
        subsets of those at ``s2 > s1`` — which makes the graceful-
        degradation curve (``repro resilience``) monotone by
        construction.  Dead cores and dead DMA engines are excluded:
        they change *which* work runs where (or abort the kernel), not
        how fast the fabric serves it, so they get their own presets
        instead of riding the severity axis.
        """
        if not 0.0 <= severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")
        return cls(
            seed=seed,
            degraded_link_fraction=severity,
            link_down_fraction=0.25 * severity,
            degraded_slice_fraction=severity,
            stall_slice_fraction=0.5 * severity,
            flaky_dma_fraction=0.5 * severity,
        )


#: Named specs accepted by ``repro sweep --degrade`` and the CI matrix.
DEGRADATION_PRESETS = {
    "mild": DegradationSpec.at_severity(0.25),
    "moderate": DegradationSpec.at_severity(0.5),
    "severe": DegradationSpec.at_severity(1.0),
    "links": DegradationSpec(
        degraded_link_fraction=0.5, link_down_fraction=0.25
    ),
    "slices": DegradationSpec(
        degraded_slice_fraction=0.5, stall_slice_fraction=0.25
    ),
    "dma": DegradationSpec(flaky_dma_fraction=0.5),
    "compute": DegradationSpec(
        dead_core_fraction=0.25, dead_mtp_fraction=0.25
    ),
}


def _unit_hash(seed, kind, index):
    """Fixed pseudo-random value in [0, 1) for one hardware unit.

    String-seeded ``random.Random`` hashes via SHA-512, so the value is
    stable across processes, platforms, and ``PYTHONHASHSEED`` — the
    property every determinism promise in this module rests on.
    """
    return random.Random(f"{seed}:{kind}:{index}").random()


def _hit(seed, kind, index, fraction):
    """Is unit ``(kind, index)`` degraded at ``fraction``?

    Monotone in ``fraction``: the unit's hash is fixed, so a larger
    fraction can only add members, never remove them.
    """
    if fraction <= 0.0:
        return False
    if fraction >= 1.0:
        return True
    return _unit_hash(seed, kind, index) < fraction


class DegradationModel:
    """Resolved degradation state of one simulated system.

    Evaluates a :class:`DegradationSpec` against a concrete topology:
    which slices/engines/cores/MTPs are degraded is decided eagerly
    (O(n_cores) sets); per-link state is memoized lazily because the
    link population is quadratic in the core count.

    The model is immutable once built and shared by the network, the
    simulator, and the invariant checker — degradation state is static
    for the lifetime of a :class:`~repro.piuma.engine.Simulator`, which
    is what keeps the two engine main loops bit-identical under faults.
    """

    __slots__ = (
        "spec", "n_cores", "_inter_node_ns",
        "degraded_slices", "stalling_slices",
        "dead_dma", "flaky_dma", "dead_cores", "dead_mtps",
        "_link_state", "_reroute_memo",
    )

    def __init__(self, spec, config):
        self.spec = spec
        n = config.n_cores
        self.n_cores = n
        self._inter_node_ns = config.inter_node_latency_ns
        seed = spec.seed
        self.degraded_slices = frozenset(
            c for c in range(n)
            if _hit(seed, "slice", c, spec.degraded_slice_fraction)
        )
        self.stalling_slices = frozenset(
            c for c in range(n)
            if _hit(seed, "stall", c, spec.stall_slice_fraction)
        )
        self.dead_dma = frozenset(
            c for c in range(n)
            if _hit(seed, "dma-dead", c, spec.dead_dma_fraction)
        )
        self.flaky_dma = frozenset(
            c for c in range(n)
            if c not in self.dead_dma
            and _hit(seed, "dma-flaky", c, spec.flaky_dma_fraction)
        )
        self.dead_cores = frozenset(
            c for c in range(n)
            if _hit(seed, "core", c, spec.dead_core_fraction)
        )
        self.dead_mtps = frozenset(
            (c, m)
            for c in range(n)
            if c not in self.dead_cores
            for m in range(config.mtps_per_core)
            if _hit(seed, "mtp", f"{c}:{m}", spec.dead_mtp_fraction)
        )
        # Lazy per-link memos, keyed by the canonical (min, max) pair:
        # links are undirected, and eager evaluation would build
        # O(n^2) string-seeded RNGs on large multi-node configs.
        self._link_state = {}
        self._reroute_memo = {}

    @classmethod
    def for_config(cls, config):
        """Model of ``config.degradation``; ``None`` when healthy.

        Returning ``None`` for a missing or trivial spec keeps the
        healthy hot paths entirely untouched (and bit-identical to the
        pre-degradation engine).
        """
        spec = config.degradation
        if spec is None or spec.is_trivial:
            return None
        return cls(spec, config)

    # -- links ---------------------------------------------------------------

    def link_state(self, a, b):
        """``(slow, down)`` booleans of the undirected link ``{a, b}``."""
        if a == b:
            return (False, False)
        key = (a, b) if a < b else (b, a)
        state = self._link_state.get(key)
        if state is None:
            spec = self.spec
            seed = spec.seed
            index = f"{key[0]}-{key[1]}"
            state = (
                _hit(seed, "link-slow", index, spec.degraded_link_fraction),
                _hit(seed, "link-down", index, spec.link_down_fraction),
            )
            self._link_state[key] = state
        return state

    def link_latency(self, src, dst, base, tier):
        """Degraded one-way latency of ``src -> dst`` over base ``base``.

        ``tier`` is the healthy tier-latency function (``Network``
        passes its own), used to price reroute legs.  The returned
        value is monotone in the degraded sets: healthy ``<=`` slow
        ``<=`` slow+down — a down link never undercuts its slow direct
        cost, because the detour has to exit through the same router.
        """
        slow, down = self.link_state(src, dst)
        if not slow and not down:
            return base
        degraded = base * self.spec.link_latency_scale if slow else base
        if not down:
            return degraded
        reroute = self._reroute_latency(src, dst, tier)
        return reroute if reroute > degraded else degraded

    def _leg_latency(self, a, b, tier):
        """One reroute leg: healthy tier cost, scaled when slow."""
        base = tier(a, b)
        if self.link_state(a, b)[0]:
            return base * self.spec.link_latency_scale
        return base

    def _reroute_latency(self, src, dst, tier):
        """Cheapest two-leg detour around the down link ``src -> dst``.

        Minimizes over every intermediate core whose two legs are both
        up, plus the fixed detour overhead.  Any leg cost is at least
        the direct tier cost (a detour between two nodes still crosses
        the node tier), so a reroute is never cheaper than the healthy
        direct path.  When every detour is down too, the message takes
        the worst-case maintenance path: two inter-node hops.
        """
        key = (src, dst) if src < dst else (dst, src)
        cached = self._reroute_memo.get(key)
        if cached is not None:
            return cached
        spec = self.spec
        best = None
        for via in range(self.n_cores):
            if via == src or via == dst:
                continue
            if self.link_state(src, via)[1] or self.link_state(via, dst)[1]:
                continue
            cost = (
                self._leg_latency(src, via, tier)
                + self._leg_latency(via, dst, tier)
            )
            if best is None or cost < best:
                best = cost
        if best is None:
            best = 2.0 * self._inter_node_ns + spec.reroute_overhead_ns
        value = best + spec.reroute_overhead_ns
        self._reroute_memo[key] = value
        return value

    # -- slices / engines ----------------------------------------------------

    def slice_parameters(self, core, bandwidth, latency_ns):
        """``(bandwidth, latency, stall_period, stall_duration)`` of one
        slice after degradation."""
        spec = self.spec
        if core in self.degraded_slices:
            bandwidth *= spec.slice_bandwidth_derate
            latency_ns *= spec.slice_latency_scale
        if core in self.stalling_slices:
            return (bandwidth, latency_ns,
                    spec.stall_period_ns, spec.stall_duration_ns)
        return (bandwidth, latency_ns, 0.0, 0.0)

    def dma_parameters(self, core):
        """``(alive, fail_period, retry_backoff_ns)`` of one DMA engine."""
        if core in self.dead_dma:
            return (False, 0, 0.0)
        if core in self.flaky_dma:
            return (True, self.spec.dma_fail_period,
                    self.spec.dma_retry_backoff_ns)
        return (True, 0, 0.0)


def thread_placements(config, model=None):
    """``(core, mtp)`` placement of every hardware thread.

    On a healthy system this reproduces the kernels' historical layout
    exactly (contiguous thread blocks per MTP, contiguous MTPs per
    core) — bit-identical placement, hence bit-identical results.
    Under dead cores/MTPs the same ``n_threads`` work shares are
    redistributed in contiguous blocks over the surviving pipelines,
    so the work division of every kernel is unchanged and only the
    placement (and with it pipeline contention) degrades.

    Raises :class:`HardwareExhausted` when no pipeline survives.
    """
    if model is None:
        model = DegradationModel.for_config(config)
    if model is None or (not model.dead_cores and not model.dead_mtps):
        per_core = config.threads_per_core
        per_mtp = config.threads_per_mtp
        return [
            (t // per_core, (t % per_core) // per_mtp)
            for t in range(config.n_threads)
        ]
    slots = [
        (core, mtp)
        for core in range(config.n_cores)
        if core not in model.dead_cores
        for mtp in range(config.mtps_per_core)
        if (core, mtp) not in model.dead_mtps
    ]
    if not slots:
        raise HardwareExhausted(
            f"no MTP pipeline survives the degradation spec "
            f"({len(model.dead_cores)}/{config.n_cores} cores dead, "
            f"{len(model.dead_mtps)} further MTPs disabled)",
            cause="dead-compute",
        )
    n_threads = config.n_threads
    n_slots = len(slots)
    # Contiguous block mapping: with every slot live this reduces to
    # exactly the healthy formula above (t // threads_per_mtp picks the
    # slot), so the degraded path generalizes it rather than forking.
    return [slots[(t * n_slots) // n_threads] for t in range(n_threads)]


def effective_total_bandwidth(config, model=None):
    """Aggregate DRAM bandwidth (bytes/ns) under degradation.

    Sums the per-slice rates after derating, discounted by each
    stalling slice's duty cycle (a slice frozen ``duration`` out of
    every ``period`` nanoseconds serves proportionally fewer bytes).
    Equals ``config.total_bandwidth_gbps`` on a healthy system — this
    is the bandwidth the derated Equation 5 sanity envelope uses.
    """
    if model is None:
        model = DegradationModel.for_config(config)
    base = config.slice_bandwidth_bytes_per_ns
    if model is None:
        return config.n_cores * base
    spec = model.spec
    total = 0.0
    for core in range(config.n_cores):
        rate = base
        if core in model.degraded_slices:
            rate *= spec.slice_bandwidth_derate
        if core in model.stalling_slices:
            rate *= 1.0 - spec.stall_duration_ns / spec.stall_period_ns
        total += rate
    return total
