"""Kernel runner: window selection, thread spawning, projection.

The PIUMA simulator executes a *window* of edges at full mechanism
fidelity (every NNZ read, feature fetch, DMA request of those edges) and
projects steady-state throughput to the whole graph — the down-scaled
simulation methodology of the paper's ref [18].  Edge-parallel work
division follows Algorithm 2: each of the T hardware threads owns a
contiguous 1/T slice of the edge array, and the simulated window takes
the leading edges of every slice so all cores and pipelines stay
populated exactly as they would be in a full run.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass

import numpy as np

from repro.piuma.degradation import thread_placements
from repro.piuma.engine import Simulator
from repro.piuma.invariants import verify_kernel_result
from repro.piuma.ops import OpProgram
from repro.sparse.spmm import spmm_traffic


@dataclass(frozen=True)
class ThreadWork:
    """The simulated slice of one hardware thread.

    Attributes
    ----------
    core, mtp:
        Hardware placement.
    cols:
        Destination (neighbor) vertex of each simulated edge, in order.
    rows:
        Owning (output) vertex of each simulated edge.
    start_edge:
        Global index of the first simulated edge (placement of NNZ
        reads in the interleaved address space).
    """

    core: int
    mtp: int
    cols: np.ndarray
    rows: np.ndarray
    start_edge: int


@dataclass(frozen=True)
class KernelResult:
    """Outcome of one simulated SpMM kernel invocation.

    Attributes
    ----------
    sim_time_ns:
        End-to-end simulated time of the window (incl. launch overhead).
    window_edges / total_edges:
        Simulated vs full-graph edge counts.
    embedding_dim:
        K.
    gflops:
        Steady-state throughput achieved inside the window.
    projected_time_ns:
        Full-graph kernel time at that throughput (plus launch).
    memory_utilization:
        Mean DRAM-slice busy fraction.
    achieved_bandwidth:
        System DRAM bytes/ns during the window.
    tag_stats:
        Per-category accounting (``nnz``, ``feature``, ``dma_read``...):
        counts, bytes, and thread-blocking wait — the raw material of the
        Fig 8 (right) breakdown.
    events / host_wall_s:
        Host-performance observability: DES events executed and host
        wall-clock seconds the simulation took (see
        :attr:`events_per_s`).
    """

    sim_time_ns: float
    window_edges: int
    total_edges: int
    embedding_dim: int
    gflops: float
    projected_time_ns: float
    memory_utilization: float
    achieved_bandwidth: float
    tag_stats: dict
    events: int = 0
    host_wall_s: float = 0.0

    @property
    def events_per_s(self):
        """Host-side DES throughput (events per wall-clock second)."""
        if self.host_wall_s <= 0.0:
            return 0.0
        return self.events / self.host_wall_s

    def efficiency_vs(self, model_gflops):
        """Fraction of an analytical-model throughput achieved."""
        return self.gflops / model_gflops if model_gflops > 0 else 0.0

    def wait_fraction(self, tag):
        """Share of total blocking wait attributed to ``tag``."""
        total = sum(s.wait_ns for s in self.tag_stats.values())
        if total <= 0:
            return 0.0
        stats = self.tag_stats.get(tag)
        return stats.wait_ns / total if stats else 0.0


def auto_window(config, total_edges, edges_per_thread=48, floor=4096, cap=131072):
    """Pick the simulated window size.

    Every thread should see several NNZ groups to reach steady state, so
    the window grows with the thread count, clamped to keep Python-side
    simulation cost bounded.
    """
    want = config.n_threads * edges_per_thread
    return int(min(total_edges, max(floor, min(want, cap))))


def split_work(adj, config, window_edges):
    """Build per-thread :class:`ThreadWork` for an edge-parallel window.

    Thread ``t`` owns the contiguous global slice ``[tE/T, (t+1)E/T)``
    (Algorithm 2 line 3) and simulates its leading ``~window/T`` edges.

    Placement comes from :func:`thread_placements`: the historical
    contiguous layout on a healthy fabric (bit-identical results), and
    a redistribution of the same ``T`` work shares over the surviving
    pipelines when the degradation spec disables cores or MTPs.
    """
    total_edges = adj.nnz
    n_threads = config.n_threads
    placements = thread_placements(config)
    bounds = np.linspace(0, total_edges, n_threads + 1).astype(np.int64)
    per_thread = max(1, int(round(window_edges / n_threads)))
    work = []
    for t in range(n_threads):
        start, end = int(bounds[t]), int(bounds[t + 1])
        stop = min(end, start + per_thread)
        if stop <= start:
            continue
        cols = adj.indices[start:stop]
        rows = (
            np.searchsorted(
                adj.indptr, np.arange(start, stop, dtype=np.int64), side="right"
            )
            - 1
        )
        core, mtp = placements[t]
        work.append(
            ThreadWork(
                core=core, mtp=mtp, cols=cols, rows=rows, start_edge=start
            )
        )
    return work


def run_spmm_kernel(adj, embedding_dim, config, thread_factory,
                    window_edges=None, splitter=None):
    """Simulate one SpMM kernel and project to the full graph.

    Parameters
    ----------
    adj:
        CSR adjacency (typically a down-scaled materialization; only its
        structure matters).
    embedding_dim:
        K.
    config:
        :class:`PIUMAConfig`.
    thread_factory:
        ``f(work: ThreadWork, embedding_dim, config) -> generator`` —
        one of the kernels in ``spmm_loop`` / ``spmm_dma``.
    window_edges:
        Simulated window size; default :func:`auto_window`.
    splitter:
        Work-division function ``(adj, config, window) -> [ThreadWork]``;
        default :func:`split_work` (edge-parallel, Algorithm 2).
    """
    if adj.nnz == 0:
        raise ValueError("cannot simulate SpMM on an empty matrix")
    if window_edges is None:
        window_edges = auto_window(config, adj.nnz)
    if splitter is None:
        splitter = split_work
    simulator = Simulator(config)
    work_items = splitter(adj, config, window_edges)
    simulated_edges = sum(len(w.cols) for w in work_items)
    # Kernels that take a `shared` intern table get one per invocation
    # (ops are immutable, so one instance can serve every thread);
    # custom factories without the parameter still work.
    params = inspect.signature(thread_factory).parameters
    accepts_shared = "shared" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )
    shared = {} if accepts_shared else None
    # Under the vector engine, factories that declare their op stream
    # static (`program_safe`) are compiled by draining the generator
    # into an OpProgram the replay loop executes without resumption.
    # Factories without the marker (e.g. the dynamic work-stealing
    # kernel, whose stream depends on runtime interleaving) stay
    # generator-driven — the vector loop runs both kinds side by side.
    compile_programs = (
        config.resolved_engine == "vector"
        and getattr(thread_factory, "program_safe", False)
    )
    for work in work_items:
        if accepts_shared:
            generator = thread_factory(
                work, embedding_dim, config, shared=shared
            )
        else:
            generator = thread_factory(work, embedding_dim, config)
        if compile_programs:
            simulator.spawn_program(
                OpProgram.from_generator(generator), work.core, work.mtp
            )
        else:
            simulator.spawn(generator, work.core, work.mtp)
    end = simulator.run()
    # Steady state excludes the per-thread setup (binary search): in a
    # full run it is amortized over thousands of edges per thread; a
    # down-scaled window would overweight it by orders of magnitude.
    setup = min(simulator.setup_end, end - config.launch_overhead_ns)
    steady = max(end - config.launch_overhead_ns - setup, 1e-9)
    flops = 2.0 * simulated_edges * embedding_dim
    gflops = flops / steady  # flops per ns == GFLOP/s
    total_flops = 2.0 * adj.nnz * embedding_dim
    projected = config.launch_overhead_ns + setup + total_flops / gflops
    result = KernelResult(
        sim_time_ns=end,
        window_edges=simulated_edges,
        total_edges=adj.nnz,
        embedding_dim=embedding_dim,
        gflops=gflops,
        projected_time_ns=projected,
        memory_utilization=simulator.memory_utilization(),
        achieved_bandwidth=simulator.achieved_bandwidth(),
        tag_stats=dict(simulator.stats),
        events=simulator.events,
        host_wall_s=simulator.host_wall_s,
    )
    if config.check_level:
        # Cross-check the reported aggregates against independently
        # recomputed sums from the raw simulator state (the sanitizer's
        # reporting-layer leg; the resource-accounting legs already ran
        # inside Simulator.run).
        verify_kernel_result(result, simulator, config)
    return result
