"""Operation vocabulary of the simulated PIUMA kernels.

Kernel thread generators (``repro.piuma.spmm_loop``/``spmm_dma``) yield
these records; the simulator (``repro.piuma.engine``) executes them
against the shared hardware resources.  Each record carries a ``tag``
naming what the access is *for* (``"nnz"``, ``"feature"``, ...) so the
simulator can attribute wait time per category — that attribution is the
Fig 8 (right) execution-time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Load:
    """Blocking read: the thread stalls until the data returns.

    ``grouped`` loads are issued back-to-back before stalling (the
    loop-unrolling trick); the stall covers the slowest of them, modeled
    as one request of the combined size.
    """

    nbytes: int
    target_core: int
    tag: str
    grouped: int = 1
    #: Demand loads (NNZ/index fetches) are arbitrated ahead of bulk DMA
    #: streams at the memory controller.
    priority: bool = True


@dataclass(frozen=True)
class SequentialAccess:
    """Blocking stall-on-use loop: ``n_rounds`` dependent line fetches.

    Each round issues ``instrs_per_round`` pipeline instructions, then a
    read of ``bytes_per_round`` that must complete before the next round
    begins.  This is the inner loop of the loop-unrolled kernel, where
    the round-trip latency appears ``n_rounds`` times on the critical
    path — the scaling killer of Section IV-B.
    """

    n_rounds: int
    bytes_per_round: int
    target_core: int
    instrs_per_round: int
    tag: str


@dataclass(frozen=True)
class PhaseMarker:
    """Zero-cost marker separating kernel setup from steady state.

    Kernels emit one after their per-thread setup (binary search); the
    runner uses the latest marker to project steady-state throughput
    without the setup transient, which a down-scaled window would
    otherwise overweight by orders of magnitude.
    """

    name: str = "setup_done"


@dataclass(frozen=True)
class Compute:
    """Pipeline-only work of ``n_instrs`` single-issue instructions."""

    n_instrs: int
    tag: str = "compute"


@dataclass(frozen=True)
class Store:
    """Fire-and-forget write: occupies issue slots and memory bandwidth
    but does not stall the thread (stall-on-use pipelines only stall on
    loads)."""

    nbytes: int
    target_core: int
    tag: str


@dataclass(frozen=True)
class AtomicUpdate:
    """Remote atomic read-modify-write of a row (fire-and-forget).

    Edge-parallel SpMM write-backs must be atomic because rows that
    straddle thread boundaries have multiple writers (Algorithm 2).  On
    PIUMA these land on the *target* core's near-memory atomic unit,
    which serializes updates to its slice and performs the RMW locally
    (one read + one write of the payload) — the "highly optimized
    remote atomic instructions" that make edge-parallel viable on PIUMA
    where it loses on CPUs.
    """

    nbytes: int
    target_core: int
    tag: str


@dataclass(frozen=True)
class DMAOp:
    """Asynchronous DMA request routed to the thread's core engine.

    ``kind`` selects the data path: ``"read"``/``"write"`` move DRAM
    traffic to/from ``target_core``'s slice; ``"internal"`` occupies the
    engine only (scratchpad buffer init / copy-add).  The issuing thread
    pays ``dma_issue_instrs`` pipeline instructions and continues — only
    the end-of-kernel barrier waits for completions.
    """

    kind: str
    nbytes: int
    target_core: int
    tag: str

    def __post_init__(self):
        if self.kind not in ("read", "write", "internal"):
            raise ValueError(f"unknown DMA kind {self.kind!r}")
