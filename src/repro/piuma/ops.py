"""Operation vocabulary of the simulated PIUMA kernels.

Kernel thread generators (``repro.piuma.spmm_loop``/``spmm_dma``) yield
these records; the simulator (``repro.piuma.engine``) executes them
against the shared hardware resources.  Each record carries a ``tag``
naming what the access is *for* (``"nnz"``, ``"feature"``, ...) so the
simulator can attribute wait time per category — that attribution is the
Fig 8 (right) execution-time breakdown.

Ops are on the simulator's per-event hot path, so they are hand-written
``__slots__`` classes rather than frozen dataclasses: construction is a
plain attribute-assignment ``__init__`` with no ``object.__setattr__``
indirection and no ``__dict__`` per instance.  They must be treated as
**immutable**: the kernels intern and re-yield the same instance for
repeated (target, bytes) shapes, so mutating one op would corrupt every
later occurrence.  The simulator only ever reads them.
"""

from __future__ import annotations


class _Op:
    """Shared value semantics (repr/eq/hash over the slot fields)."""

    __slots__ = ()

    def _values(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __repr__(self):
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self._values() == other._values()

    def __hash__(self):
        return hash((type(self).__name__,) + self._values())


class Load(_Op):
    """Blocking read: the thread stalls until the data returns.

    ``grouped`` loads are issued back-to-back before stalling (the
    loop-unrolling trick); the stall covers the slowest of them, modeled
    as one request of the combined size.  ``priority`` marks demand
    loads (NNZ/index fetches) arbitrated ahead of bulk DMA streams at
    the memory controller.
    """

    __slots__ = ("nbytes", "target_core", "tag", "grouped", "priority")

    def __init__(self, nbytes, target_core, tag, grouped=1, priority=True):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag
        self.grouped = grouped
        self.priority = priority


class SequentialAccess(_Op):
    """Blocking stall-on-use loop: ``n_rounds`` dependent line fetches.

    Each round issues ``instrs_per_round`` pipeline instructions, then a
    read of ``bytes_per_round`` that must complete before the next round
    begins.  This is the inner loop of the loop-unrolled kernel, where
    the round-trip latency appears ``n_rounds`` times on the critical
    path — the scaling killer of Section IV-B.
    """

    __slots__ = (
        "n_rounds", "bytes_per_round", "target_core", "instrs_per_round",
        "tag",
    )

    def __init__(self, n_rounds, bytes_per_round, target_core,
                 instrs_per_round, tag):
        self.n_rounds = n_rounds
        self.bytes_per_round = bytes_per_round
        self.target_core = target_core
        self.instrs_per_round = instrs_per_round
        self.tag = tag


class PhaseMarker(_Op):
    """Zero-cost marker separating kernel setup from steady state.

    Kernels emit one after their per-thread setup (binary search); the
    runner uses the latest marker to project steady-state throughput
    without the setup transient, which a down-scaled window would
    otherwise overweight by orders of magnitude.
    """

    __slots__ = ("name",)

    def __init__(self, name="setup_done"):
        self.name = name


class Compute(_Op):
    """Pipeline-only work of ``n_instrs`` single-issue instructions."""

    __slots__ = ("n_instrs", "tag")

    def __init__(self, n_instrs, tag="compute"):
        self.n_instrs = n_instrs
        self.tag = tag


class Store(_Op):
    """Fire-and-forget write: occupies issue slots and memory bandwidth
    but does not stall the thread (stall-on-use pipelines only stall on
    loads)."""

    __slots__ = ("nbytes", "target_core", "tag")

    def __init__(self, nbytes, target_core, tag):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


class AtomicUpdate(_Op):
    """Remote atomic read-modify-write of a row (fire-and-forget).

    Edge-parallel SpMM write-backs must be atomic because rows that
    straddle thread boundaries have multiple writers (Algorithm 2).  On
    PIUMA these land on the *target* core's near-memory atomic unit,
    which serializes updates to its slice and performs the RMW locally
    (one read + one write of the payload) — the "highly optimized
    remote atomic instructions" that make edge-parallel viable on PIUMA
    where it loses on CPUs.
    """

    __slots__ = ("nbytes", "target_core", "tag")

    def __init__(self, nbytes, target_core, tag):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


#: Valid data paths of a :class:`DMAOp`.
DMA_KINDS = frozenset(("read", "write", "internal"))


class DMAOp(_Op):
    """Asynchronous DMA request routed to the thread's core engine.

    ``kind`` selects the data path: ``"read"``/``"write"`` move DRAM
    traffic to/from ``target_core``'s slice; ``"internal"`` occupies the
    engine only (scratchpad buffer init / copy-add).  The issuing thread
    pays ``dma_issue_instrs`` pipeline instructions and continues — only
    the end-of-kernel barrier waits for completions.
    """

    __slots__ = ("kind", "nbytes", "target_core", "tag")

    def __init__(self, kind, nbytes, target_core, tag):
        if kind not in DMA_KINDS:
            raise ValueError(f"unknown DMA kind {kind!r}")
        self.kind = kind
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


def dram_bytes(op):
    """DRAM-slice bytes one executed op charges (0 for pure-pipeline ops).

    The independent ledger the runtime sanitizer accumulates at
    ``check_level>=2``: summing this over every executed op must equal
    the slices' ``bytes_served`` total, byte for byte, or the engine's
    memory accounting has drifted.  Mirrors the per-handler accounting
    in ``repro.piuma.engine`` — an atomic RMW reads and writes its
    payload (2x), an internal DMA moves no DRAM traffic at all.
    """
    cls = type(op)
    if cls is Load:
        return op.nbytes
    if cls is SequentialAccess:
        return op.n_rounds * op.bytes_per_round
    if cls is Store:
        return op.nbytes
    if cls is AtomicUpdate:
        return 2 * op.nbytes
    if cls is DMAOp:
        return 0 if op.kind == "internal" else op.nbytes
    return 0
