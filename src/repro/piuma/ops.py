"""Operation vocabulary of the simulated PIUMA kernels.

Kernel thread generators (``repro.piuma.spmm_loop``/``spmm_dma``) yield
these records; the simulator (``repro.piuma.engine``) executes them
against the shared hardware resources.  Each record carries a ``tag``
naming what the access is *for* (``"nnz"``, ``"feature"``, ...) so the
simulator can attribute wait time per category — that attribution is the
Fig 8 (right) execution-time breakdown.

Ops are on the simulator's per-event hot path, so they are hand-written
``__slots__`` classes rather than frozen dataclasses: construction is a
plain attribute-assignment ``__init__`` with no ``object.__setattr__``
indirection and no ``__dict__`` per instance.  They must be treated as
**immutable**: the kernels intern and re-yield the same instance for
repeated (target, bytes) shapes, so mutating one op would corrupt every
later occurrence.  The simulator only ever reads them.
"""

from __future__ import annotations

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dep in practice
    _np = None


class _Op:
    """Shared value semantics (repr/eq/hash over the slot fields)."""

    __slots__ = ()

    def _values(self):
        return tuple(getattr(self, name) for name in self.__slots__)

    def __repr__(self):
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"

    def __eq__(self, other):
        if type(other) is not type(self):
            return NotImplemented
        return self._values() == other._values()

    def __hash__(self):
        return hash((type(self).__name__,) + self._values())


class Load(_Op):
    """Blocking read: the thread stalls until the data returns.

    ``grouped`` loads are issued back-to-back before stalling (the
    loop-unrolling trick); the stall covers the slowest of them, modeled
    as one request of the combined size.  ``priority`` marks demand
    loads (NNZ/index fetches) arbitrated ahead of bulk DMA streams at
    the memory controller.
    """

    __slots__ = ("nbytes", "target_core", "tag", "grouped", "priority")

    def __init__(self, nbytes, target_core, tag, grouped=1, priority=True):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag
        self.grouped = grouped
        self.priority = priority


class SequentialAccess(_Op):
    """Blocking stall-on-use loop: ``n_rounds`` dependent line fetches.

    Each round issues ``instrs_per_round`` pipeline instructions, then a
    read of ``bytes_per_round`` that must complete before the next round
    begins.  This is the inner loop of the loop-unrolled kernel, where
    the round-trip latency appears ``n_rounds`` times on the critical
    path — the scaling killer of Section IV-B.
    """

    __slots__ = (
        "n_rounds", "bytes_per_round", "target_core", "instrs_per_round",
        "tag",
    )

    def __init__(self, n_rounds, bytes_per_round, target_core,
                 instrs_per_round, tag):
        self.n_rounds = n_rounds
        self.bytes_per_round = bytes_per_round
        self.target_core = target_core
        self.instrs_per_round = instrs_per_round
        self.tag = tag


class PhaseMarker(_Op):
    """Zero-cost marker separating kernel setup from steady state.

    Kernels emit one after their per-thread setup (binary search); the
    runner uses the latest marker to project steady-state throughput
    without the setup transient, which a down-scaled window would
    otherwise overweight by orders of magnitude.
    """

    __slots__ = ("name",)

    def __init__(self, name="setup_done"):
        self.name = name


class Compute(_Op):
    """Pipeline-only work of ``n_instrs`` single-issue instructions."""

    __slots__ = ("n_instrs", "tag")

    def __init__(self, n_instrs, tag="compute"):
        self.n_instrs = n_instrs
        self.tag = tag


class Store(_Op):
    """Fire-and-forget write: occupies issue slots and memory bandwidth
    but does not stall the thread (stall-on-use pipelines only stall on
    loads)."""

    __slots__ = ("nbytes", "target_core", "tag")

    def __init__(self, nbytes, target_core, tag):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


class AtomicUpdate(_Op):
    """Remote atomic read-modify-write of a row (fire-and-forget).

    Edge-parallel SpMM write-backs must be atomic because rows that
    straddle thread boundaries have multiple writers (Algorithm 2).  On
    PIUMA these land on the *target* core's near-memory atomic unit,
    which serializes updates to its slice and performs the RMW locally
    (one read + one write of the payload) — the "highly optimized
    remote atomic instructions" that make edge-parallel viable on PIUMA
    where it loses on CPUs.
    """

    __slots__ = ("nbytes", "target_core", "tag")

    def __init__(self, nbytes, target_core, tag):
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


#: Valid data paths of a :class:`DMAOp`.
DMA_KINDS = frozenset(("read", "write", "internal"))


class DMAOp(_Op):
    """Asynchronous DMA request routed to the thread's core engine.

    ``kind`` selects the data path: ``"read"``/``"write"`` move DRAM
    traffic to/from ``target_core``'s slice; ``"internal"`` occupies the
    engine only (scratchpad buffer init / copy-add).  The issuing thread
    pays ``dma_issue_instrs`` pipeline instructions and continues — only
    the end-of-kernel barrier waits for completions.
    """

    __slots__ = ("kind", "nbytes", "target_core", "tag")

    def __init__(self, kind, nbytes, target_core, tag):
        if kind not in DMA_KINDS:
            raise ValueError(f"unknown DMA kind {kind!r}")
        self.kind = kind
        self.nbytes = nbytes
        self.target_core = target_core
        self.tag = tag


#: Numeric op-kind codes of :class:`OpProgram`'s struct-of-arrays view.
#: ``read``/``write``/``internal`` DMA paths get distinct codes so the
#: replay engine can group descriptors without touching ``op.kind``.
OP_PHASE = 0
OP_COMPUTE = 1
OP_LOAD = 2
OP_SEQUENTIAL = 3
OP_STORE = 4
OP_ATOMIC = 5
OP_DMA_INTERNAL = 6
OP_DMA_READ = 7
OP_DMA_WRITE = 8


def _op_kind_code(op):
    cls = type(op)
    if cls is DMAOp:
        if op.kind == "internal":
            return OP_DMA_INTERNAL
        return OP_DMA_READ if op.kind == "read" else OP_DMA_WRITE
    if cls is Load:
        return OP_LOAD
    if cls is SequentialAccess:
        return OP_SEQUENTIAL
    if cls is Store:
        return OP_STORE
    if cls is AtomicUpdate:
        return OP_ATOMIC
    if cls is Compute:
        return OP_COMPUTE
    if cls is PhaseMarker:
        return OP_PHASE
    raise TypeError(f"unknown op {op!r}")


class OpProgram:
    """Struct-of-arrays compiled form of one thread's op stream.

    The vector engine (``repro.piuma.vector_engine``) replays programs
    instead of resuming generators: a *table* of the thread's unique op
    instances (the kernels intern their op shapes, so the table is tiny)
    plus a per-step ``codes`` array indexing into it.  The table itself
    is mirrored into parallel numpy arrays — op-kind code, payload
    bytes, target core, tag code — so batch passes (plan assembly,
    per-kind grouping, accounting summaries) read flat arrays instead of
    walking Python attributes.  When numpy is unavailable the arrays
    degrade to plain lists; semantics are unchanged.

    Programs are *static by contract*: a generator may be compiled into
    one only when its op stream does not depend on the values the
    simulator sends back or on other threads' execution timing (true
    for the static SpMM/dense kernels, not for the dynamic work-stealing
    kernel, which stays generator-driven under every engine).
    """

    __slots__ = (
        "table", "codes", "kind_codes", "nbytes", "target_cores",
        "tags", "tag_codes",
    )

    def __init__(self, table, codes):
        self.table = list(table)
        kinds = []
        nbytes = []
        targets = []
        tag_index = {}
        tags = []
        tag_codes = []
        for op in self.table:
            kind = _op_kind_code(op)
            kinds.append(kind)
            if kind == OP_SEQUENTIAL:
                nbytes.append(op.n_rounds * op.bytes_per_round)
            elif kind == OP_COMPUTE:
                nbytes.append(op.n_instrs)
            elif kind == OP_PHASE:
                nbytes.append(0)
            else:
                nbytes.append(op.nbytes)
            targets.append(getattr(op, "target_core", -1))
            tag = getattr(op, "tag", None)
            code = tag_index.get(tag)
            if code is None:
                code = tag_index[tag] = len(tags)
                tags.append(tag)
            tag_codes.append(code)
        self.tags = tuple(tags)
        if _np is not None:
            self.codes = _np.asarray(codes, dtype=_np.int32)
            self.kind_codes = _np.asarray(kinds, dtype=_np.int8)
            self.nbytes = _np.asarray(nbytes, dtype=_np.int64)
            self.target_cores = _np.asarray(targets, dtype=_np.int32)
            self.tag_codes = _np.asarray(tag_codes, dtype=_np.int16)
        else:
            self.codes = list(codes)
            self.kind_codes = kinds
            self.nbytes = nbytes
            self.target_cores = targets
            self.tag_codes = tag_codes

    def __len__(self):
        return len(self.codes)

    @classmethod
    def from_generator(cls, generator):
        """Compile a generator's op stream by draining it.

        Ops are deduplicated by *identity* (the kernels re-yield interned
        instances), so the table stays small and a plan computed for one
        table entry covers every occurrence.  The drained generator is
        consumed; callers pass a fresh one.
        """
        table = []
        index = {}
        index_get = index.get
        codes = []
        append = codes.append
        for op in generator:
            code = index_get(id(op))
            if code is None:
                code = index[id(op)] = len(table)
                table.append(op)
            append(code)
        return cls(table, codes)

    def replay(self):
        """Generator view: yields the op sequence (ignores sent values).

        Lets the non-vector engines run a compiled program unchanged —
        a program-backed thread is indistinguishable from its source
        generator, which is what keeps the differential oracle honest.
        """
        table = self.table
        for code in self.step_codes():
            yield table[code]

    def step_codes(self):
        """Per-step table indices as a plain Python list."""
        codes = self.codes
        if _np is not None and isinstance(codes, _np.ndarray):
            return codes.tolist()
        return list(codes)

    def op_sequence(self):
        """The full op stream as a list (tests and checked replay)."""
        table = self.table
        return [table[code] for code in self.step_codes()]


def dram_bytes(op):
    """DRAM-slice bytes one executed op charges (0 for pure-pipeline ops).

    The independent ledger the runtime sanitizer accumulates at
    ``check_level>=2``: summing this over every executed op must equal
    the slices' ``bytes_served`` total, byte for byte, or the engine's
    memory accounting has drifted.  Mirrors the per-handler accounting
    in ``repro.piuma.engine`` — an atomic RMW reads and writes its
    payload (2x), an internal DMA moves no DRAM traffic at all.
    """
    cls = type(op)
    if cls is Load:
        return op.nbytes
    if cls is SequentialAccess:
        return op.n_rounds * op.bytes_per_round
    if cls is Store:
        return op.nbytes
    if cls is AtomicUpdate:
        return 2 * op.nbytes
    if cls is DMAOp:
        return 0 if op.kind == "internal" else op.nbytes
    return 0
