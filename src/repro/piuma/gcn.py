"""Full-GCN timing on PIUMA (Figs 9 and 10).

Per layer: SpMM from the Equation 5 bandwidth model scaled by the DMA
kernel's achieved efficiency (the DES measures 85-90%; the paper quotes
"up to 88% of theoretical peak"), Dense MM from the scalar-pipeline
roofline, and glue (bias + activation) as one streaming pass over the
activations.  The same structure as the CPU/GPU models, so breakdowns
and speedups compare like for like.
"""

from __future__ import annotations

from repro.core.breakdown import ExecutionBreakdown, combine
from repro.piuma.analytical import spmm_model
from repro.piuma.densemm import dense_mm_time

#: Default achieved fraction of the analytical SpMM model; the DES
#: (tests/piuma) measures the DMA kernel at 0.85-0.95 of Equation 5.
DEFAULT_SPMM_EFFICIENCY = 0.88


def layer_breakdown(shape, config, spmm_efficiency=DEFAULT_SPMM_EFFICIENCY):
    """Per-phase time of one GCN layer on PIUMA, in nanoseconds."""
    if not 0 < spmm_efficiency <= 1:
        raise ValueError("spmm_efficiency must be in (0, 1]")
    model = spmm_model(shape.n_vertices, shape.n_edges, shape.in_dim, config)
    spmm_ns = model.time_ns / spmm_efficiency
    dense_ns = dense_mm_time(
        shape.n_vertices, shape.update_in_dim, shape.out_dim, config
    ).time_ns
    # Glue: bias add + activation, one read and one write of the output
    # activations, plus the STP-side kernel launches of the layer.
    glue_passes = 2 if shape.has_activation else 1
    glue_bytes = glue_passes * 2 * shape.n_vertices * shape.out_dim * (
        config.feature_bytes
    )
    glue_ns = glue_bytes / config.total_bandwidth_gbps + 3 * (
        config.launch_overhead_ns
    )
    return ExecutionBreakdown(spmm=spmm_ns, dense=dense_ns, glue=glue_ns)


def gcn_breakdown(workload, config, spmm_efficiency=DEFAULT_SPMM_EFFICIENCY):
    """Whole-model PIUMA :class:`ExecutionBreakdown` (ns) for a workload."""
    return combine(
        layer_breakdown(shape, config, spmm_efficiency)
        for shape in workload.layer_shapes()
    )
