"""Vertex-parallel SpMM kernel on PIUMA (the Section IV-B alternative).

Rows are divided across threads by *count*, so no binary search and no
atomic write-backs are needed (each row has exactly one writer) — but a
thread that draws hub rows processes far more edges than its peers, and
the kernel barrier waits for the slowest.  On skewed graphs this load
imbalance is why the paper picks edge-parallel for PIUMA, whose remote
atomics make the balanced division cheap.

The kernel otherwise mirrors the DMA-offload data path: grouped NNZ
line fetches, one DMA multiply-read per edge, one plain DMA write per
finished row.
"""

from __future__ import annotations

import numpy as np

from repro.piuma.degradation import thread_placements
from repro.piuma.kernels import ThreadWork
from repro.piuma.ops import DMAOp, Load, PhaseMarker
from repro.piuma.spmm_loop import as_int_list, nnz_line_core, owner_cores


def split_work_vertex(adj, config, window_edges):
    """Per-thread :class:`ThreadWork` for a vertex-parallel window.

    Threads own contiguous row ranges of near-equal *row count*
    (Section II-C's vertex-parallel division).  Each thread simulates a
    fraction of its own edges proportional to the global window — so a
    hub-heavy thread simulates proportionally more edges and the window
    exhibits the same imbalance as a full run.
    """
    n_threads = config.n_threads
    total_edges = adj.nnz
    fraction = min(1.0, window_edges / total_edges) if total_edges else 0.0
    placements = thread_placements(config)
    row_bounds = np.linspace(0, adj.n_rows, n_threads + 1).astype(np.int64)
    work = []
    for t in range(n_threads):
        row_start, row_end = int(row_bounds[t]), int(row_bounds[t + 1])
        lo = int(adj.indptr[row_start])
        hi = int(adj.indptr[row_end])
        owned = hi - lo
        take = int(round(owned * fraction))
        if take <= 0:
            continue
        stop = lo + take
        cols = adj.indices[lo:stop]
        rows = (
            np.searchsorted(
                adj.indptr, np.arange(lo, stop, dtype=np.int64), side="right"
            )
            - 1
        )
        core, mtp = placements[t]
        work.append(
            ThreadWork(core=core, mtp=mtp, cols=cols, rows=rows,
                       start_edge=lo)
        )
    return work


def vertex_parallel_thread(work, embedding_dim, config, shared=None):
    """Thread generator for the vertex-parallel kernel.

    No binary search (row ranges are assigned directly) and regular —
    not atomic — row write-backs.  Ops are interned like the other
    kernels; ``shared`` optionally spans the intern table across all
    threads of one invocation (see ``spmm_dma.dma_thread``).
    """
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    row_bytes = embedding_dim * config.feature_bytes

    yield PhaseMarker()

    col_cores = owner_cores(work.cols, n_cores, hashed)
    row_cores = owner_cores(work.rows, n_cores, hashed)
    rows = as_int_list(work.rows)
    if shared is None:
        shared = {}
    dma_init = shared.get("dma_init")
    if dma_init is None:
        dma_init = shared["dma_init"] = DMAOp(
            kind="internal", nbytes=0, target_core=0, tag="dma_init"
        )
    nnz_loads = shared.setdefault("nnz", {})    # (core, bytes) -> Load
    read_ops = shared.setdefault("read", {})    # core -> DMAOp
    write_ops = shared.setdefault("write", {})  # core -> DMAOp
    n_edges = len(rows)
    current_row = rows[0] if n_edges else -1
    current_core = row_cores[0] if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        nnz_key = (
            nnz_line_core(work.start_edge + begin, group, n_cores), nnz_bytes
        )
        op = nnz_loads.get(nnz_key)
        if op is None:
            op = nnz_loads[nnz_key] = Load(
                nbytes=nnz_bytes, target_core=nnz_key[0], tag="nnz", grouped=2
            )
        yield op
        for e in range(begin, stop):
            row = rows[e]
            if row != current_row:
                op = write_ops.get(current_core)
                if op is None:
                    op = write_ops[current_core] = DMAOp(
                        kind="write", nbytes=row_bytes,
                        target_core=current_core, tag="dma_write",
                    )
                yield op
                current_row = row
                current_core = row_cores[e]
            yield dma_init
            target = col_cores[e]
            op = read_ops.get(target)
            if op is None:
                op = read_ops[target] = DMAOp(
                    kind="read", nbytes=row_bytes, target_core=target,
                    tag="dma_read",
                )
            yield op
    if current_row >= 0:
        op = write_ops.get(current_core)
        if op is None:
            op = write_ops[current_core] = DMAOp(
                kind="write", nbytes=row_bytes, target_core=current_core,
                tag="dma_write",
            )
        yield op


#: Static op stream: safe to compile into an OpProgram (vector engine).
vertex_parallel_thread.program_safe = True
