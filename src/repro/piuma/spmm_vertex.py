"""Vertex-parallel SpMM kernel on PIUMA (the Section IV-B alternative).

Rows are divided across threads by *count*, so no binary search and no
atomic write-backs are needed (each row has exactly one writer) — but a
thread that draws hub rows processes far more edges than its peers, and
the kernel barrier waits for the slowest.  On skewed graphs this load
imbalance is why the paper picks edge-parallel for PIUMA, whose remote
atomics make the balanced division cheap.

The kernel otherwise mirrors the DMA-offload data path: grouped NNZ
line fetches, one DMA multiply-read per edge, one plain DMA write per
finished row.
"""

from __future__ import annotations

import numpy as np

from repro.piuma.kernels import ThreadWork
from repro.piuma.ops import DMAOp, Load, PhaseMarker
from repro.piuma.spmm_loop import nnz_line_core, owner_core


def split_work_vertex(adj, config, window_edges):
    """Per-thread :class:`ThreadWork` for a vertex-parallel window.

    Threads own contiguous row ranges of near-equal *row count*
    (Section II-C's vertex-parallel division).  Each thread simulates a
    fraction of its own edges proportional to the global window — so a
    hub-heavy thread simulates proportionally more edges and the window
    exhibits the same imbalance as a full run.
    """
    n_threads = config.n_threads
    total_edges = adj.nnz
    fraction = min(1.0, window_edges / total_edges) if total_edges else 0.0
    row_bounds = np.linspace(0, adj.n_rows, n_threads + 1).astype(np.int64)
    work = []
    for t in range(n_threads):
        row_start, row_end = int(row_bounds[t]), int(row_bounds[t + 1])
        lo = int(adj.indptr[row_start])
        hi = int(adj.indptr[row_end])
        owned = hi - lo
        take = int(round(owned * fraction))
        if take <= 0:
            continue
        stop = lo + take
        cols = adj.indices[lo:stop]
        rows = (
            np.searchsorted(
                adj.indptr, np.arange(lo, stop, dtype=np.int64), side="right"
            )
            - 1
        )
        core = t // config.threads_per_core
        mtp = (t % config.threads_per_core) // config.threads_per_mtp
        work.append(
            ThreadWork(core=core, mtp=mtp, cols=cols, rows=rows,
                       start_edge=lo)
        )
    return work


def vertex_parallel_thread(work, embedding_dim, config):
    """Thread generator for the vertex-parallel kernel.

    No binary search (row ranges are assigned directly) and regular —
    not atomic — row write-backs.
    """
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    row_bytes = embedding_dim * config.feature_bytes

    yield PhaseMarker()

    n_edges = len(work.cols)
    current_row = int(work.rows[0]) if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        yield Load(
            nbytes=nnz_bytes,
            target_core=nnz_line_core(work.start_edge + begin, group, n_cores),
            tag="nnz",
            grouped=2,
        )
        for e in range(begin, stop):
            row = int(work.rows[e])
            if row != current_row:
                yield DMAOp(
                    kind="write",
                    nbytes=row_bytes,
                    target_core=owner_core(current_row, n_cores, hashed),
                    tag="dma_write",
                )
                current_row = row
            vertex = int(work.cols[e])
            yield DMAOp(kind="internal", nbytes=0, target_core=0,
                        tag="dma_init")
            yield DMAOp(
                kind="read",
                nbytes=row_bytes,
                target_core=owner_core(vertex, n_cores, hashed),
                tag="dma_read",
            )
    if current_row >= 0:
        yield DMAOp(
            kind="write",
            nbytes=row_bytes,
            target_core=owner_core(current_row, n_cores, hashed),
            tag="dma_write",
        )
