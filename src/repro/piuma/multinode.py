"""Partition-aware multi-node scale-out over the sharded DES.

The paper characterizes GCN scalability up to what one simulated PIUMA
node can show; this module makes multi-node scale-out a *simulated*
scenario instead of the purely analytical treatment in
:mod:`repro.ext.distributed`.  A graph is sharded with
:mod:`repro.graphs.partition` (equal-vertex blocks, or the degree-aware
equal-edge-load blocks in the Accel-GCN lineage), every shard runs as
its own discrete-event task on one node's worth of hardware through the
ordinary sweep machinery (:func:`repro.runtime.run_sweep` — so shards
are checkpointed, retryable, and content-address-cached individually),
and the per-shard windows are assembled into an end-to-end bulk
synchronous estimate:

* **compute** — the slowest shard's projected SpMM time (all nodes
  start a layer together, so the straggler sets the phase length; the
  spread across shards *is* the load-imbalance cost a partition
  strategy pays);
* **halo exchange** — modeled as network ops on the inter-node tier of
  the HyperX: every shard ships one feature vector per *distinct*
  remote vertex it reads (deduplicated ghosts, what a real halo
  actually transfers), per-link volumes taken from the measured cut of
  the concrete partition, each node's send/recv serialized through its
  injection port plus one :attr:`~repro.piuma.config.PIUMAConfig.
  inter_node_latency_ns` round per active peer.

The Eq.5-derived DGAS aggregate
(:func:`repro.ext.distributed.piuma_multinode_spmm_time`) is the
analytical cross-check: a partitioned bulk-synchronous system pays cut
and imbalance costs the no-partition DGAS does not, and the tier-3
conformance envelope (:data:`repro.ext.distributed.MULTINODE_ENVELOPE`)
bounds the ratio between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.shard import aggregate_conserved, run_shards, shard_tasks

#: How much a degraded assembly widens the per-kernel Eq.5 envelope:
#: each failed shard's Eq.5 stand-in can pull the assembled time toward
#: the analytical model on either side, so both bounds relax by
#: ``1 + WIDENING * degraded_fraction``.
DEGRADED_ENVELOPE_WIDENING = 2.0


@dataclass(frozen=True)
class HaloFabric:
    """Inter-node network model of the halo exchange.

    One injection/ejection port per node at ``link_bandwidth_gbps``
    (GB/s == bytes/ns), ``latency_ns`` per message exchange with an
    active peer.  :meth:`from_config` takes both numbers from the
    PIUMA config's inter-node tier, so degradation or sweep overrides
    of the network flow straight into the halo price.
    """

    link_bandwidth_gbps: float
    latency_ns: float
    feature_bytes: int = 4

    @classmethod
    def from_config(cls, config):
        return cls(
            link_bandwidth_gbps=config.network_bandwidth_gbps,
            latency_ns=config.inter_node_latency_ns,
            feature_bytes=config.feature_bytes,
        )

    def exchange_ns(self, send_bytes, recv_bytes, peers):
        """Time one node spends in the halo phase.

        Full-duplex port: send and receive streams overlap, so the
        wire time is the larger of the two volumes, plus one latency
        per active peer (message startup is not pipelined across
        peers — conservative, and irrelevant once volumes dominate).
        """
        wire = max(send_bytes, recv_bytes) / self.link_bandwidth_gbps
        return wire + peers * self.latency_ns


@dataclass(frozen=True)
class MultinodeEstimate:
    """End-to-end multi-node SpMM assembled from per-shard DES windows.

    All times are per SpMM invocation (one GCN layer's aggregation) at
    the *simulated* (possibly down-scaled) graph size; use
    :attr:`scale_factor` to project to the full dataset.
    """

    dataset: str
    n_nodes: int
    strategy: str
    embedding_dim: int
    compute_ns: float          #: slowest shard (bulk-synchronous phase)
    comm_ns: float             #: halo exchange, max over nodes
    per_shard_ns: tuple        #: each shard's projected SpMM time
    shard_edges: tuple         #: each shard's owned edge count
    cut_edges: int             #: edges crossing shards (sum over links)
    total_edges: int           #: edges of the simulated graph
    halo_bytes: int            #: deduplicated ghost feature volume/layer
    send_bytes: tuple          #: per-node halo bytes sent
    recv_bytes: tuple          #: per-node halo bytes received
    balance: float             #: max shard edge load / mean
    conserved: dict            #: summed shard counters (exact)
    scale_factor: float = 1.0  #: full |E| / simulated |E|
    shard_sources: tuple = ()  #: each record's "source" provenance
    degraded_shards: int = 0   #: shards assembled from a fallback

    @property
    def time_ns(self):
        return self.compute_ns + self.comm_ns

    @property
    def comm_share(self):
        return self.comm_ns / self.time_ns if self.time_ns else 0.0

    @property
    def cut_fraction(self):
        return self.cut_edges / self.total_edges if self.total_edges else 0.0

    @property
    def full_time_ns(self):
        """Projection to the full dataset: steady-state throughput
        scaling, the same linear-in-edges projection the single-node
        windowed DES applies (``projected_time_ns``)."""
        return self.time_ns * self.scale_factor

    @property
    def degraded(self):
        """True when any shard was assembled from a fallback record."""
        return self.degraded_shards > 0

    def row(self):
        """Plain-JSON summary (bench columns, CLI tables)."""
        return {
            "dataset": self.dataset,
            "n_nodes": self.n_nodes,
            "strategy": self.strategy,
            "embedding_dim": self.embedding_dim,
            "compute_ns": self.compute_ns,
            "comm_ns": self.comm_ns,
            "time_ns": self.time_ns,
            "full_time_ns": self.full_time_ns,
            "comm_share": self.comm_share,
            "cut_edges": self.cut_edges,
            "cut_fraction": self.cut_fraction,
            "halo_bytes": self.halo_bytes,
            "balance": self.balance,
            "conserved": dict(self.conserved),
            "degraded_shards": self.degraded_shards,
            "shard_sources": list(self.shard_sources),
        }


def assemble_multinode(records, *, dataset, strategy, embedding_dim,
                       fabric, scale_factor=1.0):
    """Assemble shard records into a :class:`MultinodeEstimate`.

    ``records`` are the submission-ordered outputs of the shard tasks
    of one run (each carrying ``"shard"`` geometry and ``"conserved"``
    counters — fallback records qualify, their Eq.5 time standing in
    for the lost window).
    """
    if not records:
        raise ValueError("cannot assemble zero shard records")
    n_nodes = records[0]["shard"]["n_shards"]
    if len(records) != n_nodes:
        raise ValueError(
            f"expected {n_nodes} shard records, got {len(records)}"
        )
    per_shard_ns = tuple(
        float(r["projected_time_ns"]) for r in records
    )
    shard_edges = tuple(int(r["shard"]["edges"]) for r in records)
    total_edges = sum(shard_edges)
    cut_edges = sum(int(r["shard"]["cut_edges"]) for r in records)

    feature = embedding_dim * fabric.feature_bytes
    send = [0] * n_nodes
    recv = [0] * n_nodes
    peers = [set() for _ in range(n_nodes)]
    for r in records:
        p = r["shard"]["shard"]
        for q, ghosts in enumerate(r["shard"]["ghosts_by_owner"]):
            if q == p or not ghosts:
                continue
            volume = ghosts * feature
            recv[p] += volume
            send[q] += volume
            peers[p].add(q)
            peers[q].add(p)
    comm_ns = max(
        (fabric.exchange_ns(send[p], recv[p], len(peers[p]))
         for p in range(n_nodes)),
        default=0.0,
    ) if n_nodes > 1 else 0.0

    mean_edges = total_edges / n_nodes if n_nodes else 0.0
    balance = (max(shard_edges) / mean_edges) if mean_edges > 0 else 1.0
    sources = tuple(r.get("source", "simulation") for r in records)
    return MultinodeEstimate(
        dataset=dataset,
        n_nodes=n_nodes,
        strategy=strategy,
        embedding_dim=embedding_dim,
        compute_ns=max(per_shard_ns),
        comm_ns=comm_ns,
        per_shard_ns=per_shard_ns,
        shard_edges=shard_edges,
        cut_edges=cut_edges,
        total_edges=total_edges,
        halo_bytes=sum(send),
        send_bytes=tuple(send),
        recv_bytes=tuple(recv),
        balance=balance,
        conserved=aggregate_conserved(records),
        scale_factor=scale_factor,
        shard_sources=sources,
        degraded_shards=sum(1 for s in sources if s != "simulation"),
    )


def multinode_verdict(estimate, config, kernel="dma"):
    """Envelope verdict of one assembled estimate, degradation-aware.

    A fully simulated assembly is judged against the per-kernel Eq.5
    DGAS envelope (:data:`repro.ext.distributed.MULTINODE_ENVELOPES`)
    exactly as before: ``"ok"`` inside, ``"violated"`` outside.  When
    shards were assembled from fallback records, each one substitutes
    an analytical Eq.5 time for a DES window, so the envelope *widens*
    by ``1 + DEGRADED_ENVELOPE_WIDENING * degraded_fraction`` on both
    sides and the in-bounds verdict is the explicit ``"degraded"`` —
    the run is answerable, but its number must not be mistaken for a
    clean one.

    Returns ``{"verdict", "ratio", "envelope", "degraded_shards",
    "kernel"}`` (plain JSON).
    """
    from repro.ext.distributed import (
        MULTINODE_ENVELOPES,
        piuma_multinode_spmm_time,
    )

    low, high = MULTINODE_ENVELOPES[kernel]
    dgas_ns = piuma_multinode_spmm_time(
        estimate.conserved["rows"], estimate.total_edges,
        estimate.embedding_dim, config, estimate.n_nodes,
    )
    ratio = estimate.time_ns / dgas_ns if dgas_ns > 0 else 0.0
    widened = 1.0
    if estimate.degraded_shards:
        widened += (DEGRADED_ENVELOPE_WIDENING
                    * estimate.degraded_shards / estimate.n_nodes)
        low, high = low / widened, high * widened
    in_bounds = low <= ratio <= high
    if estimate.degraded_shards:
        verdict = "degraded" if in_bounds else "violated"
    else:
        verdict = "ok" if in_bounds else "violated"
    return {
        "verdict": verdict,
        "ratio": ratio,
        "dgas_ns": dgas_ns,
        "envelope": [low, high],
        "widened": widened,
        "degraded_shards": estimate.degraded_shards,
        "kernel": kernel,
    }


def run_multinode(dataset, n_nodes, strategy="block", embedding_dim=None,
                  kernel="dma", max_vertices=16384, seed=0,
                  window_edges=None, config_overrides=None,
                  sweep_kwargs=None, checkpoint_dir=None, resume=False,
                  recovery=None, task_filter=None):
    """Shard, simulate, and assemble one multi-node point.

    Each shard is a :class:`~repro.runtime.shard.ShardTask` on one
    node's worth of hardware (the default config's 8-core die unless
    ``config_overrides`` says otherwise), executed through
    :func:`repro.runtime.run_sweep` — pass ``sweep_kwargs`` to thread
    workers / cache / timeout / retries / on_error / engine /
    scheduler / degradation / check_level through unchanged.
    ``checkpoint_dir`` arms per-shard checkpointing (a manifest keyed
    by the shard tasks' identities; ``resume=True`` loads it first), so
    a killed multi-node run restarts from the shards it completed.

    ``recovery`` (a :class:`~repro.runtime.shard.ShardRecovery`) arms
    the per-shard failure model instead: bounded retries per failure
    domain, hedged re-execution of stragglers, and — under its default
    ``"fallback"`` policy — *partial assembly*: a permanently failed
    shard degrades to its Eq.5 estimate with ``"source":
    "shard_fallback"`` provenance, the estimate's
    :attr:`~MultinodeEstimate.degraded_shards` counts it, and
    :func:`multinode_verdict` widens the envelope accordingly; the run
    completes instead of raising.  The shard execution then goes
    through :func:`~repro.runtime.shard.run_shards` (``workers`` /
    ``cache`` / ``engine`` / ``scheduler`` / ``check_level`` /
    ``degradation`` are honored from ``sweep_kwargs``; the remaining
    sweep knobs are superseded by the recovery spec).

    ``task_filter`` (when given) maps the built shard task list to the
    one actually executed — the chaos orchestrator's injection hook.

    Returns ``(estimate, report)``: the assembled
    :class:`MultinodeEstimate` (with :attr:`~MultinodeEstimate.
    scale_factor` projecting to the full dataset size) and the
    underlying :class:`~repro.runtime.runner.SweepReport` (or
    :class:`~repro.runtime.shard.ShardRunReport` under ``recovery``).
    """
    from repro.graphs.datasets import get_dataset
    from repro.piuma.config import PIUMAConfig
    from repro.runtime.checkpoint import SweepCheckpoint
    from repro.runtime.runner import run_sweep

    spec = get_dataset(dataset)
    if embedding_dim is None:
        embedding_dim = spec.feature_dim
    overrides = dict(config_overrides or {})
    tasks = shard_tasks(
        dataset, embedding_dim, n_nodes, strategy=strategy, kernel=kernel,
        max_vertices=max_vertices, seed=seed, window_edges=window_edges,
        **overrides,
    )
    if task_filter is not None:
        tasks = list(task_filter(tasks))
    kwargs = dict(sweep_kwargs or {})
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = SweepCheckpoint.for_tasks(tasks, directory=checkpoint_dir)
        kwargs.update(checkpoint=checkpoint, resume=resume)
    if recovery is not None:
        for knob in ("check_level", "degradation", "scheduler", "engine"):
            value = kwargs.pop(knob, None)
            if value is not None:
                method = f"with_{knob}"
                tasks = [getattr(task, method)(value)
                         if hasattr(task, method) else task
                         for task in tasks]
        report = run_shards(
            tasks, recovery=recovery,
            workers=kwargs.get("workers"), cache=kwargs.get("cache"),
            checkpoint=checkpoint, resume=resume,
            progress=kwargs.get("progress"),
        )
    else:
        report = run_sweep(tasks, **kwargs)
    if checkpoint is not None and not report.failures:
        checkpoint.discard()
    records = [r for r in report.records if r and "shard" in r]
    if len(records) != n_nodes:
        failed = n_nodes - len(records)
        raise RuntimeError(
            f"{failed} of {n_nodes} shard(s) failed without a fallback "
            "record; re-run with on_error='fallback' or a ShardRecovery "
            "to assemble anyway"
        )
    config = PIUMAConfig(**overrides)
    simulated_edges = sum(r["shard"]["edges"] for r in records)
    scale = (spec.n_edges / simulated_edges
             if 0 < simulated_edges < spec.n_edges else 1.0)
    estimate = assemble_multinode(
        records,
        dataset=dataset,
        strategy=strategy,
        embedding_dim=embedding_dim,
        fabric=HaloFabric.from_config(config),
        scale_factor=scale,
    )
    return estimate, report


def strong_scaling(dataset, nodes=(1, 2, 4, 8), strategies=("block",),
                   embedding_dim=None, kernel="dma", max_vertices=16384,
                   seed=0, window_edges=None, config_overrides=None,
                   sweep_kwargs=None, checkpoint_dir=None, resume=False,
                   recovery=None):
    """Strong-scaling study: fixed problem, growing node count.

    Runs :func:`run_multinode` for every (strategy, node-count) pair and
    returns ``{"rows": [...], "estimates": {...}}`` where each row adds
    speedup (vs the same strategy's 1-node time — or its smallest node
    count when 1 is not swept), parallel efficiency, and the Eq.5 DGAS
    cross-check ratio.  Shard records are content-addressed, so
    repeated or overlapping studies re-simulate nothing.
    """
    from repro.ext.distributed import piuma_multinode_spmm_time
    from repro.graphs.datasets import get_dataset
    from repro.piuma.config import PIUMAConfig

    spec = get_dataset(dataset)
    if embedding_dim is None:
        embedding_dim = spec.feature_dim
    config = PIUMAConfig(**dict(config_overrides or {}))

    rows = []
    estimates = {}
    for strategy in strategies:
        base_time = None
        for n in sorted(nodes):
            estimate, report = run_multinode(
                dataset, n, strategy=strategy, embedding_dim=embedding_dim,
                kernel=kernel, max_vertices=max_vertices, seed=seed,
                window_edges=window_edges, config_overrides=config_overrides,
                sweep_kwargs=sweep_kwargs, checkpoint_dir=checkpoint_dir,
                resume=resume, recovery=recovery,
            )
            if base_time is None:
                base_time = estimate.time_ns
            # Speedup is relative to the smallest swept node count
            # (conventionally 1), so speedup == 1.0 there and the ideal
            # curve is n / min(nodes).
            speedup = base_time / estimate.time_ns if estimate.time_ns else 0.0
            dgas_ns = piuma_multinode_spmm_time(
                estimate.conserved["rows"], estimate.total_edges,
                embedding_dim, config, n,
            )
            row = estimate.row()
            row["speedup"] = speedup
            row["efficiency"] = speedup / n if n else 0.0
            row["dgas_ns"] = dgas_ns
            row["dgas_ratio"] = (estimate.time_ns / dgas_ns
                                 if dgas_ns > 0 else 0.0)
            row["cache_hits"] = report.cache_hits
            row["failures"] = len(report.failures)
            row["envelope_verdict"] = multinode_verdict(
                estimate, config, kernel=kernel,
            )
            if recovery is not None:
                row["recovery"] = dict(
                    getattr(report, "recovery", None) or {}
                )
            rows.append(row)
            estimates[(strategy, n)] = estimate
    return {"rows": rows, "estimates": estimates}


def scaling_figure(rows, nodes):
    """ASCII strong-scaling figure: speedup per strategy over nodes."""
    from repro.report.figures import series_chart

    strategies = []
    for row in rows:
        if row["strategy"] not in strategies:
            strategies.append(row["strategy"])
    series = []
    for strategy in strategies:
        by_nodes = {r["n_nodes"]: r["speedup"] for r in rows
                    if r["strategy"] == strategy}
        series.append(
            (f"speedup[{strategy}]", [by_nodes.get(n, 0.0) for n in nodes])
        )
    series.append(("ideal", [n / min(nodes) for n in nodes]))
    return series_chart(list(nodes), series, x_label="nodes",
                        value_format="{:.2f}")
