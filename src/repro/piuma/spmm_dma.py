"""DMA-offload SpMM kernel (the contribution of Section IV-B).

Per edge, the MTP thread only (a) reads the NNZ (blocking, grouped with
its neighbors' indices into one line fetch) and (b) enqueues DMA
descriptors: a buffer initialization with the edge weight (engine-only),
a multiply-read of the neighbor's feature vector fused with the
copy-add into the scratchpad accumulation buffer, and — at row
boundaries — an atomic write-back of the finished embedding.  The DMA
engine streams whole vectors, so the thread's pipeline is free and the
only blocking latency left is the NNZ read; with enough threads per MTP
even that disappears from the critical path, giving the latency
insensitivity of Fig 6/7.
"""

from __future__ import annotations

from repro.piuma.ops import AtomicUpdate, DMAOp, Load, PhaseMarker
from repro.piuma.spmm_loop import (
    as_int_list,
    binary_search_op,
    nnz_line_core,
    owner_cores,
)


def dma_thread(work, embedding_dim, config, shared=None):
    """Thread generator for the DMA-offload kernel.

    Ops are interned: the same immutable op is re-yielded for every
    repeated (target, bytes) shape instead of being rebuilt per edge.
    ``shared`` is an optional intern table spanning all threads of one
    kernel invocation (ops are immutable, so cross-thread sharing is
    safe) — it shrinks the op population from O(threads) to O(cores),
    which both cuts construction cost and lets the engine's per-op
    execution-plan cache stay tiny.
    """
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    row_bytes = embedding_dim * config.feature_bytes

    yield binary_search_op(work, config)
    yield PhaseMarker()

    col_cores = owner_cores(work.cols, n_cores, hashed)
    row_cores = owner_cores(work.rows, n_cores, hashed)
    rows = as_int_list(work.rows)
    if shared is None:
        shared = {}
    # Buffer init with the vectorized edge weight: descriptor overhead
    # only, no DRAM traffic — one instance covers every edge.
    dma_init = shared.get("dma_init")
    if dma_init is None:
        dma_init = shared["dma_init"] = DMAOp(
            kind="internal", nbytes=0, target_core=0, tag="dma_init"
        )
    nnz_loads = shared.setdefault("nnz", {})    # (core, bytes) -> Load
    read_ops = shared.setdefault("read", {})    # core -> DMAOp
    atomic_ops = shared.setdefault("atomic", {})  # core -> AtomicUpdate
    n_edges = len(rows)
    current_row = rows[0] if n_edges else -1
    current_core = row_cores[0] if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        nnz_key = (
            nnz_line_core(work.start_edge + begin, group, n_cores), nnz_bytes
        )
        op = nnz_loads.get(nnz_key)
        if op is None:
            op = nnz_loads[nnz_key] = Load(
                nbytes=nnz_bytes, target_core=nnz_key[0], tag="nnz", grouped=2
            )
        yield op
        for e in range(begin, stop):
            row = rows[e]
            if row != current_row:
                op = atomic_ops.get(current_core)
                if op is None:
                    op = atomic_ops[current_core] = AtomicUpdate(
                        nbytes=row_bytes, target_core=current_core,
                        tag="atomic_write",
                    )
                yield op
                current_row = row
                current_core = row_cores[e]
            yield dma_init
            # Multiply-read of the neighbor feature vector, fused with
            # the scratchpad copy-add.
            target = col_cores[e]
            op = read_ops.get(target)
            if op is None:
                op = read_ops[target] = DMAOp(
                    kind="read", nbytes=row_bytes, target_core=target,
                    tag="dma_read",
                )
            yield op
    if current_row >= 0:
        op = atomic_ops.get(current_core)
        if op is None:
            op = atomic_ops[current_core] = AtomicUpdate(
                nbytes=row_bytes, target_core=current_core, tag="atomic_write"
            )
        yield op


#: Static op stream: safe to compile into an OpProgram (vector engine).
dma_thread.program_safe = True
