"""DMA-offload SpMM kernel (the contribution of Section IV-B).

Per edge, the MTP thread only (a) reads the NNZ (blocking, grouped with
its neighbors' indices into one line fetch) and (b) enqueues DMA
descriptors: a buffer initialization with the edge weight (engine-only),
a multiply-read of the neighbor's feature vector fused with the
copy-add into the scratchpad accumulation buffer, and — at row
boundaries — an atomic write-back of the finished embedding.  The DMA
engine streams whole vectors, so the thread's pipeline is free and the
only blocking latency left is the NNZ read; with enough threads per MTP
even that disappears from the critical path, giving the latency
insensitivity of Fig 6/7.
"""

from __future__ import annotations

from repro.piuma.ops import AtomicUpdate, DMAOp, Load, PhaseMarker
from repro.piuma.spmm_loop import binary_search_op, nnz_line_core, owner_core


def dma_thread(work, embedding_dim, config):
    """Thread generator for the DMA-offload kernel."""
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    row_bytes = embedding_dim * config.feature_bytes

    yield binary_search_op(work, config)
    yield PhaseMarker()

    n_edges = len(work.cols)
    current_row = int(work.rows[0]) if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        yield Load(
            nbytes=nnz_bytes,
            target_core=nnz_line_core(work.start_edge + begin, group, n_cores),
            tag="nnz",
            grouped=2,
        )
        for e in range(begin, stop):
            row = int(work.rows[e])
            if row != current_row:
                yield AtomicUpdate(
                    nbytes=row_bytes,
                    target_core=owner_core(current_row, n_cores, hashed),
                    tag="atomic_write",
                )
                current_row = row
            vertex = int(work.cols[e])
            # Buffer init with the vectorized edge weight: descriptor
            # overhead only, no DRAM traffic.
            yield DMAOp(kind="internal", nbytes=0, target_core=0, tag="dma_init")
            # Multiply-read of the neighbor feature vector, fused with
            # the scratchpad copy-add.
            yield DMAOp(
                kind="read",
                nbytes=row_bytes,
                target_core=owner_core(vertex, n_cores, hashed),
                tag="dma_read",
            )
    if current_row >= 0:
        yield AtomicUpdate(
            nbytes=row_bytes,
            target_core=owner_core(current_row, n_cores, hashed),
            tag="atomic_write",
        )
