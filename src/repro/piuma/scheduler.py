"""Event-scheduler backends for the DES main loops.

The engine keeps one queued entry per runnable thread, each a
``(when, seq, idx, value)`` tuple.  Tuple comparison gives the global
event order: earliest ``when`` first, ties broken by the strictly
increasing sequence number (FIFO among simultaneous events).  Every
scheduler backend must pop entries in exactly that total order — the
engines' bit-identity contract (DESIGN.md, "Host performance") rests
on it.

Two backends implement the same ``push`` / ``pop`` / ``peek`` /
``stranded`` surface:

``HeapScheduler``
    A thin wrapper over :mod:`heapq` on a plain list.  This is the
    original backend; the fast-path loop binds the underlying list
    directly and keeps its fused ``heappushpop`` switch.

``CalendarQueue``
    A calendar queue (R. Brown, CACM 1988): a power-of-two ring of
    "day" buckets indexed by quantized timestamp, ``bucket(when) =
    int(when * inv_width) & mask``.  Pops scan forward from a cursor;
    because DES pops are monotone in ``when``, the head is almost
    always within a probe or two of the cursor, making both push and
    pop O(1) amortized regardless of queue size.  Three mechanisms
    keep it honest:

    * **FIFO-within-bucket ordering** — buckets are kept sorted
      ascending on the *full* entry tuple (``insort`` on the rare
      out-of-order push, plain append otherwise), so equal-``when``
      entries pop in sequence order and the ``(when, seq)`` total
      order is preserved exactly.
    * **Lazy overflow spill** — entries landing a full ring-revolution
      ("year") or more ahead of the cursor go to a small binary heap
      instead of aliasing a near-term bucket; they migrate back into
      the ring as the cursor's year advances.
    * **Dynamic width resizing** — :meth:`retune` re-fits the bucket
      width to the observed inter-event deltas of the *queued
      population* (span / population), rebuilding the ring when the
      fitted geometry drifts more than 2x.  A rebuild reinserts the
      sorted entry list, so it is result-transparent.

Correctness does not depend on the geometry: a mis-sized ring only
costs probes.  Bucket qualification uses the same ``int(when *
inv_width)`` product as bucket assignment, so an entry can never be
skipped by float rounding at a bucket boundary.
"""

from __future__ import annotations

import heapq
from bisect import insort

__all__ = ["SCHEDULERS", "HeapScheduler", "CalendarQueue", "make_scheduler"]

#: Valid ``PIUMAConfig.scheduler`` values.
SCHEDULERS = ("heap", "calendar")


def make_scheduler(name):
    """Instantiate the scheduler backend named by ``PIUMAConfig.scheduler``."""
    if name == "calendar":
        return CalendarQueue()
    if name == "heap":
        return HeapScheduler()
    raise ValueError(
        f"unknown scheduler backend {name!r}; expected one of {SCHEDULERS}"
    )


class HeapScheduler:
    """Binary-heap backend: :mod:`heapq` over a plain entry list.

    The fast-path engine loop binds :attr:`entries` directly and keeps
    its fused ``heappushpop`` switch; this class exists so the
    reference loop and the sanitizer talk to both backends through one
    surface.
    """

    __slots__ = ("entries",)

    def __init__(self):
        self.entries = []

    def push(self, entry):
        heapq.heappush(self.entries, entry)

    def pop(self):
        return heapq.heappop(self.entries)

    def peek(self):
        return self.entries[0]

    def stranded(self):
        """Entries physically present — equals ``len`` for this backend."""
        return len(self.entries)

    def __len__(self):
        return len(self.entries)

    def __bool__(self):
        return bool(self.entries)


class CalendarQueue:
    """Calendar-queue backend (see the module docstring for the design).

    Parameters
    ----------
    width:
        Initial bucket width in simulated ns.  :meth:`retune` re-fits
        it from observed deltas; the starting value only matters until
        the first retune.
    min_buckets / max_buckets:
        Power-of-two bounds on the ring size.

    Attributes
    ----------
    resizes:
        Ring rebuilds performed (growth or retune).
    spills:
        Entries diverted to the overflow heap by :meth:`push`.
    """

    __slots__ = (
        "buckets", "n_buckets", "mask", "width", "inv_width",
        "cur", "ring_size", "overflow", "year_end",
        "min_buckets", "max_buckets", "resizes", "spills",
    )

    #: Mean entries per bucket :meth:`retune` aims for.  2 keeps probe
    #: counts near 1 while bounding the ring at ~population/2 buckets.
    TARGET_OCCUPANCY = 2.0

    def __init__(self, width=1.0, min_buckets=16, max_buckets=1 << 16):
        if width <= 0.0:
            raise ValueError("bucket width must be positive")
        if min_buckets & (min_buckets - 1) or max_buckets & (max_buckets - 1):
            raise ValueError("bucket counts must be powers of two")
        self.min_buckets = min_buckets
        self.max_buckets = max_buckets
        self.n_buckets = min_buckets
        self.mask = min_buckets - 1
        self.buckets = [[] for _ in range(min_buckets)]
        self.width = float(width)
        self.inv_width = 1.0 / self.width
        self.cur = 0
        #: First absolute bucket *beyond* the ring's horizon: pushes at
        #: or past it spill to the overflow heap instead of aliasing a
        #: near-term ring slot.
        self.year_end = min_buckets
        self.ring_size = 0
        self.overflow = []
        self.resizes = 0
        self.spills = 0

    # -- core surface --------------------------------------------------------

    def push(self, entry):
        """Insert ``entry``; FIFO among equal ``when`` (seq in tuple)."""
        when = entry[0]
        ab = int(when * self.inv_width)
        if ab >= self.year_end:
            heapq.heappush(self.overflow, entry)
            self.spills += 1
            return
        if ab < self.cur:
            # Defensive for non-monotone users (unit tests): a push
            # behind the cursor pulls the cursor back so the scan
            # revisits it.  The engine's pops are monotone, so this
            # never fires there.
            self.cur = ab
        b = self.buckets[ab & self.mask]
        # Full-tuple comparison: equal-`when` ties must order by seq
        # (comparison never reaches the payload — seq is unique).
        if b and entry < b[-1]:
            insort(b, entry)
        else:
            b.append(entry)
        self.ring_size += 1
        if (self.ring_size > self.n_buckets << 1
                and self.n_buckets < self.max_buckets):
            self._rebuild(self.width, self.n_buckets << 1)

    def pop(self):
        """Remove and return the globally minimal entry."""
        b, entry = self._seek()
        del b[0]
        self.ring_size -= 1
        return entry

    def peek(self):
        """The globally minimal entry, without removing it."""
        return self._seek()[1]

    def stranded(self):
        """Entries physically present in ring + overflow.

        Cross-checks the O(1) size counters: a hot loop that corrupts
        ``ring_size`` shows up as ``stranded() != len(queue)``, which
        the ``scheduler-drained`` invariant asserts post-run.
        """
        return sum(len(b) for b in self.buckets) + len(self.overflow)

    def __len__(self):
        return self.ring_size + len(self.overflow)

    def __bool__(self):
        return bool(self.ring_size or self.overflow)

    # -- ring maintenance ----------------------------------------------------

    def _seek(self):
        """Advance the cursor to the head bucket; returns ``(bucket, entry)``.

        The scan probes ring slots forward from the cursor.  A bucket's
        first entry qualifies only if it belongs to day ``i`` or
        earlier (``int(when * inv_width) <= i`` — the exact product
        used by assignment, so boundary rounding cannot skip it);
        later-year aliases in the same slot stay queued.  Crossing
        ``year_end`` migrates due overflow entries first; a fruitless
        full revolution jumps straight to the global minimum.
        """
        if not self.ring_size:
            if not self.overflow:
                raise IndexError("pop from an empty CalendarQueue")
            ab = int(self.overflow[0][0] * self.inv_width)
            self.cur = ab
            self._migrate(ab + self.n_buckets)
        buckets = self.buckets
        mask = self.mask
        inv_width = self.inv_width
        i = self.cur
        budget = self.n_buckets
        while True:
            if i >= self.year_end:
                self._migrate(i + self.n_buckets)
            b = buckets[i & mask]
            if b:
                entry = b[0]
                if int(entry[0] * inv_width) <= i:
                    self.cur = i
                    return b, entry
            i += 1
            budget -= 1
            if budget < 0:
                i = self._jump_min()
                budget = self.n_buckets


    def _jump_min(self):
        """Point the cursor at the ring's global minimum; returns its day.

        Only called with a non-empty ring.  Ring entries always precede
        overflow entries (overflow holds ``day >= year_end``; ring
        holds ``day < year_end``), so the ring minimum is the global
        minimum.
        """
        best = None
        for b in self.buckets:
            if b and (best is None or b[0] < best):
                best = b[0]
        ab = int(best[0] * self.inv_width)
        self.cur = ab
        return ab

    def _migrate(self, horizon):
        """Advance ``year_end`` to ``horizon``, spilling overflow back in.

        Lazy half of the overflow mechanism: entries whose day has come
        within the new horizon rejoin the ring (heap pops arrive in
        ``(when, seq)`` order, so appends preserve FIFO within each
        bucket).
        """
        overflow = self.overflow
        inv_width = self.inv_width
        buckets = self.buckets
        mask = self.mask
        heappop = heapq.heappop
        moved = 0
        while overflow and int(overflow[0][0] * inv_width) < horizon:
            entry = heappop(overflow)
            b = buckets[int(entry[0] * inv_width) & mask]
            if b and entry < b[-1]:
                insort(b, entry)
            else:
                b.append(entry)
            moved += 1
        self.ring_size += moved
        self.year_end = horizon

    def retune(self):
        """Re-fit bucket width and count to the queued population.

        Estimates the mean inter-event delta as ``span / (population -
        1)`` over the currently queued entries and targets
        :data:`TARGET_OCCUPANCY` entries per bucket.  Rebuilds only
        when the fitted geometry drifts by more than 2x (hysteresis —
        steady-state workloads rebuild once and settle).  Returns
        ``True`` when a rebuild happened, so callers holding ring
        internals in locals know to re-read them.  Result-transparent:
        the entry population and its total order are unchanged.
        """
        size = self.ring_size + len(self.overflow)
        if size < 8:
            return False
        lo = hi = None
        for b in self.buckets:
            if b:
                first = b[0][0]
                last = b[-1][0]
                if lo is None or first < lo:
                    lo = first
                if hi is None or last > hi:
                    hi = last
        for entry in self.overflow:
            when = entry[0]
            if lo is None or when < lo:
                lo = when
            if hi is None or when > hi:
                hi = when
        span = hi - lo
        if span <= 0.0:
            return False
        # Floor the width so absolute day numbers stay far inside
        # float-exact integer range (day ~ when/width < 2**50): the
        # assignment product must round-trip through int() losslessly.
        width = max(
            span / (size - 1) * self.TARGET_OCCUPANCY,
            hi * 2.0 ** -50,
            1e-9,
        )
        n_buckets = self.min_buckets
        while (n_buckets * self.TARGET_OCCUPANCY < size
                and n_buckets < self.max_buckets):
            n_buckets <<= 1
        if n_buckets == self.n_buckets and 0.5 <= width / self.width <= 2.0:
            return False
        self._rebuild(width, n_buckets)
        return True

    def _rebuild(self, width, n_buckets):
        """Re-bucket every queued entry under a new geometry.

        Entries are drained, sorted (full tuples — the global order),
        and reinserted: ascending appends keep each bucket sorted and
        leave the rebuilt overflow a valid heap.  The cursor lands on
        the minimum entry's day, so the next pop is exact.
        """
        entries = [entry for b in self.buckets for entry in b]
        entries.extend(self.overflow)
        entries.sort()
        self.width = float(width)
        self.inv_width = 1.0 / self.width
        self.n_buckets = n_buckets
        self.mask = n_buckets - 1
        self.buckets = [[] for _ in range(n_buckets)]
        self.overflow = []
        self.resizes += 1
        if not entries:
            self.cur = 0
            self.year_end = n_buckets
            self.ring_size = 0
            return
        inv_width = self.inv_width
        cur = int(entries[0][0] * inv_width)
        year_end = cur + n_buckets
        self.cur = cur
        self.year_end = year_end
        buckets = self.buckets
        mask = self.mask
        overflow = self.overflow
        ring = 0
        for entry in entries:
            if int(entry[0] * inv_width) >= year_end:
                overflow.append(entry)
            else:
                buckets[int(entry[0] * inv_width) & mask].append(entry)
                ring += 1
        self.ring_size = ring
