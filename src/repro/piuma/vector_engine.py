"""Compiled-program replay main loop (``PIUMAConfig.engine="vector"``).

The fast path (``engine.py:_run_fast``) still pays, per event, a
generator resumption, a type-table dispatch, a handler frame, and the
attribute chains inside the handler.  For the static SpMM/dense kernels
the entire op stream of a thread is known before ``run()`` — the kernels
compile it into an :class:`~repro.piuma.ops.OpProgram` (struct-of-arrays
codes over an interned op table).  This loop replays those programs:

* **Plan compilation** (at ``spawn_program`` time): every unique
  ``(op, core, mtp)`` triple is compiled to a replay *closure*
  ``fn(now, live) -> (resume, completion)`` whose default arguments
  pre-bind everything the handlers would look up per event — resource
  objects (pipeline, DRAM slice, raw timeline lists, DMA engine,
  injection port, atomic unit), memoized network latencies, and every
  precomputed float (pipeline and service durations, stripe shares,
  staging limits) — built from the *exact* expressions of the
  reference handlers, so results stay bit-identical.  Striped-DMA
  closures are additionally source-generated per target shape with the
  stripe loop unrolled (:func:`_dma_factory`).  DMA timing comes from
  (and fills) the per-(op, core) plan cache the dispatch closure in
  ``engine.py`` already maintains.
* **Replay** (the hot loop): per event, ``prog[pc](now, live)`` — no
  generator, no dispatch ladder, no handler attribute chains, no plan
  lookup; every constant is a ``LOAD_FAST``.
* **Deferred counters** (batch accounting): monotone counters the run
  never *reads* (``units_served``/``requests``/``bytes_served``/
  ``ops``/``bytes_moved``/tag ``count``/``bytes``) are dropped from the
  per-event bodies and settled once after the loop, from per-plan
  execution counts (``numpy.bincount`` over each program's executed
  code prefix).  This is exact, not approximate: every deferred addend
  is validated integral at assembly, and sums of integers below 2**53
  are exact in IEEE doubles *in any order*, so the batched totals are
  bit-identical to the reference's per-event accumulation.  One
  non-integral addend anywhere (fractional stripe shares on degraded
  topologies), or any generator-driven thread in the run, flips the
  whole run to live per-event accounting — same bodies, one flag.
  Order-dependent float state (``busy_until``/``busy_time`` chains,
  ``wait_ns``) always stays live in event order.

Global event order is *semantic* (threads contend on shared FIFO
resources), so the loop keeps the exact ``(when, seq)`` total order of
the other engines: the same binary heap, the same fused
``heappushpop`` thread switch, the same peek-ahead continuation rule,
the same event accounting (every op plus the final program exhaustion
counts one event), the same watchdog ceilings, and the same
``events & 2047`` compaction cadence as ``_run_fast`` — so
``SimulationDiverged`` trips at exactly the same event on every
engine.

Threads without a registered program (custom factories, the dynamic
work-stealing kernel whose op stream depends on runtime interleaving)
are driven through their generators exactly as in ``_run_fast`` — both
kinds interleave freely in one run.

When a sanitizer or tracer has bound the instance ``_execute`` hook
(``check_level >= 1``), program steps are materialized back to their op
objects and routed through the hook, so the level-1 per-event checks
(monotonicity, thread legality) and all post-run conservation checks
fire on the batched path too.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappop, heappushpop

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a soft dependency
    _np = None

from repro.piuma.ops import (
    OP_ATOMIC,
    OP_COMPUTE,
    OP_DMA_INTERNAL,
    OP_DMA_READ,
    OP_DMA_WRITE,
    OP_LOAD,
    OP_PHASE,
    OP_SEQUENTIAL,
    OP_STORE,
    DMAOp,
)
from repro.runtime.errors import HardwareExhausted

#: Op kind codes (mirroring ``repro.piuma.ops``).  DMA read/write
#: share one replay body; a dead engine gets a sentinel closure that
#: raises at execution time — at the same event the other engines
#: would — not at compile time.
K_PHASE = OP_PHASE
K_COMPUTE = OP_COMPUTE
K_LOAD = OP_LOAD
K_SEQUENTIAL = OP_SEQUENTIAL
K_STORE = OP_STORE
K_ATOMIC = OP_ATOMIC
K_DMA_INTERNAL = OP_DMA_INTERNAL
K_DMA = OP_DMA_READ
#: A DMA plan with at least one stalling (degraded) slice target keeps
#: the general body with the per-target ``stall_period_ns`` check; the
#: healthy-topology body (the overwhelmingly common case) drops it.
K_DMA_STALL = OP_DMA_WRITE
K_DEAD_DMA = 9


def _merge_backfill(starts, ends, arrival, duration):
    """``Timeline.backfill`` with the insert-then-merge memmoves fused out.

    The original inserts the new interval and then deletes it (or its
    swallowed successors) again while merging — two O(n) ``list``
    memmoves per call on timelines that run hundreds of live intervals.
    Measured on the Fig 5 medium point, ~89% of backfills net zero
    growth (the new interval merges into a neighbor within the epsilon),
    so this version computes the merge window *first* and then applies
    the single cheapest list mutation: extending the predecessor's end
    in place, overwriting one swallowed successor, or — only when
    nothing merges — a genuine insert.

    Content evolution is bit-identical to ``Timeline.backfill``: same
    candidate rule, same progressive successor merge, same 1e-9 epsilon,
    same final interval lists after every call (pre-existing neighbors
    are always further than the epsilon apart — they would have been
    merged when created — so the original's merge loops never cascade
    past the window computed here).  The first-fit scan keeps a plain
    assignment where the original keeps a running max: interval ends
    are strictly increasing (disjoint, sorted, gaps wider than the
    epsilon) and ``ends[index]`` always exceeds the entry candidate
    (``starts[index] > arrival`` by bisection), so the max never binds.
    Returns the granted window's end (callers never use the start).
    """
    n = len(starts)
    index = bisect_right(starts, arrival)
    if index > 0:
        prev_end = ends[index - 1]
        candidate = prev_end if prev_end > arrival else arrival
    else:
        candidate = arrival
    while index < n:
        if starts[index] - candidate >= duration:
            break
        candidate = ends[index]
        index += 1
    end = candidate + duration
    # Progressive merge window [index, j): successors the new interval
    # touches, with the running merged end (same order of max updates
    # as the original's successor loop).
    merged = end
    j = index
    while j < n and starts[j] <= merged + 1e-9:
        e = ends[j]
        if e > merged:
            merged = e
        j += 1
    if index > 0 and candidate <= ends[index - 1] + 1e-9:
        # Extends the predecessor in place (candidate >= its end by the
        # candidate rule, so the merged end can only grow it).
        if merged > ends[index - 1]:
            ends[index - 1] = merged
        if j > index:
            del starts[index:j]
            del ends[index:j]
    elif j > index:
        # Overwrite the first swallowed successor, drop the rest.
        starts[index] = candidate
        ends[index] = merged
        if j > index + 1:
            del starts[index + 1:j]
            del ends[index + 1:j]
    else:
        starts.insert(index, candidate)
        ends.insert(index, end)
    return end


def _collapse(entries):
    """Fold raw deferred-counter entries into per-(obj, attr) integers.

    Returns a tuple of ``(obj, attrname, int_amount)`` triples — the
    per-execution counter delta of one plan — or ``None`` when any
    amount is not integral (fractional stripe shares), which disables
    deferral for the whole run: mixing batched integral adds with live
    fractional adds on the same counter would change float rounding
    order.  Zero amounts are dropped (value-identical no-ops).
    """
    acc = {}
    for obj, attr, amount in entries:
        if amount:
            i = int(amount)
            if i != amount:
                return None
            key = (id(obj), attr)
            cur = acc.get(key)
            if cur is None:
                acc[key] = [obj, attr, i]
            else:
                cur[2] += i
    return tuple(map(tuple, acc.values()))


#: Compiled healthy-DMA replay templates, keyed by plan shape
#: ``(lat_flags, has_fail)``.  One ``exec`` per shape ever (a handful
#: per topology); the per-plan cost is one factory call that binds the
#: plan's constants as default arguments of the returned closure.
_DMA_TEMPLATES = {}


def _dma_factory(lat_flags, has_fail):
    """Source-compile one healthy-DMA replay body per plan shape.

    The generic ``K_DMA`` body pays, per event, a 14-field tuple
    unpack, a loop over 5-tuple targets, and a ``LOAD_CONST``-free
    attribute fetch for every plan constant.  Here the target loop is
    unrolled (``lat_flags[i]`` tells whether target ``i`` is remote —
    the only per-target control flow) and every constant is bound as a
    default argument of the generated closure, so the replay body runs
    on ``LOAD_FAST`` alone.  Arithmetic is copied expression-for-
    expression from the generic body: same order, same operands, same
    floats.  The closure signature is ``fn(now, live)`` returning
    ``(resume, completion)``.
    """
    key = (lat_flags, has_fail)
    factory = _DMA_TEMPLATES.get(key)
    if factory is not None:
        return factory
    defaults = [
        "pipe=pipe", "engine=engine", "eng=eng", "inj=inj",
        "record=record", "duration=duration", "share=share",
        "inj_service=inj_service", "limit=limit", "nbytes=nbytes",
        "fail=fail", "issue_cost=issue_cost",
        "issue_instrs=issue_instrs", "br=bisect_right",
        # The inflight deque lives for the simulator's lifetime
        # (created once in DMAEngine.__init__, only ever mutated), so
        # the deque and its bound methods are plan constants.
        "inflight=engine._inflight",
        "popleft=engine._inflight.popleft",
        "append=engine._inflight.append",
    ]
    any_remote = any(lat_flags)
    for i, remote in enumerate(lat_flags):
        defaults.append(f"s{i}=targets[{i}][0]")
        defaults.append(f"e{i}=targets[{i}][1]")
        if remote:
            defaults.append(f"l{i}=targets[{i}][2]")
        defaults.append(f"v{i}=targets[{i}][3]")
        defaults.append(f"n{i}=targets[{i}][4]")
        defaults.append(f"m{i}=memories[{i}]")
    src = [
        "def _factory(pipe, engine, eng, inj, record, duration, share,",
        "             inj_service, limit, nbytes, fail, issue_cost,",
        "             issue_instrs, targets, memories, merge):",
        "    def _run(now, live,",
    ]
    for chunk in range(0, len(defaults), 4):
        src.append("             " + ", ".join(defaults[chunk:chunk + 4])
                   + ",")
    src[-1] = src[-1].rstrip(",") + "):"
    w = src.append
    w("        busy = pipe.busy_until")
    w("        issued = (now if now > busy else busy) + issue_cost")
    w("        pipe.busy_until = issued")
    w("        pipe.busy_time += issue_cost")
    if has_fail:
        w("        engine._fail_countdown -= 1")
        w("        if not engine._fail_countdown:")
        w("            engine._fail_countdown = fail")
        w("            engine.retries += 1")
        w("            issued += engine._retry_backoff_ns")
    w("        gate = issued")
    w("        inflight_bytes = engine._inflight_bytes")
    w("        while inflight and inflight[0][0] <= gate:")
    w("            inflight_bytes -= popleft()[1]")
    w("        while inflight and inflight_bytes + nbytes > limit:")
    w("            retired, size = popleft()")
    w("            inflight_bytes -= size")
    w("            if retired > gate:")
    w("                gate = retired")
    w("        busy = eng.busy_until")
    w("        start = gate if gate > busy else busy")
    w("        eng.busy_until = start + duration")
    w("        eng.busy_time += duration")
    w("        completion = start")
    if any_remote:
        w("        inj_busy = inj.busy_until")
        w("        inj_bt = inj.busy_time")
    for i, remote in enumerate(lat_flags):
        if remote:
            w("        sent = (start if start > inj_busy else inj_busy)"
              " + inj_service")
            w("        inj_busy = sent")
            w("        inj_bt += inj_service")
            w(f"        arrival = sent + l{i}")
        else:
            w("        arrival = start")
        w(f"        if s{i} and arrival >= s{i}[-1]:")
        w(f"            last_end = e{i}[-1]")
        w("            begin = last_end if last_end > arrival"
          " else arrival")
        w(f"            end = begin + v{i}")
        w("            if begin <= last_end + 1e-9:")
        w("                if end > last_end:")
        w(f"                    e{i}[-1] = end")
        w("            else:")
        w(f"                s{i}.append(begin)")
        w(f"                e{i}.append(end)")
        w("        else:")
        w(f"            nn = len(s{i})")
        w(f"            ix = br(s{i}, arrival)")
        w("            if ix > 0:")
        w(f"                pe = e{i}[ix - 1]")
        w("                cand = pe if pe > arrival else arrival")
        w("            else:")
        w("                cand = arrival")
        w("            while ix < nn:")
        w(f"                if s{i}[ix] - cand >= v{i}:")
        w("                    break")
        w(f"                cand = e{i}[ix]")
        w("                ix += 1")
        w(f"            end = cand + v{i}")
        w("            mg = end")
        w("            jj = ix")
        w(f"            while jj < nn and s{i}[jj] <= mg + 1e-9:")
        w(f"                ee = e{i}[jj]")
        w("                if ee > mg:")
        w("                    mg = ee")
        w("                jj += 1")
        w(f"            if ix > 0 and cand <= e{i}[ix - 1] + 1e-9:")
        w(f"                if mg > e{i}[ix - 1]:")
        w(f"                    e{i}[ix - 1] = mg")
        w("                if jj > ix:")
        w(f"                    del s{i}[ix:jj]")
        w(f"                    del e{i}[ix:jj]")
        w("            elif jj > ix:")
        w(f"                s{i}[ix] = cand")
        w(f"                e{i}[ix] = mg")
        w("                if jj > ix + 1:")
        w(f"                    del s{i}[ix + 1:jj]")
        w(f"                    del e{i}[ix + 1:jj]")
        w("            else:")
        w(f"                s{i}.insert(ix, cand)")
        w(f"                e{i}.insert(ix, end)")
        w(f"        end += n{i}")
        w("        if end > completion:")
        w("            completion = end")
    if any_remote:
        w("        inj.busy_until = inj_busy")
        w("        inj.busy_time = inj_bt")
    w("        append((completion, nbytes))")
    w("        engine._inflight_bytes = inflight_bytes + nbytes")
    w("        if live:")
    w("            pipe.units_served += issue_instrs")
    w("            pipe.requests += 1")
    w("            eng.units_served += nbytes")
    w("            eng.requests += 1")
    w("            engine.ops += 1")
    w("            engine.bytes_moved += nbytes")
    for i, remote in enumerate(lat_flags):
        if remote:
            w("            inj.units_served += share")
            w("            inj.requests += 1")
        w(f"            m{i}.bytes_served += share")
        w(f"            m{i}.requests += 1")
    w("            record.count += 1")
    w("            record.bytes += nbytes")
    w("        return issued, completion")
    w("    return _run")
    namespace = {"bisect_right": bisect_right}
    exec("\n".join(src), namespace)
    factory = namespace["_factory"]
    _DMA_TEMPLATES[key] = factory
    return factory


def _phase_plan(sim):
    def _run(now, live, sim=sim):
        if now > sim.setup_end:
            sim.setup_end = now
        return now, now
    return _run


def _dead_dma_plan(pipe, core_id, issue_cost, issue_instrs):
    # Accounts the issue slot live and raises — at the same event the
    # reference would — so the deferred delta for this plan is empty.
    def _run(now, live, pipe=pipe, core_id=core_id,
             issue_cost=issue_cost, issue_instrs=issue_instrs):
        busy = pipe.busy_until
        issued = (now if now > busy else busy) + issue_cost
        pipe.busy_until = issued
        pipe.busy_time += issue_cost
        pipe.units_served += issue_instrs
        pipe.requests += 1
        raise HardwareExhausted(
            f"DMA engine on core {core_id} is dead",
            cause="dead-dma",
        )
    return _run


def _dma_internal_plan(pipe, engine, eng, duration, nbytes, record,
                       fail, issue_cost, issue_instrs):
    def _run(now, live, pipe=pipe, engine=engine, eng=eng,
             duration=duration, nbytes=nbytes, record=record,
             fail=fail, issue_cost=issue_cost,
             issue_instrs=issue_instrs):
        busy = pipe.busy_until
        issued = (now if now > busy else busy) + issue_cost
        pipe.busy_until = issued
        pipe.busy_time += issue_cost
        if fail:
            engine._fail_countdown -= 1
            if not engine._fail_countdown:
                engine._fail_countdown = fail
                engine.retries += 1
                issued += engine._retry_backoff_ns
        busy = eng.busy_until
        start = issued if issued > busy else busy
        completion = start + duration
        eng.busy_until = completion
        eng.busy_time += duration
        if live:
            pipe.units_served += issue_instrs
            pipe.requests += 1
            eng.units_served += nbytes
            eng.requests += 1
            engine.ops += 1
            engine.bytes_moved += nbytes
            record.count += 1
            record.bytes += nbytes
        return issued, completion
    return _run


def _dma_stall_plan(pipe, engine, eng, targets_v, duration, share, inj,
                    inj_service, limit, nbytes, record, fail,
                    issue_cost, issue_instrs):
    # General striped-DMA body: at least one target slice stalls
    # periodically (degraded topology), so every target keeps the
    # ``stall_period_ns`` check and stalling ones route through
    # ``bulk_request`` (which accounts itself live).
    def _run(now, live, pipe=pipe, engine=engine, eng=eng,
             targets_v=targets_v, duration=duration, share=share,
             inj=inj, inj_service=inj_service, limit=limit,
             nbytes=nbytes, record=record, fail=fail,
             issue_cost=issue_cost, issue_instrs=issue_instrs,
             merge=_merge_backfill):
        busy = pipe.busy_until
        issued = (now if now > busy else busy) + issue_cost
        pipe.busy_until = issued
        pipe.busy_time += issue_cost
        if fail:
            engine._fail_countdown -= 1
            if not engine._fail_countdown:
                engine._fail_countdown = fail
                engine.retries += 1
                issued += engine._retry_backoff_ns
        gate = issued
        inflight = engine._inflight
        inflight_bytes = engine._inflight_bytes
        popleft = inflight.popleft
        while inflight and inflight[0][0] <= gate:
            inflight_bytes -= popleft()[1]
        while inflight and inflight_bytes + nbytes > limit:
            retired, size = popleft()
            inflight_bytes -= size
            if retired > gate:
                gate = retired
        busy = eng.busy_until
        start = gate if gate > busy else busy
        eng.busy_until = start + duration
        eng.busy_time += duration
        completion = start
        inj_busy = inj.busy_until
        inj_bt = inj.busy_time
        for memory, starts, ends, lat, service, lat_ns in targets_v:
            if lat is None:
                arrival = start
            else:
                sent = (
                    start if start > inj_busy else inj_busy
                ) + inj_service
                inj_busy = sent
                inj_bt += inj_service
                arrival = sent + lat
            if memory.stall_period_ns:
                end = memory.bulk_request(arrival, share)
                if end > completion:
                    completion = end
                continue
            if starts and arrival >= starts[-1]:
                last_end = ends[-1]
                begin = last_end if last_end > arrival else arrival
                end = begin + service
                if begin <= last_end + 1e-9:
                    if end > last_end:
                        ends[-1] = end
                else:
                    starts.append(begin)
                    ends.append(end)
            else:
                end = merge(starts, ends, arrival, service)
            end += lat_ns
            if end > completion:
                completion = end
        inj.busy_until = inj_busy
        inj.busy_time = inj_bt
        inflight.append((completion, nbytes))
        engine._inflight_bytes = inflight_bytes + nbytes
        if live:
            pipe.units_served += issue_instrs
            pipe.requests += 1
            eng.units_served += nbytes
            eng.requests += 1
            engine.ops += 1
            engine.bytes_moved += nbytes
            for memory, _s, _e, lat, _srv, _ln in targets_v:
                if lat is not None:
                    inj.units_served += share
                    inj.requests += 1
                if not memory.stall_period_ns:
                    memory.bytes_served += share
                    memory.requests += 1
            record.count += 1
            record.bytes += nbytes
        return issued, completion
    return _run


def _load_plan(pipe, g_dur, g_units, lat1, slice_, starts, ends,
               service, lat_ns, lat2, nbytes, record, priority,
               stall_p, stall_d):
    def _run(now, live, pipe=pipe, g_dur=g_dur, g_units=g_units,
             lat1=lat1, slice_=slice_, starts=starts, ends=ends,
             service=service, lat_ns=lat_ns, lat2=lat2, nbytes=nbytes,
             record=record, priority=priority, stall_p=stall_p,
             stall_d=stall_d, merge=_merge_backfill):
        busy = pipe.busy_until
        start = now if now > busy else busy
        issued = start + g_dur
        pipe.busy_until = issued
        pipe.busy_time += g_dur
        arrival = issued + lat1
        if stall_p:
            phase = arrival % stall_p
            if phase < stall_d:
                arrival = arrival + (stall_d - phase)
        if starts and arrival >= starts[-1]:
            last_end = ends[-1]
            begin = last_end if last_end > arrival else arrival
            end = begin + service
            if begin <= last_end + 1e-9:
                if end > last_end:
                    ends[-1] = end
            else:
                starts.append(begin)
                ends.append(end)
        else:
            end = merge(starts, ends, arrival, service)
        if priority:
            horizon = slice_._priority_horizon
            pstart = arrival if arrival > horizon else horizon
            pend = pstart + service
            slice_._priority_horizon = pend
            slice_._priority_busy += service
            done = pend + lat_ns + lat2
        else:
            done = end + lat_ns + lat2
        if live:
            pipe.units_served += g_units
            pipe.requests += 1
            slice_.bytes_served += nbytes
            slice_.requests += 1
            record.count += 1
            record.bytes += nbytes
        record.wait_ns += done - issued
        return done, done
    return _run


def _atomic_plan(pipe, dur1, lat, inj, inj_service, nbytes, aunit,
                 a_dur, slice_, starts, ends, service, lat_ns, stall_p,
                 stall_d, two, record):
    def _run(now, live, pipe=pipe, dur1=dur1, lat=lat, inj=inj,
             inj_service=inj_service, nbytes=nbytes, aunit=aunit,
             a_dur=a_dur, slice_=slice_, starts=starts, ends=ends,
             service=service, lat_ns=lat_ns, stall_p=stall_p,
             stall_d=stall_d, two=two, record=record,
             merge=_merge_backfill):
        busy = pipe.busy_until
        start = now if now > busy else busy
        issued = start + dur1
        pipe.busy_until = issued
        pipe.busy_time += dur1
        if lat is None:
            arrival = issued
        else:
            busy = inj.busy_until
            sent = (issued if issued > busy else busy) + inj_service
            inj.busy_until = sent
            inj.busy_time += inj_service
            arrival = sent + lat
        busy = aunit.busy_until
        ustart = arrival if arrival > busy else busy
        unit_done = ustart + a_dur
        aunit.busy_until = unit_done
        aunit.busy_time += a_dur
        if stall_p:
            phase = unit_done % stall_p
            if phase < stall_d:
                unit_done = unit_done + (stall_d - phase)
        if starts and unit_done >= starts[-1]:
            last_end = ends[-1]
            begin = last_end if last_end > unit_done else unit_done
            end = begin + service
            if begin <= last_end + 1e-9:
                if end > last_end:
                    ends[-1] = end
            else:
                starts.append(begin)
                ends.append(end)
        else:
            end = merge(starts, ends, unit_done, service)
        if live:
            pipe.units_served += 1
            pipe.requests += 1
            if lat is not None:
                inj.units_served += nbytes
                inj.requests += 1
            aunit.units_served += nbytes
            aunit.requests += 1
            slice_.bytes_served += two
            slice_.requests += 1
            record.count += 1
            record.bytes += two
        return issued, end + lat_ns
    return _run


def _sequential_plan(pipe, dur, n_units, targets, nm1, worst_trip,
                     total_bytes, record):
    def _run(now, live, pipe=pipe, dur=dur, n_units=n_units,
             targets=targets, nm1=nm1, worst_trip=worst_trip,
             total_bytes=total_bytes, record=record,
             merge=_merge_backfill):
        busy = pipe.busy_until
        start = now if now > busy else busy
        issued = start + dur
        pipe.busy_until = issued
        pipe.busy_time += dur
        served = issued
        for (slice_, starts, ends, hop, service, lat_ns, stall_p,
             stall_d, share) in targets:
            arrival = issued + hop
            if stall_p:
                phase = arrival % stall_p
                if phase < stall_d:
                    arrival = arrival + (stall_d - phase)
            if starts and arrival >= starts[-1]:
                last_end = ends[-1]
                begin = last_end if last_end > arrival else arrival
                end = begin + service
                if begin <= last_end + 1e-9:
                    if end > last_end:
                        ends[-1] = end
                else:
                    starts.append(begin)
                    ends.append(end)
            else:
                end = merge(starts, ends, arrival, service)
            done_t = end + lat_ns + hop
            if done_t > served:
                served = done_t
        done = served + nm1 * worst_trip
        if live:
            pipe.units_served += n_units
            pipe.requests += 1
            for (slice_, _s, _e, _h, _srv, _ln, _sp, _sd,
                 share_t) in targets:
                slice_.bytes_served += share_t
                slice_.requests += 1
            record.count += 1
            record.bytes += total_bytes
        record.wait_ns += done - issued
        return done, done
    return _run


def _store_plan(pipe, dur1, targets, nbytes, record):
    def _run(now, live, pipe=pipe, dur1=dur1, targets=targets,
             nbytes=nbytes, record=record, merge=_merge_backfill):
        busy = pipe.busy_until
        start = now if now > busy else busy
        issued = start + dur1
        pipe.busy_until = issued
        pipe.busy_time += dur1
        done = issued
        for (slice_, starts, ends, lat, service, lat_ns, stall_p,
             stall_d, share, inj, inj_service) in targets:
            if lat is None:
                arrival = issued
            else:
                busy = inj.busy_until
                sent = (issued if issued > busy else busy) + inj_service
                inj.busy_until = sent
                inj.busy_time += inj_service
                arrival = sent + lat
            if stall_p:
                phase = arrival % stall_p
                if phase < stall_d:
                    arrival = arrival + (stall_d - phase)
            if starts and arrival >= starts[-1]:
                last_end = ends[-1]
                begin = last_end if last_end > arrival else arrival
                end = begin + service
                if begin <= last_end + 1e-9:
                    if end > last_end:
                        ends[-1] = end
                else:
                    starts.append(begin)
                    ends.append(end)
            else:
                end = merge(starts, ends, arrival, service)
            end += lat_ns
            if end > done:
                done = end
        if live:
            pipe.units_served += 1
            pipe.requests += 1
            for (slice_, _s, _e, lat, _srv, _ln, _sp, _sd, share_t,
                 inj_t, _is) in targets:
                if lat is not None:
                    inj_t.units_served += share_t
                    inj_t.requests += 1
                slice_.bytes_served += share_t
                slice_.requests += 1
            record.count += 1
            record.bytes += nbytes
        return issued, done
    return _run


def _compute_plan(pipe, dur, n_instrs, record):
    def _run(now, live, pipe=pipe, dur=dur, n_instrs=n_instrs,
             record=record):
        busy = pipe.busy_until
        start = now if now > busy else busy
        end = start + dur
        pipe.busy_until = end
        pipe.busy_time += dur
        if live:
            pipe.units_served += n_instrs
            pipe.requests += 1
            record.count += 1
        return end, end
    return _run


def _build_plan(sim, op, kind, core, mtp, exec_dma):
    """Compile one (op, core, mtp) triple to a replay closure.

    Every float here is produced by the same expression the reference
    handlers evaluate (``engine.py``/``resources.py``/``dma.py``), so
    replay arithmetic is bit-identical.  Returns ``(fn, deferred)``
    where ``fn(now, live) -> (resume, completion)`` executes one step
    with the plan's constants pre-bound as default arguments, and
    ``deferred`` is the plan's per-execution counter delta (see
    :func:`_collapse`), or ``None`` when the plan forces live
    accounting.
    """
    pipe = sim.pipelines[core][mtp]
    network = sim.network
    slices = sim.slices
    stats = sim.stats
    if kind == K_PHASE:
        return _phase_plan(sim), ()
    record = stats[op.tag]
    if kind == OP_DMA_READ or kind == OP_DMA_WRITE or kind == OP_DMA_INTERNAL:
        engine = sim.dma_engines[core]
        if not engine.alive:
            return _dead_dma_plan(
                pipe, core, sim._dma_issue_cost, sim._dma_issue_instrs,
            ), ()
        dma_plan = exec_dma.plans.get((id(op), core))
        if dma_plan is None:
            dma_plan = exec_dma.build_plan(op, core)
        fail = engine._fail_period
        eng = engine._engine
        nbytes = op.nbytes
        entries = [
            (pipe, "units_served", sim._dma_issue_instrs),
            (pipe, "requests", 1),
            (eng, "units_served", nbytes), (eng, "requests", 1),
            (engine, "ops", 1), (engine, "bytes_moved", nbytes),
            (record, "count", 1), (record, "bytes", nbytes),
        ]
        if dma_plan[0] is None:
            return _dma_internal_plan(
                pipe, engine, eng, dma_plan[1], nbytes, record, fail,
                sim._dma_issue_cost, sim._dma_issue_instrs,
            ), _collapse(entries)
        resolved, duration, share, inj, inj_service, limit = dma_plan
        targets_v = []
        hot_targets = []
        live_targets = []
        stalled = False
        tainted = False
        for memory, timeline, lat, service, lat_ns in resolved:
            targets_v.append((
                memory, timeline._starts, timeline._ends, lat, service,
                lat_ns,
            ))
            hot_targets.append((
                timeline._starts, timeline._ends, lat, service, lat_ns,
            ))
            live_targets.append((memory, lat))
            if lat is not None:
                entries.append((inj, "units_served", share))
                entries.append((inj, "requests", 1))
            if memory.stall_period_ns:
                # bulk_request accounts this target live inside the
                # call; a fractional share there still taints the
                # slice's counter for the whole run.
                stalled = True
                if share != int(share):
                    tainted = True
            else:
                entries.append((memory, "bytes_served", share))
                entries.append((memory, "requests", 1))
        if stalled:
            return _dma_stall_plan(
                pipe, engine, eng, tuple(targets_v), duration, share,
                inj, inj_service, limit, nbytes, record, fail,
                sim._dma_issue_cost, sim._dma_issue_instrs,
            ), None if tainted else _collapse(entries)
        factory = _dma_factory(
            tuple(lat is not None for _m, lat in live_targets),
            bool(fail),
        )
        fn = factory(
            pipe, engine, eng, inj, record, duration, share,
            inj_service, limit, nbytes, fail, sim._dma_issue_cost,
            sim._dma_issue_instrs, hot_targets,
            [memory for memory, _lat in live_targets], _merge_backfill,
        )
        return fn, _collapse(entries)
    if kind == K_LOAD:
        grouped = op.grouped
        g_dur = grouped / pipe.rate + 0.0
        nbytes = op.nbytes
        dst = op.target_core
        slice_ = slices[dst]
        timeline = slice_._timeline
        return _load_plan(
            pipe, g_dur, grouped, network.latency(core, dst), slice_,
            timeline._starts, timeline._ends, nbytes / slice_.rate,
            slice_.latency_ns, network.latency(dst, core), nbytes,
            record, op.priority, slice_.stall_period_ns,
            slice_.stall_duration_ns,
        ), _collapse([
            (pipe, "units_served", grouped), (pipe, "requests", 1),
            (slice_, "bytes_served", nbytes), (slice_, "requests", 1),
            (record, "count", 1), (record, "bytes", nbytes),
        ])
    if kind == K_SEQUENTIAL:
        n_units = op.n_rounds * op.instrs_per_round
        dur = n_units / pipe.rate + 0.0
        total_bytes = op.n_rounds * op.bytes_per_round
        raw = sim._stripe_targets(op.target_core, total_bytes)
        share = total_bytes / len(raw)
        targets = []
        worst_trip = 0.0
        entries = [
            (pipe, "units_served", n_units), (pipe, "requests", 1),
            (record, "count", 1), (record, "bytes", total_bytes),
        ]
        for dst in raw:
            hop = network.latency(core, dst)
            slice_ = slices[dst]
            timeline = slice_._timeline
            targets.append((
                slice_, timeline._starts, timeline._ends, hop,
                share / slice_.rate, slice_.latency_ns,
                slice_.stall_period_ns, slice_.stall_duration_ns, share,
            ))
            entries.append((slice_, "bytes_served", share))
            entries.append((slice_, "requests", 1))
            trip = 2 * hop + slice_.latency_ns
            if trip > worst_trip:
                worst_trip = trip
        return _sequential_plan(
            pipe, dur, n_units, tuple(targets), op.n_rounds - 1,
            worst_trip, total_bytes, record,
        ), _collapse(entries)
    if kind == K_STORE:
        nbytes = op.nbytes
        raw = sim._stripe_targets(op.target_core, nbytes)
        share = nbytes / len(raw)
        inj = network._injection[core]
        inj_service = share / inj.rate + 0.0
        targets = []
        entries = [
            (pipe, "units_served", 1), (pipe, "requests", 1),
            (record, "count", 1), (record, "bytes", nbytes),
        ]
        for dst in raw:
            slice_ = slices[dst]
            timeline = slice_._timeline
            lat = None if dst == core else network.latency(core, dst)
            targets.append((
                slice_, timeline._starts, timeline._ends, lat,
                share / slice_.rate, slice_.latency_ns,
                slice_.stall_period_ns, slice_.stall_duration_ns, share,
                inj, inj_service,
            ))
            if lat is not None:
                entries.append((inj, "units_served", share))
                entries.append((inj, "requests", 1))
            entries.append((slice_, "bytes_served", share))
            entries.append((slice_, "requests", 1))
        return _store_plan(
            pipe, 1 / pipe.rate + 0.0, tuple(targets), nbytes, record,
        ), _collapse(entries)
    if kind == K_ATOMIC:
        nbytes = op.nbytes
        dst = op.target_core
        remote = dst != core
        inj = network._injection[core] if remote else None
        inj_service = (nbytes / inj.rate + 0.0) if remote else 0.0
        lat = network.latency(core, dst) if remote else None
        aunit = sim.atomic_units[dst]
        a_dur = nbytes / aunit.rate + sim.config.atomic_overhead_ns
        slice_ = slices[dst]
        timeline = slice_._timeline
        two = 2 * nbytes
        entries = [
            (pipe, "units_served", 1), (pipe, "requests", 1),
            (aunit, "units_served", nbytes), (aunit, "requests", 1),
            (slice_, "bytes_served", two), (slice_, "requests", 1),
            (record, "count", 1), (record, "bytes", two),
        ]
        if remote:
            entries.append((inj, "units_served", nbytes))
            entries.append((inj, "requests", 1))
        return _atomic_plan(
            pipe, 1 / pipe.rate + 0.0, lat, inj, inj_service, nbytes,
            aunit, a_dur, slice_, timeline._starts, timeline._ends,
            two / slice_.rate, slice_.latency_ns,
            slice_.stall_period_ns, slice_.stall_duration_ns, two,
            record,
        ), _collapse(entries)
    # kind == K_COMPUTE
    n_instrs = op.n_instrs
    return _compute_plan(
        pipe, n_instrs / pipe.rate + 0.0, n_instrs, record,
    ), _collapse([
        (pipe, "units_served", n_instrs), (pipe, "requests", 1),
        (record, "count", 1),
    ])


class _ReplayExhausted(Exception):
    """Control-flow sentinel: a program's trailing plan raises it.

    Replaces a per-event ``pc == end_pc`` bound check in the tight
    loop: the compiled plan list carries one extra closure past the
    last real op, and executing it raises this (prebuilt) instance.
    The handler performs the program-exhaustion event — the replay
    analogue of the final ``StopIteration`` resumption, counted
    identically on every engine.
    """


_EXHAUSTED = _ReplayExhausted()


def _exhaust_plan():
    def _run(now, live, exc=_EXHAUSTED):
        raise exc
    return _run


def compile_thread(sim, idx, program, core, mtp):
    """Compile one registered program into its replay closure list.

    Called by :meth:`Simulator.spawn_program` at spawn time (the
    resources every plan binds exist from ``__init__``), so ``run()``
    itself only replays — compilation is program setup, amortized like
    the generator drain in :meth:`OpProgram.from_generator`.  State
    accumulates on ``sim._vector_state``: the per-(op, core, mtp) plan
    cache, the deduplicated deferred-counter table (uids), and the
    per-thread rows the settle pass consumes.
    """
    state = sim._vector_state
    if state is None:
        state = sim._vector_state = {
            "cache": {}, "uids": [], "rows": [], "progs": {},
            "full": [], "taint": False,
        }
    cache_get = state["cache"].get
    cache = state["cache"]
    deferred_by_uid = state["uids"]
    exec_dma = sim._dispatch[DMAOp]
    if getattr(exec_dma, "plans", None) is None:
        # The DMA dispatch entry has been wrapped or replaced (the
        # mutation harness does this; so can any instrumentation).
        # Compiled plans would route around the wrapper, so leave the
        # thread generator-driven: the replay loop falls back to live
        # dispatch for it and the whole run stays on-path.
        return
    table = program.table
    kinds = program.kind_codes
    by_code = []
    uid_row = []
    for i, op in enumerate(table):
        key = (id(op), core, mtp)
        entry = cache_get(key)
        if entry is None:
            fn, deferred = _build_plan(sim, op, int(kinds[i]),
                                       core, mtp, exec_dma)
            if deferred is None:
                # Non-integral deferred amount somewhere: the whole
                # run must account live (all-or-nothing exactness).
                state["taint"] = True
                deferred = ()
            entry = (fn, deferred, len(deferred_by_uid))
            deferred_by_uid.append(deferred)
            cache[key] = entry
        by_code.append(entry[0])
        uid_row.append(entry[2])
    codes = program.step_codes()
    plan_list = [by_code[c] for c in codes]
    plan_list.append(_exhaust_plan())
    state["progs"][idx] = plan_list
    state["rows"].append((idx, program.codes, uid_row, len(table)))
    # Precompute this thread's full-run contribution to the per-uid
    # execution counts: when the run completes (every pc at its
    # program length — the overwhelmingly common case), the settle
    # pass skips the per-thread bincounts entirely.
    full = state["full"]
    grow = len(deferred_by_uid) - len(full)
    if grow > 0:
        full.extend([0] * grow)
    for c in codes:
        full[uid_row[c]] += 1


def _apply_deferred(defer_info, pcs):
    """Settle the batched counters from per-plan execution counts.

    For every program thread, ``pcs`` gives the executed step prefix —
    exact even when the run raised mid-stream (watchdog, dead DMA), so
    the settled totals match what the reference loop would have
    accumulated live up to the same event.  ``n * amount`` and the
    running totals are Python ints (arbitrary precision); the single
    float add per counter at the end is exact while the counter stays
    below 2**53, which is the same bound at which the reference's own
    per-event float accumulation would start rounding.
    """
    thread_rows, deferred_by_uid, full_counts = defer_info
    complete = True
    for idx, codes, _uid_row, _n_table in thread_rows:
        if pcs[idx] < len(codes):
            complete = False
            break
    if complete:
        # Every program ran to exhaustion (the common case): the
        # per-uid counts were accumulated once at compile time.
        uid_counts = full_counts
    else:
        uid_counts = _partial_uid_counts(
            thread_rows, pcs, len(deferred_by_uid)
        )
    totals = {}
    t_get = totals.get
    for uid, n in enumerate(uid_counts):
        if n:
            for obj, attr, amount in deferred_by_uid[uid]:
                key = (id(obj), attr)
                cur = t_get(key)
                if cur is None:
                    totals[key] = [obj, attr, n * amount]
                else:
                    cur[2] += n * amount
    for obj, attr, total in totals.values():
        setattr(obj, attr, getattr(obj, attr) + total)


def _partial_uid_counts(thread_rows, pcs, n_uids):
    """Per-uid execution counts from the executed step prefixes.

    The slow settle leg, needed only when a run raised mid-stream
    (watchdog, dead DMA): bincount each thread's executed prefix.
    """
    uid_counts = [0] * n_uids
    for idx, codes, uid_row, n_table in thread_rows:
        pc = pcs[idx]
        if not pc:
            continue
        if _np is not None and isinstance(codes, _np.ndarray):
            counts = _np.bincount(
                codes if pc >= len(codes) else codes[:pc],
                minlength=n_table,
            ).tolist()
        else:
            counts = [0] * n_table
            for c in codes[:pc]:
                counts[c] += 1
        for i in range(n_table):
            n = counts[i]
            if n:
                uid_counts[uid_row[i]] += n
    return uid_counts


def run_vector(sim):
    """Execute all spawned threads under the replay loop; returns ns."""
    cfg = sim.config
    threads = sim._threads
    slices = sim.slices
    # A sanitizer/tracer binds the instance `_execute`; when bound,
    # program steps are materialized back to op objects and routed
    # through it op-by-op (checked replay, always live).
    execute = sim._execute if "_execute" in sim.__dict__ else None
    checked = execute is not None
    dispatch_get = sim._dispatch.get
    n_threads = len(threads)
    programs = sim._programs
    progs = [None] * n_threads
    lens = [0] * n_threads
    pcs = [0] * n_threads
    state = sim._vector_state
    defer_info = None
    live = True
    if checked:
        for t_idx, program in programs.items():
            seq_ops = program.op_sequence()
            progs[t_idx] = seq_ops
            lens[t_idx] = len(seq_ops)
    elif state is not None:
        for t_idx, fn_list in state["progs"].items():
            progs[t_idx] = fn_list
            # The compiled list carries a trailing exhaustion sentinel
            # (tight-loop control flow); the general loop bounds pc at
            # the real op count instead of executing it.
            lens[t_idx] = len(fn_list) - 1
        # Generator-driven threads account through the live handlers
        # with shares unknowable at compile time, so any mixed run
        # stays fully live.
        live = state["taint"] or len(state["progs"]) != n_threads
        if not live:
            defer_info = (state["rows"], state["uids"], state["full"])
        if len(state["progs"]) == n_threads and n_threads:
            # Every thread is a compiled program: run the specialized
            # replay loop (no generator/checked branches, pc carried
            # in the heap entry, sentinel-terminated programs).
            return _replay_programs(sim, progs, pcs, live, defer_info)
    pending = sim._heap
    heappop_ = heappop
    heappushpop_ = heappushpop
    inf = float("inf")
    max_events = cfg.max_events or inf
    max_sim_ns = cfg.max_sim_ns or inf
    stall_limit = cfg.stall_events or inf
    latest = 0.0
    events = 0
    stalled = 0
    last_now = -1.0
    seq = sim._seq
    idx = -1
    pc = 0
    try:
        while pending:
            now, _seq, idx, value = heappop_(pending)
            prog = progs[idx]
            pc = pcs[idx]
            end_pc = lens[idx]
            if prog is None or checked:
                # Replay closures never touch the thread tuple
                # (resources are pre-bound), so only generator-driven
                # and checked threads pay the binding.
                generator, core, mtp = threads[idx]
            while True:
                events += 1
                if not events & 2047:
                    # Same boundary as _run_fast: retire dead DRAM
                    # timeline history (result-transparent).
                    cutoff = now - 1.0
                    for s in slices:
                        s.retire_before(cutoff)
                if events > max_events:
                    raise sim._diverged_events(events, now)
                if now > max_sim_ns:
                    raise sim._diverged_sim_ns(now)
                if now == last_now:
                    stalled += 1
                    if stalled > stall_limit:
                        raise sim._diverged_stall(stalled, now)
                else:
                    stalled = 0
                    last_now = now
                if prog is None:
                    # Generator-driven thread: identical to _run_fast.
                    try:
                        op = generator.send(value)
                    except StopIteration:
                        if now > latest:
                            latest = now
                        break
                    if execute is None:
                        handler = dispatch_get(op.__class__)
                        if handler is None:
                            raise TypeError(f"unknown op {op!r}")
                        resume, completion = handler(op, now, core, mtp)
                    else:
                        resume, completion = execute(op, now, core, mtp)
                elif pc == end_pc:
                    # Program exhausted: the replay analogue of the
                    # final StopIteration resumption — same event count.
                    pcs[idx] = pc
                    if now > latest:
                        latest = now
                    break
                elif checked:
                    op = prog[pc]
                    pc += 1
                    resume, completion = execute(op, now, core, mtp)
                else:
                    resume, completion = prog[pc](now, live)
                    pc += 1
                if completion > latest:
                    latest = completion
                if pending and pending[0][0] <= resume:
                    # Switch: an already-queued event runs first.  The
                    # pushed entry can never beat the queue head (its
                    # resume time is >= the head's, and on a tie its
                    # sequence number is larger), so the fused
                    # heappushpop keeps the exact (when, seq) order.
                    pcs[idx] = pc
                    now, _seq, idx, value = heappushpop_(
                        pending, (resume, seq, idx, completion)
                    )
                    seq += 1
                    prog = progs[idx]
                    pc = pcs[idx]
                    end_pc = lens[idx]
                    if prog is None or checked:
                        generator, core, mtp = threads[idx]
                    continue
                now, value = resume, completion
    finally:
        # Sync the in-flight thread's pc first: on a mid-run raise
        # (watchdog, dead DMA) the executed-prefix counts must match
        # the reference's live accounting up to the same event.
        if idx >= 0:
            pcs[idx] = pc
        sim._seq = seq
        sim.events = events
        sim._program_pcs = pcs
        if not live and defer_info:
            _apply_deferred(defer_info, pcs)
    sim.end_time = latest + cfg.launch_overhead_ns
    return sim.end_time


def _replay_programs(sim, progs, pcs, live, defer_info):
    """Tight replay loop for runs where every thread is a program.

    The general loop in :func:`run_vector` pays per event for
    possibilities this run cannot exhibit: generator resumption,
    checked execution, and the program-bound compare.  Here each heap
    entry carries the thread's pc in the value slot (programs never
    consume a resumption value), programs are sentinel-terminated
    (:class:`_ReplayExhausted` replaces the ``pc == end_pc`` check),
    and the three watchdog comparisons share one fused guard.  Event
    order, event counts, watchdog trip points, and all accounting are
    identical to the general loop — only the per-event constant drops.
    """
    cfg = sim.config
    slices = sim.slices
    pending = sim._heap
    # Spawn pushed (0.0, seq, idx, None) entries; rewrite the value
    # slot to the starting pc.  (when, seq) are untouched and seq is
    # unique, so the heap invariant is preserved.
    for i, entry in enumerate(pending):
        if entry[3] is not None:
            raise RuntimeError("vector replay requires a fresh event queue")
        pending[i] = (entry[0], entry[1], entry[2], 0)
    heappop_ = heappop
    heappushpop_ = heappushpop
    inf = float("inf")
    max_events = cfg.max_events or inf
    max_sim_ns = cfg.max_sim_ns or inf
    stall_limit = cfg.stall_events or inf
    latest = 0.0
    events = 0
    stalled = 0
    last_now = -1.0
    seq = sim._seq
    idx = -1
    pc = 0
    try:
        while pending:
            now, _seq, idx, pc = heappop_(pending)
            prog = progs[idx]
            try:
                while True:
                    events += 1
                    if not events & 2047:
                        # Same boundary as _run_fast: retire dead DRAM
                        # timeline history (result-transparent).
                        cutoff = now - 1.0
                        for s in slices:
                            s.retire_before(cutoff)
                    if (events > max_events or now > max_sim_ns
                            or now == last_now):
                        if events > max_events:
                            raise sim._diverged_events(events, now)
                        if now > max_sim_ns:
                            raise sim._diverged_sim_ns(now)
                        stalled += 1
                        if stalled > stall_limit:
                            raise sim._diverged_stall(stalled, now)
                    else:
                        stalled = 0
                        last_now = now
                    resume, completion = prog[pc](now, live)
                    pc += 1
                    if completion > latest:
                        latest = completion
                    if pending and pending[0][0] <= resume:
                        # Fused switch; the pushed entry can never beat
                        # the queue head (resume >= head's when, larger
                        # seq on ties), so (when, seq) order is exact.
                        now, _seq, idx, pc = heappushpop_(
                            pending, (resume, seq, idx, pc)
                        )
                        seq += 1
                        prog = progs[idx]
                        continue
                    now = resume
            except _ReplayExhausted:
                # Program exhausted: the replay analogue of the final
                # StopIteration resumption — same event count.
                pcs[idx] = pc
                if now > latest:
                    latest = now
    finally:
        # pcs for suspended threads live in their queue entries; the
        # in-flight thread's is in the local.  Exhausted threads were
        # synced by the handler above, so on a mid-run raise the
        # executed-prefix counts match the reference's live
        # accounting up to the same event.
        for entry in pending:
            e_pc = entry[3]
            if e_pc:
                pcs[entry[2]] = e_pc
        if idx >= 0:
            pcs[idx] = pc
        sim._seq = seq
        sim.events = events
        sim._program_pcs = pcs
        if not live and defer_info:
            _apply_deferred(defer_info, pcs)
    sim.end_time = latest + cfg.launch_overhead_ns
    return sim.end_time
