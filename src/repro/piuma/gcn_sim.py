"""DES-grounded GCN layer execution on PIUMA.

``repro.piuma.gcn`` projects node-level GCN time analytically; this
module grounds the same per-layer structure in the discrete-event
simulator at die scale: SpMM via the DMA kernel on a materialized
graph, Dense MM via the simulated scalar-GEMM kernel, glue as a
streaming pass.  Used to validate the Fig 10 shape (dense share grows
with K) against simulation rather than models, and to let users
characterize *their* graph on a configurable PIUMA die.
"""

from __future__ import annotations

from repro.core.breakdown import ExecutionBreakdown, combine
from repro.piuma import simulate_spmm
from repro.piuma.densemm_kernel import simulate_dense_mm


def simulate_gcn_layer(adj, in_dim, out_dim, config, has_activation=True,
                       spmm_kernel="dma", window_edges=None):
    """Simulate one GCN layer; returns an :class:`ExecutionBreakdown` (ns).

    SpMM and Dense MM run in the DES (projected from their windows);
    glue is the usual streaming estimate (element-wise work offers the
    simulator nothing interesting to model).
    """
    spmm = simulate_spmm(
        adj, in_dim, config, kernel=spmm_kernel, window_edges=window_edges
    )
    dense = simulate_dense_mm(adj.n_rows, in_dim, out_dim, config)
    passes = 2 if has_activation else 1
    glue_bytes = passes * 2 * adj.n_rows * out_dim * config.feature_bytes
    glue_ns = glue_bytes / config.total_bandwidth_gbps + (
        config.launch_overhead_ns
    )
    return ExecutionBreakdown(
        spmm=spmm.projected_time_ns,
        dense=dense.projected_time_ns,
        glue=glue_ns,
    )


def simulate_gcn(adj, gcn_config, piuma_config, spmm_kernel="dma",
                 window_edges=None):
    """Simulate a whole GCN model on a materialized graph.

    Parameters
    ----------
    adj:
        CSR adjacency (normalized or raw — only structure matters for
        timing).
    gcn_config:
        :class:`repro.core.GCNConfig` (layer dimensions).
    piuma_config:
        :class:`PIUMAConfig`.
    """
    shapes = gcn_config.layer_shapes(adj.n_rows, adj.nnz)
    return combine(
        simulate_gcn_layer(
            adj, shape.in_dim, shape.out_dim, piuma_config,
            has_activation=shape.has_activation,
            spmm_kernel=spmm_kernel,
            window_edges=window_edges,
        )
        for shape in shapes
    )
