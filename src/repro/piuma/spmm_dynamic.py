"""Vertex-parallel SpMM with dynamic work stealing.

The paper's CPU kernel uses "dynamic load balancing using OpenMP"; the
same idea fixes the vertex-parallel kernel's hub imbalance on PIUMA:
rows are split into chunks on a shared queue, and each thread pops the
next chunk when it finishes — at the cost of one remote atomic
(queue-pop) per chunk, served by PIUMA's atomic-queue offload engines.
This kernel completes the Section IV-B design space: static edge-
parallel, static vertex-parallel, and dynamic vertex-parallel.
"""

from __future__ import annotations

import numpy as np

from repro.piuma.degradation import thread_placements
from repro.piuma.kernels import ThreadWork
from repro.piuma.ops import DMAOp, Load, PhaseMarker
from repro.piuma.spmm_loop import as_int_list, nnz_line_core, owner_cores


def make_chunks(adj, config, window_edges, rows_per_chunk=None):
    """Split a proportional window into row chunks for the queue.

    Chunk granularity trades steal overhead against balance; the
    default gives ~8 chunks per thread.
    """
    total_edges = adj.nnz
    fraction = min(1.0, window_edges / total_edges) if total_edges else 0.0
    if rows_per_chunk is None:
        want_chunks = max(1, config.n_threads * 8)
        rows_per_chunk = max(1, adj.n_rows // want_chunks)
    chunks = []
    for row_start in range(0, adj.n_rows, rows_per_chunk):
        row_end = min(row_start + rows_per_chunk, adj.n_rows)
        lo = int(adj.indptr[row_start])
        hi = int(adj.indptr[row_end])
        take = int(round((hi - lo) * fraction))
        if take <= 0:
            continue
        stop = lo + take
        cols = adj.indices[lo:stop]
        rows = (
            np.searchsorted(
                adj.indptr, np.arange(lo, stop, dtype=np.int64), side="right"
            )
            - 1
        )
        chunks.append((lo, cols, rows))
    return chunks


def dynamic_thread(queue, embedding_dim, config, thread_id, shared=None):
    """Thread generator: pop chunks from the shared queue until empty.

    The queue is plain Python state shared by all generators; each pop
    is charged as a small remote atomic-queue operation (a Load against
    the queue's home slice — the thread must observe the result before
    it can proceed, exactly like a real atomic dequeue).
    """
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    row_bytes = embedding_dim * config.feature_bytes
    queue_home = 0  # the work queue lives on core 0's slice

    yield PhaseMarker()

    # Interned op instances (see the other kernels): the queue-pop load
    # and buffer-init descriptor are constant; reads/writes vary only by
    # target core.  ``shared`` optionally spans the intern table across
    # all threads of one invocation.
    if shared is None:
        shared = {}
    queue_pop = shared.get("queue_pop")
    if queue_pop is None:
        queue_pop = shared["queue_pop"] = Load(
            nbytes=2 * config.index_bytes, target_core=queue_home,
            tag="queue_pop",
        )
    dma_init = shared.get("dma_init")
    if dma_init is None:
        dma_init = shared["dma_init"] = DMAOp(
            kind="internal", nbytes=0, target_core=0, tag="dma_init"
        )
    nnz_loads = shared.setdefault("nnz", {})    # (core, bytes) -> Load
    read_ops = shared.setdefault("read", {})    # core -> DMAOp
    write_ops = shared.setdefault("write", {})  # core -> DMAOp
    while queue:
        # Atomic dequeue: blocking round trip to the queue's home.
        yield queue_pop
        if not queue:
            break
        start_edge, cols, rows = queue.pop()
        col_cores = owner_cores(cols, n_cores, hashed)
        row_cores = owner_cores(rows, n_cores, hashed)
        rows = as_int_list(rows)
        n_edges = len(rows)
        current_row = rows[0] if n_edges else -1
        current_core = row_cores[0] if n_edges else -1
        for begin in range(0, n_edges, group):
            stop = min(begin + group, n_edges)
            nnz_bytes = (stop - begin) * (
                config.index_bytes + config.value_bytes
            )
            nnz_key = (
                nnz_line_core(start_edge + begin, group, n_cores), nnz_bytes
            )
            op = nnz_loads.get(nnz_key)
            if op is None:
                op = nnz_loads[nnz_key] = Load(
                    nbytes=nnz_bytes, target_core=nnz_key[0], tag="nnz",
                    grouped=2,
                )
            yield op
            for e in range(begin, stop):
                row = rows[e]
                if row != current_row:
                    op = write_ops.get(current_core)
                    if op is None:
                        op = write_ops[current_core] = DMAOp(
                            kind="write", nbytes=row_bytes,
                            target_core=current_core, tag="dma_write",
                        )
                    yield op
                    current_row = row
                    current_core = row_cores[e]
                yield dma_init
                target = col_cores[e]
                op = read_ops.get(target)
                if op is None:
                    op = read_ops[target] = DMAOp(
                        kind="read", nbytes=row_bytes, target_core=target,
                        tag="dma_read",
                    )
                yield op
        if current_row >= 0:
            op = write_ops.get(current_core)
            if op is None:
                op = write_ops[current_core] = DMAOp(
                    kind="write", nbytes=row_bytes,
                    target_core=current_core, tag="dma_write",
                )
            yield op


def simulate_spmm_dynamic(adj, embedding_dim, config, window_edges=None,
                          rows_per_chunk=None):
    """Run the dynamic vertex-parallel kernel; returns a KernelResult."""
    from repro.piuma.engine import Simulator
    from repro.piuma.kernels import KernelResult, auto_window

    if adj.nnz == 0:
        raise ValueError("cannot simulate SpMM on an empty matrix")
    if window_edges is None:
        window_edges = auto_window(config, adj.nnz)
    chunks = make_chunks(adj, config, window_edges, rows_per_chunk)
    simulated_edges = sum(len(cols) for _s, cols, _r in chunks)
    queue = list(reversed(chunks))  # pop() takes from the front chunk
    simulator = Simulator(config)
    shared = {}
    placements = thread_placements(config)
    for t in range(config.n_threads):
        core, mtp = placements[t]
        simulator.spawn(
            dynamic_thread(queue, embedding_dim, config, t, shared=shared),
            core, mtp,
        )
    end = simulator.run()
    setup = min(simulator.setup_end, end - config.launch_overhead_ns)
    steady = max(end - config.launch_overhead_ns - setup, 1e-9)
    flops = 2.0 * simulated_edges * embedding_dim
    gflops = flops / steady
    total_flops = 2.0 * adj.nnz * embedding_dim
    return KernelResult(
        sim_time_ns=end,
        window_edges=simulated_edges,
        total_edges=adj.nnz,
        embedding_dim=embedding_dim,
        gflops=gflops,
        projected_time_ns=config.launch_overhead_ns + setup
        + total_flops / gflops,
        memory_utilization=simulator.memory_utilization(),
        achieved_bandwidth=simulator.achieved_bandwidth(),
        tag_stats=dict(simulator.stats),
        events=simulator.events,
        host_wall_s=simulator.host_wall_s,
    )
