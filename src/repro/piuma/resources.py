"""Fluid hardware resources for the discrete-event simulator.

Every shared unit (MTP pipeline, DMA engine, DRAM slice) is modeled as a
*fluid FIFO resource*: a service rate plus a ``busy_until`` horizon.
A request arriving at time ``t`` starts at ``max(t, busy_until)``,
occupies the resource for ``amount / rate``, and pushes the horizon
forward.  This captures both saturation (throughput can never exceed the
rate) and queueing delay (arrivals during a busy period wait), which are
the two memory-system effects the paper's PIUMA conclusions rest on,
while costing O(1) per request.
"""

from __future__ import annotations

import bisect


class FluidResource:
    """A rate-limited FIFO server.

    Parameters
    ----------
    rate:
        Service rate in units per nanosecond (bytes/ns for memory and
        DMA, instructions/ns for pipelines).
    name:
        Label used in utilization reports.
    """

    def __init__(self, rate, name=""):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.units_served = 0.0
        self.requests = 0

    def reserve(self, now, amount, extra_time=0.0):
        """Serve ``amount`` units arriving at ``now``.

        ``extra_time`` is per-request fixed occupancy (e.g. a DMA
        descriptor setup) added on top of the fluid service time.

        Returns ``(start, end)``: when service began and completed.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        start = max(now, self.busy_until)
        duration = amount / self.rate + extra_time
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        self.units_served += amount
        self.requests += 1
        return start, end

    def utilization(self, horizon):
        """Fraction of ``[0, horizon]`` this resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


class Timeline:
    """Busy-interval timeline with gap backfilling.

    Unlike the scalar-horizon :class:`FluidResource`, a timeline can
    accept a request stamped in the *future* (a DMA descriptor whose
    service start was gated by credits) without blocking later requests
    stamped earlier — those backfill the idle gaps, like the reordering
    queues of a real memory controller.  Adjacent busy intervals are
    merged, so under saturation the structure stays small and behaves
    exactly like a FIFO horizon.
    """

    def __init__(self):
        self._intervals = []  # disjoint, sorted (start, end)

    def allocate(self, arrival, duration):
        """Occupy the earliest ``duration``-long window at/after ``arrival``.

        Returns ``(start, end)`` of the granted window.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        intervals = self._intervals
        index = bisect.bisect_right(intervals, (arrival, float("inf")))
        # The previous interval may still cover `arrival`.
        if index > 0 and intervals[index - 1][1] > arrival:
            candidate = intervals[index - 1][1]
        else:
            candidate = arrival
        while index < len(intervals) and intervals[index][0] - candidate < duration:
            candidate = max(candidate, intervals[index][1])
            index += 1
        start, end = candidate, candidate + duration
        intervals.insert(index, (start, end))
        self._merge_around(index)
        return start, end

    def _merge_around(self, index):
        intervals = self._intervals
        # Merge with successor(s) and predecessor if touching.
        while index + 1 < len(intervals) and (
            intervals[index + 1][0] <= intervals[index][1] + 1e-9
        ):
            intervals[index] = (
                intervals[index][0],
                max(intervals[index][1], intervals[index + 1][1]),
            )
            del intervals[index + 1]
        while index > 0 and (
            intervals[index][0] <= intervals[index - 1][1] + 1e-9
        ):
            intervals[index - 1] = (
                intervals[index - 1][0],
                max(intervals[index - 1][1], intervals[index][1]),
            )
            del intervals[index]
            index -= 1

    @property
    def busy_time(self):
        return sum(end - start for start, end in self._intervals)


class DRAMSlice:
    """One core's slice of the distributed global address space.

    Service = bandwidth occupancy on a gap-backfilling timeline;
    completion additionally pays the (swept) DRAM access latency.
    """

    def __init__(self, bandwidth_bytes_per_ns, latency_ns, name=""):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.rate = bandwidth_bytes_per_ns
        self.latency_ns = latency_ns
        self.name = name
        self._timeline = Timeline()
        self._priority_horizon = 0.0
        self._priority_busy = 0.0
        self.bytes_served = 0.0
        self.requests = 0

    def request(self, now, nbytes, priority=False):
        """Access ``nbytes`` arriving at ``now``; returns completion time.

        ``priority`` requests model the controller's demand-read queue:
        small pipeline loads (NNZ fetches) are arbitrated ahead of bulk
        DMA streams, so they pay latency plus service plus queueing only
        against *other* demand reads — never behind kilobytes of queued
        DMA payloads.  They are a ~2% byte fraction, so charging their
        service outside the bulk timeline keeps capacity accounting
        honest to within that margin.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self.bytes_served += nbytes
        self.requests += 1
        service = nbytes / self.rate
        if priority:
            # Jump ahead of queued bulk transfers, but still consume
            # capacity: the stolen bandwidth is charged to the timeline
            # so bulk traffic is pushed back and total throughput can
            # never exceed the rate.
            self._timeline.allocate(now, service)
            start = max(now, self._priority_horizon)
            end = start + service
            self._priority_horizon = end
            self._priority_busy += service
            return end + self.latency_ns
        _start, end = self._timeline.allocate(now, service)
        return end + self.latency_ns

    @property
    def busy_time(self):
        """Total transfer occupancy (bulk and priority combined)."""
        return self._timeline.busy_time

    @property
    def priority_busy_time(self):
        """Service time consumed by demand-read (priority) requests.

        Priority service is *also* charged to the bulk timeline (it
        steals capacity), so this is a sub-account of :attr:`busy_time`,
        not an addition to it.
        """
        return self._priority_busy

    def utilization(self, horizon):
        """Fraction of ``[0, horizon]`` this slice was transferring."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def priority_utilization(self, horizon):
        """Fraction of ``[0, horizon]`` spent serving demand reads."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._priority_busy / horizon)
