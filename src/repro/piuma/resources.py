"""Fluid hardware resources for the discrete-event simulator.

Every shared unit (MTP pipeline, DMA engine, DRAM slice) is modeled as a
*fluid FIFO resource*: a service rate plus a ``busy_until`` horizon.
A request arriving at time ``t`` starts at ``max(t, busy_until)``,
occupies the resource for ``amount / rate``, and pushes the horizon
forward.  This captures both saturation (throughput can never exceed the
rate) and queueing delay (arrivals during a busy period wait), which are
the two memory-system effects the paper's PIUMA conclusions rest on,
while costing O(1) per request.
"""

from __future__ import annotations

import bisect

_INF = float("inf")


class FluidResource:
    """A rate-limited FIFO server.

    Parameters
    ----------
    rate:
        Service rate in units per nanosecond (bytes/ns for memory and
        DMA, instructions/ns for pipelines).
    name:
        Label used in utilization reports.
    """

    __slots__ = ("rate", "name", "busy_until", "busy_time",
                 "units_served", "requests")

    def __init__(self, rate, name=""):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.name = name
        self.busy_until = 0.0
        self.busy_time = 0.0
        self.units_served = 0.0
        self.requests = 0

    def reserve(self, now, amount, extra_time=0.0):
        """Serve ``amount`` units arriving at ``now``.

        ``extra_time`` is per-request fixed occupancy (e.g. a DMA
        descriptor setup) added on top of the fluid service time.

        Returns ``(start, end)``: when service began and completed.
        """
        if amount < 0:
            raise ValueError("amount must be non-negative")
        busy = self.busy_until
        start = now if now > busy else busy
        duration = amount / self.rate + extra_time
        end = start + duration
        self.busy_until = end
        self.busy_time += duration
        self.units_served += amount
        self.requests += 1
        return start, end

    def utilization(self, horizon):
        """Fraction of ``[0, horizon]`` this resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


class Timeline:
    """Busy-interval timeline with gap backfilling.

    Unlike the scalar-horizon :class:`FluidResource`, a timeline can
    accept a request stamped in the *future* (a DMA descriptor whose
    service start was gated by credits) without blocking later requests
    stamped earlier — those backfill the idle gaps, like the reordering
    queues of a real memory controller.  Adjacent busy intervals are
    merged, so under saturation the structure stays small and behaves
    exactly like a FIFO horizon.
    """

    __slots__ = ("_starts", "_ends", "_retired_busy")

    def __init__(self):
        # Disjoint sorted intervals as parallel float lists: the hot
        # paths extend or clip the newest interval, and plain float
        # stores beat rebuilding a (start, end) tuple per request.
        self._starts = []
        self._ends = []
        self._retired_busy = 0.0  # occupancy of compacted-away intervals

    def allocate(self, arrival, duration):
        """Occupy the earliest ``duration``-long window at/after ``arrival``.

        Returns ``(start, end)`` of the granted window.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        starts = self._starts
        ends = self._ends
        n = len(starts)
        if n:
            last_end = ends[-1]
            if arrival >= starts[-1]:
                # Saturated-FIFO fast path: the request lands at or
                # after the newest interval, so no backfilling or
                # successor merging can occur.  Bit-identical to the
                # general path below (same candidate rule, same merge
                # epsilon), minus the bisect and mid-list insert.
                start = last_end if last_end > arrival else arrival
                end = start + duration
                if start <= last_end + 1e-9:
                    if end > last_end:
                        ends[-1] = end
                else:
                    starts.append(start)
                    ends.append(end)
                return start, end
        return self.backfill(arrival, duration)

    def backfill(self, arrival, duration):
        """General :meth:`allocate` path: find the earliest fitting gap.

        Split out so the DMA hot loop (which has already inlined and
        failed the saturated-FIFO fast path) can enter here directly
        without re-checking it.  Same candidate rule and merge epsilon
        as the fast path.
        """
        starts = self._starts
        ends = self._ends
        n = len(starts)
        # First index whose start exceeds `arrival` — identical to
        # bisecting the old (start, end) tuple list with (arrival, inf).
        index = bisect.bisect_right(starts, arrival)
        # The previous interval may still cover `arrival`.
        if index > 0 and ends[index - 1] > arrival:
            candidate = ends[index - 1]
        else:
            candidate = arrival
        while index < n:
            if starts[index] - candidate >= duration:
                break
            end = ends[index]
            if end > candidate:
                candidate = end
            index += 1
        start, end = candidate, candidate + duration
        starts.insert(index, start)
        ends.insert(index, end)
        # Merge with successor(s) and predecessor if touching.
        while index + 1 < len(starts) and (
            starts[index + 1] <= ends[index] + 1e-9
        ):
            if ends[index + 1] > ends[index]:
                ends[index] = ends[index + 1]
            del starts[index + 1]
            del ends[index + 1]
        while index > 0 and starts[index] <= ends[index - 1] + 1e-9:
            if ends[index] > ends[index - 1]:
                ends[index - 1] = ends[index]
            del starts[index]
            del ends[index]
            index -= 1
        return start, end

    def compact(self, cutoff):
        """Retire intervals that end before ``cutoff``.

        Callers guarantee every future ``allocate`` arrives at or after
        ``cutoff`` plus a safety margin larger than the merge epsilon, so
        the retired prefix can never be bisected into, backfilled around,
        or merged with again — dropping it is invisible to all future
        results.  Occupancy is preserved in :attr:`busy_time`.  This
        keeps the interval list short (the live frontier only) so the
        general allocate path stays O(frontier), not O(history).
        """
        starts = self._starts
        ends = self._ends
        drop = 0
        n = len(starts)
        while drop < n and ends[drop] < cutoff:
            drop += 1
        if drop:
            retired = 0.0
            for i in range(drop):
                retired += ends[i] - starts[i]
            self._retired_busy += retired
            del starts[:drop]
            del ends[:drop]

    @property
    def _intervals(self):
        """Read-only ``(start, end)`` tuple view (tests and debugging)."""
        return list(zip(self._starts, self._ends))

    def validate(self, epsilon=1e-9):
        """Structural invariants of the interval lists.

        Returns a list of human-readable violation strings (empty when
        healthy): the parallel lists must be equal length, every
        interval must have non-negative extent, starts must be strictly
        increasing, and consecutive intervals must not overlap (beyond
        the merge epsilon — touching intervals would have been merged).
        Used by the runtime sanitizer (``repro.piuma.invariants``) at
        ``check_level>=2``.
        """
        starts = self._starts
        ends = self._ends
        problems = []
        if len(starts) != len(ends):
            problems.append(
                f"parallel lists diverged ({len(starts)} starts, "
                f"{len(ends)} ends)"
            )
            return problems
        for i in range(len(starts)):
            if ends[i] < starts[i]:
                problems.append(
                    f"interval {i} has negative extent "
                    f"[{starts[i]:.3f}, {ends[i]:.3f}]"
                )
            if i and starts[i] < ends[i - 1] - epsilon:
                problems.append(
                    f"interval {i} [{starts[i]:.3f}, {ends[i]:.3f}] "
                    f"overlaps predecessor ending {ends[i - 1]:.3f}"
                )
        if self._retired_busy < 0:
            problems.append(f"negative retired busy {self._retired_busy}")
        return problems

    @property
    def busy_time(self):
        busy = self._retired_busy
        starts = self._starts
        ends = self._ends
        for i in range(len(starts)):
            busy += ends[i] - starts[i]
        return busy


class DRAMSlice:
    """One core's slice of the distributed global address space.

    Service = bandwidth occupancy on a gap-backfilling timeline;
    completion additionally pays the (swept) DRAM access latency.

    A degraded slice (``repro.piuma.degradation``) may additionally
    carry periodic *stall windows*: every ``stall_period_ns`` the slice
    freezes for ``stall_duration_ns`` (refresh storm, thermal throttle)
    and arrivals inside the window are deferred to its end before
    normal service begins.  Deferral only moves arrivals *later*, so
    all conservation accounting is untouched — the bytes are still
    served, just after the window.
    """

    __slots__ = ("rate", "latency_ns", "name", "stall_period_ns",
                 "stall_duration_ns", "_timeline", "_priority_horizon",
                 "_priority_busy", "bytes_served", "requests")

    def __init__(self, bandwidth_bytes_per_ns, latency_ns, name="",
                 stall_period_ns=0.0, stall_duration_ns=0.0):
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        if stall_period_ns < 0 or stall_duration_ns < 0:
            raise ValueError("stall window must be non-negative")
        if stall_period_ns and stall_duration_ns >= stall_period_ns:
            raise ValueError("stall_duration_ns must be < stall_period_ns")
        self.rate = bandwidth_bytes_per_ns
        self.latency_ns = latency_ns
        self.name = name
        self.stall_period_ns = stall_period_ns
        self.stall_duration_ns = stall_duration_ns
        self._timeline = Timeline()
        self._priority_horizon = 0.0
        self._priority_busy = 0.0
        self.bytes_served = 0.0
        self.requests = 0

    def _stall_defer(self, now):
        """Earliest non-stalled instant at or after ``now``.

        Arrivals in ``[k*period, k*period + duration)`` wait for the
        window end; anything else passes through.  Idempotent — the
        returned instant is itself outside every window.
        """
        phase = now % self.stall_period_ns
        if phase < self.stall_duration_ns:
            return now + (self.stall_duration_ns - phase)
        return now

    def request(self, now, nbytes, priority=False):
        """Access ``nbytes`` arriving at ``now``; returns completion time.

        ``priority`` requests model the controller's demand-read queue:
        small pipeline loads (NNZ fetches) are arbitrated ahead of bulk
        DMA streams, so they pay latency plus service plus queueing only
        against *other* demand reads — never behind kilobytes of queued
        DMA payloads.  They are a ~2% byte fraction, so charging their
        service outside the bulk timeline keeps capacity accounting
        honest to within that margin.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not priority:
            return self.bulk_request(now, nbytes)
        if self.stall_period_ns:
            now = self._stall_defer(now)
        self.bytes_served += nbytes
        self.requests += 1
        service = nbytes / self.rate
        # Jump ahead of queued bulk transfers, but still consume
        # capacity: the stolen bandwidth is charged to the timeline
        # so bulk traffic is pushed back and total throughput can
        # never exceed the rate.
        self._timeline.allocate(now, service)
        start = max(now, self._priority_horizon)
        end = start + service
        self._priority_horizon = end
        self._priority_busy += service
        return end + self.latency_ns

    def bulk_request(self, now, nbytes):
        """Non-priority :meth:`request` with the saturated-FIFO timeline
        fast path inlined (the DMA inner loop runs through here a couple
        of times per simulated edge).  Bit-identical to
        ``Timeline.allocate``: same candidate rule, same merge epsilon.
        """
        if self.stall_period_ns:
            now = self._stall_defer(now)
        self.bytes_served += nbytes
        self.requests += 1
        service = nbytes / self.rate
        timeline = self._timeline
        starts = timeline._starts
        if starts and now >= starts[-1]:
            ends = timeline._ends
            last_end = ends[-1]
            start = last_end if last_end > now else now
            end = start + service
            if start <= last_end + 1e-9:
                if end > last_end:
                    ends[-1] = end
            else:
                starts.append(start)
                ends.append(end)
            return end + self.latency_ns
        _start, end = timeline.backfill(now, service)
        return end + self.latency_ns

    def retire_before(self, cutoff):
        """Compact timeline history that ends before ``cutoff``.

        The simulator calls this periodically with the current global
        event time minus a safety margin; see :meth:`Timeline.compact`.
        """
        self._timeline.compact(cutoff)

    @property
    def busy_time(self):
        """Total transfer occupancy (bulk and priority combined)."""
        return self._timeline.busy_time

    @property
    def priority_busy_time(self):
        """Service time consumed by demand-read (priority) requests.

        Priority service is *also* charged to the bulk timeline (it
        steals capacity), so this is a sub-account of :attr:`busy_time`,
        not an addition to it.
        """
        return self._priority_busy

    def utilization(self, horizon):
        """Fraction of ``[0, horizon]`` this slice was transferring."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)

    def priority_utilization(self, horizon):
        """Fraction of ``[0, horizon]`` spent serving demand reads."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self._priority_busy / horizon)
