"""Runtime invariant sanitizer for the PIUMA discrete-event simulator.

Every conclusion the reproduction draws is a memory-system accounting
claim, so a silent accounting bug in the simulator corrupts everything
downstream.  This module is the guard rail that lets the hot paths keep
being rewritten (DESIGN.md, "Host performance") without fear: a
pluggable checker that watches both engine main loops and the shared
resources, raising a structured
:class:`~repro.runtime.errors.InvariantViolation` the moment the
simulation's books stop balancing.

``PIUMAConfig.check_level`` selects the depth:

* **0** (default) — checking fully disabled; the simulator does not
  even construct a checker, so the hot loops are untouched.
* **1** — cheap per-event checks (event-time monotonicity, thread
  state-machine legality) plus post-run resource accounting
  cross-checks (slice byte/occupancy conservation, DMA engine byte
  conservation, pipeline busy floors, peak-bandwidth ceilings, kernel
  aggregate recomputation).  Overhead on the DES hot loop is bounded
  (<10% on the Fig 5 medium point; enforced by
  ``benchmarks/bench_host_perf.py``).
* **2** — everything above, plus per-op ledgers (DMA bytes requested
  vs serviced, per-tag stats recomputation, DRAM byte expectations)
  and periodic structural scans of the DRAM busy-interval timelines.

The checker installs itself the same way :class:`repro.piuma.trace.Tracer`
does — by binding the instance ``_execute`` slot — so both the fast and
the reference main loop route every op through it, and a Tracer stacked
on top keeps working.
"""

from __future__ import annotations

from repro.piuma.ops import (
    AtomicUpdate,
    Compute,
    DMAOp,
    Load,
    PhaseMarker,
    SequentialAccess,
    Store,
)
from repro.runtime.errors import InvariantViolation

#: Registry of every named invariant the sanitizer can report, with the
#: level at which it becomes active.  The ``invariant`` field of a
#: raised :class:`InvariantViolation` is always one of these keys.
INVARIANTS = {
    "event-monotonicity": (1, "global event time never decreases"),
    "thread-legality": (1, "op resume/completion times respect "
                           "now <= resume <= completion"),
    "slice-busy-bound": (1, "DRAM-slice busy time never exceeds the "
                            "simulated wall clock"),
    "slice-byte-conservation": (1, "slice timeline occupancy x rate "
                                   "equals the bytes it served"),
    "slice-peak-bandwidth": (1, "slice throughput never exceeds its "
                                "configured peak bandwidth"),
    "priority-subaccount": (1, "priority (demand-read) busy time is a "
                               "sub-account of total slice busy time"),
    "engine-byte-conservation": (1, "DMA descriptor bookkeeping matches "
                                    "the engine's fluid occupancy"),
    "pipeline-busy-floor": (1, "fluid resources are busy at least as "
                               "long as their served units require"),
    "result-recompute": (1, "KernelResult aggregates match sums "
                            "recomputed from the raw simulator state"),
    "degradation-silence": (1, "hardware disabled by the degradation "
                               "spec stays silent: dead pipelines "
                               "execute nothing, dead DMA engines "
                               "accept no descriptors"),
    "scheduler-drained": (1, "the event scheduler is empty after a "
                             "completed run and its size counters "
                             "match the entries physically present — "
                             "no stranded or double-counted events in "
                             "any backend"),
    "program-replay-complete": (1, "the vector engine replayed every "
                                   "compiled op program to its end — "
                                   "no thread stopped mid-program"),
    "dma-request-conservation": (2, "DMA bytes requested by ops equal "
                                    "bytes the engines moved"),
    "dram-byte-ledger": (2, "slice bytes served equal the per-op DRAM "
                            "byte ledger"),
    "stats-recompute": (2, "per-tag stats match independently "
                           "recomputed counts and bytes"),
    "timeline-order": (2, "DRAM busy-interval timelines stay sorted "
                          "and non-overlapping"),
}

#: Ops between two structural timeline scans at ``check_level>=2``.
_SCAN_PERIOD = 4096


def violation(name, message):
    """Build the structured error for one named invariant."""
    if name not in INVARIANTS:
        raise ValueError(f"unknown invariant {name!r}")
    return InvariantViolation(message, invariant=name)


class InvariantChecker:
    """Watches one :class:`~repro.piuma.engine.Simulator` run.

    Constructed (and installed) by ``Simulator.__init__`` when
    ``config.check_level > 0``; :meth:`after_run` is invoked by
    ``Simulator.run`` once the main loop completes.
    """

    __slots__ = (
        "simulator", "level", "last_event_ns", "op_count",
        "dma_requested", "dram_expected", "tag_counts", "tag_bytes",
    )

    def __init__(self, simulator, level):
        if level < 1:
            raise ValueError("checker requires check_level >= 1")
        self.simulator = simulator
        self.level = level
        self.last_event_ns = 0.0
        self.op_count = 0
        self.dma_requested = 0.0
        self.dram_expected = 0.0
        self.tag_counts = {}
        self.tag_bytes = {}
        self._install(simulator)

    # -- per-op hook ---------------------------------------------------------

    def _install(self, sim):
        """Bind the checking wrapper as the instance ``_execute``.

        The wrapper dispatches through the simulator's type table
        directly (one call instead of two per op) and then runs the
        per-event checks; all mutable check state lives on this slotted
        checker, reached through one closure cell.
        """
        dispatch_get = sim._dispatch.get
        state = self
        level2 = self.level >= 2

        def checked_execute(op, now, core, mtp):
            handler = dispatch_get(op.__class__)
            if handler is None:
                raise TypeError(f"unknown op {op!r}")
            resume, completion = handler(op, now, core, mtp)
            # Event-time monotonicity: both main loops execute ops in
            # global event order (the fast path's peek-ahead provably
            # preserves it), so the issue time seen here can never run
            # backwards.
            if now < state.last_event_ns:
                raise violation(
                    "event-monotonicity",
                    f"event time ran backwards: {now:.3f} ns after "
                    f"{state.last_event_ns:.3f} ns ({op!r})",
                )
            state.last_event_ns = now
            # Thread state-machine legality: a thread resumes at or
            # after the op's issue time, and the op's side effects can
            # complete no earlier than the thread resumes.
            if resume < now or completion < resume:
                raise violation(
                    "thread-legality",
                    f"illegal thread transition for {op!r}: issued at "
                    f"{now:.3f} ns, resume {resume:.3f} ns, completion "
                    f"{completion:.3f} ns",
                )
            if level2:
                state._track(op)
            return resume, completion

        sim._execute = checked_execute

    def _track(self, op):
        """Level-2 per-op ledgers (bytes by destination, stats by tag)."""
        cls = op.__class__
        if cls is DMAOp:
            nbytes = op.nbytes
            self.dma_requested += nbytes
            stat_bytes = nbytes
            if op.kind != "internal":
                self.dram_expected += nbytes
        elif cls is Load:
            stat_bytes = op.nbytes
            self.dram_expected += stat_bytes
        elif cls is SequentialAccess:
            stat_bytes = op.n_rounds * op.bytes_per_round
            self.dram_expected += stat_bytes
        elif cls is Store:
            stat_bytes = op.nbytes
            self.dram_expected += stat_bytes
        elif cls is AtomicUpdate:
            stat_bytes = 2 * op.nbytes
            self.dram_expected += stat_bytes
        elif cls is Compute:
            stat_bytes = 0
        else:  # PhaseMarker and friends: no accounting at all
            return
        tag = op.tag
        self.tag_counts[tag] = self.tag_counts.get(tag, 0) + 1
        self.tag_bytes[tag] = self.tag_bytes.get(tag, 0.0) + stat_bytes
        self.op_count += 1
        if not self.op_count % _SCAN_PERIOD:
            self.scan_timelines()

    # -- post-run checks -----------------------------------------------------

    def scan_timelines(self):
        """Structural scan of every slice's busy-interval timeline."""
        for slice_ in self.simulator.slices:
            problems = slice_._timeline.validate()
            if problems:
                raise violation(
                    "timeline-order",
                    f"{slice_.name}: " + "; ".join(problems),
                )
            if slice_._priority_busy < 0 or slice_._priority_horizon < 0:
                raise violation(
                    "priority-subaccount",
                    f"{slice_.name}: negative priority accounting "
                    f"(busy {slice_._priority_busy:.3f}, horizon "
                    f"{slice_._priority_horizon:.3f})",
                )

    def after_run(self):
        """Post-run cross-checks against the completed simulator state."""
        sim = self.simulator
        # A completed run must have consumed every queued event, and the
        # scheduler's O(1) size counters must agree with the entries
        # physically present (the calendar queue's bucket ring keeps a
        # separate ring_size; drift there is the classic lost-event bug
        # class of bucketed schedulers).
        scheduler = getattr(sim, "_scheduler", None)
        if scheduler is not None:
            counted = len(scheduler)
            present = scheduler.stranded()
            if counted or present:
                raise violation(
                    "scheduler-drained",
                    f"{type(scheduler).__name__} reports {counted} "
                    f"queued entr{'y' if counted == 1 else 'ies'} after "
                    f"run() with {present} physically present — "
                    "stranded events or corrupted size accounting",
                )
        # Vector-engine replay completeness: a completed run must have
        # consumed every step of every compiled program (the analogue of
        # a generator thread reaching StopIteration).  `_program_pcs` is
        # populated only by the vector loop; the other engines drive the
        # programs' generator views and are covered by scheduler-drained.
        pcs = getattr(sim, "_program_pcs", None)
        if pcs is not None:
            for idx, program in sim._programs.items():
                done = pcs[idx]
                total = len(program)
                if done != total:
                    raise violation(
                        "program-replay-complete",
                        f"thread {idx} replayed {done} of {total} "
                        "compiled program steps",
                    )
        if self.level >= 2:
            # Structural problems first: a corrupted timeline makes the
            # occupancy sums below meaningless, so attribute the failure
            # to the structure, not to a derived conservation check.
            self.scan_timelines()
        horizon = sim.end_time
        tol_ns = 1e-6 * (horizon + 1.0)
        for slice_ in sim.slices:
            busy = slice_.busy_time
            nbytes = slice_.bytes_served
            if busy > horizon + tol_ns:
                raise violation(
                    "slice-busy-bound",
                    f"{slice_.name} busy {busy:.3f} ns exceeds the "
                    f"{horizon:.3f} ns wall clock",
                )
            # The timeline is charged exactly nbytes / rate per request
            # (bulk and priority alike), so occupancy x rate must equal
            # the served bytes.  Losing either side of that equation is
            # the classic silent accounting bug.
            drift = abs(busy * slice_.rate - nbytes)
            if drift > 1e-6 * nbytes + 1.0:
                raise violation(
                    "slice-byte-conservation",
                    f"{slice_.name} served {nbytes:.1f} B but its "
                    f"timeline explains {busy * slice_.rate:.1f} B "
                    f"(busy {busy:.3f} ns at {slice_.rate:g} B/ns)",
                )
            if nbytes > slice_.rate * (horizon + tol_ns) + 1.0:
                raise violation(
                    "slice-peak-bandwidth",
                    f"{slice_.name} served {nbytes:.1f} B in "
                    f"{horizon:.3f} ns — exceeds the configured "
                    f"{slice_.rate:g} B/ns peak",
                )
            priority = slice_.priority_busy_time
            if priority < 0 or priority > busy + tol_ns:
                raise violation(
                    "priority-subaccount",
                    f"{slice_.name} priority busy {priority:.3f} ns "
                    f"outside [0, {busy:.3f}] ns total busy",
                )
        for engine in sim.dma_engines:
            drift = abs(engine.bytes_moved - engine.streamed_bytes)
            if drift > 1e-6 * engine.bytes_moved + 1e-6:
                raise violation(
                    "engine-byte-conservation",
                    f"dma{engine.core_id} bookkeeping moved "
                    f"{engine.bytes_moved:.1f} B but its fluid engine "
                    f"served {engine.streamed_bytes:.1f} B",
                )
            if engine.ops != engine.requests:
                raise violation(
                    "engine-byte-conservation",
                    f"dma{engine.core_id} accepted {engine.ops} ops but "
                    f"its fluid engine saw {engine.requests} requests",
                )
        fluids = [p for row in sim.pipelines for p in row]
        fluids += sim.atomic_units
        fluids += [e._engine for e in sim.dma_engines]
        fluids += list(sim.network._injection)
        for resource in fluids:
            floor = resource.units_served / resource.rate
            if resource.busy_time + 1e-6 * (floor + 1.0) < floor:
                raise violation(
                    "pipeline-busy-floor",
                    f"{resource.name} busy {resource.busy_time:.3f} ns "
                    f"cannot have served {resource.units_served:.1f} "
                    f"units at {resource.rate:g}/ns "
                    f"(needs >= {floor:.3f} ns)",
                )
        degradation = getattr(sim, "degradation", None)
        if degradation is not None:
            # Disabled hardware must stay silent.  Work redistribution
            # (thread_placements) may never place a thread on a dead
            # core or MTP, and no kernel may slip a descriptor past a
            # dead DMA engine.  Note the *slices* and atomic units of a
            # dead core stay in service deliberately — the distributed
            # global address space survives the core's compute — so
            # only pipelines and DMA engines are checked.
            for core in degradation.dead_cores:
                for pipe in sim.pipelines[core]:
                    if pipe.requests:
                        raise violation(
                            "degradation-silence",
                            f"{pipe.name} on dead core {core} executed "
                            f"{pipe.requests} reservations",
                        )
            for core, mtp in degradation.dead_mtps:
                pipe = sim.pipelines[core][mtp]
                if pipe.requests:
                    raise violation(
                        "degradation-silence",
                        f"dead pipeline {pipe.name} executed "
                        f"{pipe.requests} reservations",
                    )
            for core in degradation.dead_dma:
                engine = sim.dma_engines[core]
                if engine.ops or engine.requests:
                    raise violation(
                        "degradation-silence",
                        f"dead dma{core} accepted {engine.ops} ops",
                    )
        if self.level >= 2:
            self._check_ledgers()

    def _check_ledgers(self):
        """Level-2 conservation: per-op ledgers vs engine-side sums."""
        sim = self.simulator
        moved = sum(e.bytes_moved for e in sim.dma_engines)
        if abs(moved - self.dma_requested) > 1e-6 * self.dma_requested + 1.0:
            raise violation(
                "dma-request-conservation",
                f"DMA ops requested {self.dma_requested:.1f} B but the "
                f"engines moved {moved:.1f} B",
            )
        served = sum(s.bytes_served for s in sim.slices)
        if abs(served - self.dram_expected) > 1e-6 * self.dram_expected + 1.0:
            raise violation(
                "dram-byte-ledger",
                f"slices served {served:.1f} B but executed ops "
                f"prescribe {self.dram_expected:.1f} B",
            )
        stats = sim.stats
        tags = set(stats) | set(self.tag_counts)
        for tag in sorted(tags):
            record = stats.get(tag)
            count = record.count if record is not None else 0
            nbytes = record.bytes if record is not None else 0.0
            want_count = self.tag_counts.get(tag, 0)
            want_bytes = self.tag_bytes.get(tag, 0.0)
            if count != want_count:
                raise violation(
                    "stats-recompute",
                    f"tag {tag!r}: stats count {count} but "
                    f"{want_count} ops executed",
                )
            if abs(nbytes - want_bytes) > 1e-6 * want_bytes + 1.0:
                raise violation(
                    "stats-recompute",
                    f"tag {tag!r}: stats bytes {nbytes:.1f} but ops "
                    f"prescribe {want_bytes:.1f}",
                )


def verify_kernel_result(result, simulator, config):
    """Cross-check :class:`~repro.piuma.kernels.KernelResult` aggregates.

    Recomputes the derived quantities (steady-state throughput,
    projection, utilization, achieved bandwidth) from the raw simulator
    state and compares them against what the kernel runner stored —
    catching drift between the accounting and the reporting layer.
    Called by ``run_spmm_kernel`` when ``config.check_level >= 1``.
    """
    end = simulator.end_time
    if result.sim_time_ns != end:
        raise violation(
            "result-recompute",
            f"sim_time_ns {result.sim_time_ns} != simulator end_time {end}",
        )
    if result.events != simulator.events:
        raise violation(
            "result-recompute",
            f"events {result.events} != simulator events "
            f"{simulator.events}",
        )
    launch = config.launch_overhead_ns
    setup = min(simulator.setup_end, end - launch)
    steady = max(end - launch - setup, 1e-9)
    flops = 2.0 * result.window_edges * result.embedding_dim
    gflops = flops / steady
    if abs(result.gflops - gflops) > 1e-9 * max(gflops, 1.0):
        raise violation(
            "result-recompute",
            f"gflops {result.gflops} != recomputed {gflops} "
            f"(steady window {steady:.3f} ns)",
        )
    if gflops > 0:
        total_flops = 2.0 * result.total_edges * result.embedding_dim
        projected = launch + setup + total_flops / gflops
        if abs(result.projected_time_ns - projected) > 1e-9 * projected:
            raise violation(
                "result-recompute",
                f"projected_time_ns {result.projected_time_ns} != "
                f"recomputed {projected}",
            )
    slices = simulator.slices
    horizon = end or 1.0
    utilization = sum(
        min(1.0, s.busy_time / horizon) for s in slices
    ) / len(slices)
    if not 0.0 <= result.memory_utilization <= 1.0 or abs(
        result.memory_utilization - utilization
    ) > 1e-9:
        raise violation(
            "result-recompute",
            f"memory_utilization {result.memory_utilization} != "
            f"recomputed {utilization}",
        )
    served = sum(s.bytes_served for s in slices)
    bandwidth = served / end if end else 0.0
    if abs(result.achieved_bandwidth - bandwidth) > 1e-9 * max(bandwidth, 1.0):
        raise violation(
            "result-recompute",
            f"achieved_bandwidth {result.achieved_bandwidth} != "
            f"recomputed {bandwidth}",
        )
    for tag, stats in result.tag_stats.items():
        if stats.count < 0 or stats.bytes < 0 or stats.wait_ns < -1e-9:
            raise violation(
                "result-recompute",
                f"tag {tag!r} has negative accounting: {stats!r}",
            )
