"""Discrete-event simulator core.

Threads are Python generators yielding :mod:`repro.piuma.ops` records;
the simulator executes each op against fluid resources (MTP pipelines,
DMA engines, DRAM slices, network ports) and resumes the generator at
the op's completion (blocking ops) or issue time (asynchronous ops).
The event queue therefore holds exactly one entry per runnable thread —
the simulation costs one heap operation per yielded op.

This is a *down-scaled* simulator in the sense of the paper's ref [18]:
kernels simulate a bounded edge window at full mechanism fidelity and
project steady-state throughput to the full graph.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro.piuma.dma import DMAEngine
from repro.piuma.network import Network
from repro.piuma.ops import (
    AtomicUpdate,
    Compute,
    DMAOp,
    Load,
    PhaseMarker,
    SequentialAccess,
    Store,
)
from repro.piuma.resources import DRAMSlice, FluidResource
from repro.runtime.errors import SimulationDiverged


@dataclass
class TagStats:
    """Aggregate accounting for one op tag."""

    count: int = 0
    bytes: float = 0.0
    wait_ns: float = 0.0  # blocking time charged to threads


class Simulator:
    """Event-driven PIUMA model for one kernel invocation.

    Parameters
    ----------
    config:
        :class:`repro.piuma.config.PIUMAConfig`.
    """

    def __init__(self, config):
        self.config = config
        self.network = Network(config)
        self.slices = [
            DRAMSlice(
                config.slice_bandwidth_bytes_per_ns,
                config.dram_latency_ns,
                name=f"dram{c}",
            )
            for c in range(config.n_cores)
        ]
        self.dma_engines = [DMAEngine(c, config) for c in range(config.n_cores)]
        self.atomic_units = [
            FluidResource(config.atomic_rate_gbps, name=f"atomic{c}")
            for c in range(config.n_cores)
        ]
        # One fluid pipeline per MTP, shared by its threads.
        instr_rate = config.clock_ghz  # instructions per ns
        self.pipelines = [
            [
                FluidResource(instr_rate, name=f"mtp{c}.{m}")
                for m in range(config.mtps_per_core)
            ]
            for c in range(config.n_cores)
        ]
        self.stats = defaultdict(TagStats)
        self.end_time = 0.0
        self.setup_end = 0.0  # latest PhaseMarker across threads
        self._heap = []
        self._seq = 0
        self._threads = []

    # -- thread management ---------------------------------------------------

    def spawn(self, generator, core, mtp):
        """Register a thread generator pinned to (core, mtp)."""
        if not 0 <= core < self.config.n_cores:
            raise ValueError("core out of range")
        if not 0 <= mtp < self.config.mtps_per_core:
            raise ValueError("mtp out of range")
        idx = len(self._threads)
        self._threads.append((generator, core, mtp))
        self._push(0.0, idx, None)

    def _push(self, when, idx, value):
        heapq.heappush(self._heap, (when, self._seq, idx, value))
        self._seq += 1

    # -- op execution ----------------------------------------------------------

    def _memory_read(self, now, src_core, dst_core, nbytes, priority=False):
        """Round trip: request travels to the slice, data comes back."""
        arrival = now + self.network.latency(src_core, dst_core)
        done = self.slices[dst_core].request(arrival, nbytes, priority=priority)
        return done + self.network.latency(dst_core, src_core)

    def _stripe_targets(self, base_core, nbytes):
        """Slices touched by a bulk row access.

        Feature rows are line-interleaved across consecutive slices in
        the DGAS, so a multi-line row (and with it the traffic of a hub
        vertex) spreads over several memory controllers instead of
        hammering one.  Striping is capped to bound simulation cost; the
        cap still spreads hub load well below the per-slice mean.
        """
        cfg = self.config
        lines = max(1, -(-nbytes // cfg.cache_line_bytes))
        n = min(cfg.stripe_lines, lines, cfg.n_cores)
        return [(base_core + i) % cfg.n_cores for i in range(n)]

    def _execute(self, op, now, core, mtp):
        """Run one op; returns (resume_time, completion_time)."""
        pipeline = self.pipelines[core][mtp]
        cfg = self.config
        if isinstance(op, PhaseMarker):
            self.setup_end = max(self.setup_end, now)
            return now, now
        if isinstance(op, Compute):
            _start, end = pipeline.reserve(now, op.n_instrs)
            self._account(op.tag, 0, 0.0)
            return end, end
        if isinstance(op, Load):
            _start, issued = pipeline.reserve(now, op.grouped)
            done = self._memory_read(
                issued, core, op.target_core, op.nbytes, priority=op.priority
            )
            self._account(op.tag, op.nbytes, done - issued)
            return done, done
        if isinstance(op, SequentialAccess):
            # Dependent round trips: the thread's time is (all issue
            # slots) + (bandwidth service of all bytes, with queueing)
            # + one latency round trip per round.  Bytes are charged to
            # the slice in one aggregate reservation at issue time so
            # shared resources are only ever touched in global event
            # order (reserving at future times would corrupt the FIFO
            # horizons of other threads).
            _start, issued = pipeline.reserve(
                now, op.n_rounds * op.instrs_per_round
            )
            total_bytes = op.n_rounds * op.bytes_per_round
            targets = self._stripe_targets(op.target_core, total_bytes)
            share = total_bytes / len(targets)
            served = issued
            worst_trip = 0.0
            for dst in targets:
                hop = self.network.latency(core, dst)
                served = max(
                    served, self.slices[dst].request(issued + hop, share) + hop
                )
                worst_trip = max(
                    worst_trip, 2 * hop + self.slices[dst].latency_ns
                )
            # request() already charged one DRAM latency (plus hops);
            # the remaining n_rounds - 1 dependent trips are pure delay
            # on this thread only.
            done = served + (op.n_rounds - 1) * worst_trip
            self._account(op.tag, total_bytes, done - issued)
            return done, done
        if isinstance(op, Store):
            _start, issued = pipeline.reserve(now, 1)
            targets = self._stripe_targets(op.target_core, op.nbytes)
            share = op.nbytes / len(targets)
            done = issued
            for dst in targets:
                arrival = self.network.transfer(issued, core, dst, share)
                done = max(done, self.slices[dst].request(arrival, share))
            self._account(op.tag, op.nbytes, 0.0)
            return issued, done
        if isinstance(op, AtomicUpdate):
            _start, issued = pipeline.reserve(now, 1)
            arrival = self.network.transfer(
                issued, core, op.target_core, op.nbytes
            )
            _ustart, unit_done = self.atomic_units[op.target_core].reserve(
                arrival, op.nbytes, extra_time=cfg.atomic_overhead_ns
            )
            # RMW: the unit reads the current row and writes the sum.
            done = self.slices[op.target_core].request(
                unit_done, 2 * op.nbytes
            )
            self._account(op.tag, 2 * op.nbytes, 0.0)
            return issued, done
        if isinstance(op, DMAOp):
            _start, issued = pipeline.reserve(now, cfg.dma_issue_instrs)
            engine = self.dma_engines[core]
            if op.kind == "internal":
                _free, done = engine.submit(issued, op.nbytes)
            else:
                targets = [
                    (self.slices[dst], dst)
                    for dst in self._stripe_targets(op.target_core, op.nbytes)
                ]
                _free, done = engine.submit(
                    issued, op.nbytes, targets=targets, network=self.network
                )
            self._account(op.tag, op.nbytes, 0.0)
            return issued, done
        raise TypeError(f"unknown op {op!r}")

    def _account(self, tag, nbytes, wait_ns):
        record = self.stats[tag]
        record.count += 1
        record.bytes += nbytes
        record.wait_ns += wait_ns

    # -- main loop -------------------------------------------------------------

    def run(self):
        """Run all spawned threads to completion; returns kernel ns.

        The returned time includes the STP launch overhead and the
        implicit global barrier (latest completion of any asynchronous
        op), matching how the paper measures kernel time.

        Watchdogs: the config's ``max_events`` / ``max_sim_ns`` /
        ``stall_events`` ceilings bound the loop, raising
        :class:`~repro.runtime.errors.SimulationDiverged` instead of
        spinning forever on a buggy kernel or pathological point.
        """
        cfg = self.config
        latest = 0.0
        events = 0
        stalled = 0
        last_now = -1.0
        while self._heap:
            now, _seq, idx, value = heapq.heappop(self._heap)
            events += 1
            if cfg.max_events and events > cfg.max_events:
                raise SimulationDiverged(
                    f"event ceiling exceeded after {events - 1:,} events "
                    f"at {now:.0f} simulated ns",
                    cause="max_events",
                )
            if cfg.max_sim_ns and now > cfg.max_sim_ns:
                raise SimulationDiverged(
                    f"simulated-time ceiling exceeded "
                    f"({now:.0f} ns > {cfg.max_sim_ns:.0f} ns)",
                    cause="max_sim_ns",
                )
            if now == last_now:
                stalled += 1
                if cfg.stall_events and stalled > cfg.stall_events:
                    raise SimulationDiverged(
                        f"no simulated-time progress over {stalled:,} "
                        f"consecutive events at {now:.0f} ns",
                        cause="stall",
                    )
            else:
                stalled = 0
                last_now = now
            generator, core, mtp = self._threads[idx]
            try:
                op = generator.send(value)
            except StopIteration:
                latest = max(latest, now)
                continue
            resume, completion = self._execute(op, now, core, mtp)
            latest = max(latest, completion)
            self._push(resume, idx, completion)
        self.end_time = latest + self.config.launch_overhead_ns
        return self.end_time

    # -- reporting ---------------------------------------------------------------

    def memory_utilization(self):
        """Mean DRAM-slice busy fraction over the kernel."""
        horizon = self.end_time or 1.0
        values = [s.utilization(horizon) for s in self.slices]
        return sum(values) / len(values)

    def priority_memory_utilization(self):
        """Mean DRAM-slice demand-read (priority) busy fraction.

        A sub-account of :meth:`memory_utilization`: priority service
        also occupies the bulk timeline, so this reports how much of the
        slice occupancy is pipeline demand reads rather than DMA bulk.
        """
        horizon = self.end_time or 1.0
        values = [s.priority_utilization(horizon) for s in self.slices]
        return sum(values) / len(values)

    def bytes_served(self):
        return sum(s.bytes_served for s in self.slices)

    def achieved_bandwidth(self):
        """System-wide achieved DRAM bandwidth in bytes/ns (== GB/s)."""
        if not self.end_time:
            return 0.0
        return self.bytes_served() / self.end_time
