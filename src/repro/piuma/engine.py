"""Discrete-event simulator core.

Threads are Python generators yielding :mod:`repro.piuma.ops` records;
the simulator executes each op against fluid resources (MTP pipelines,
DMA engines, DRAM slices, network ports) and resumes the generator at
the op's completion (blocking ops) or issue time (asynchronous ops).
The event queue therefore holds exactly one entry per runnable thread —
the simulation costs at most one heap operation per yielded op.

This is a *down-scaled* simulator in the sense of the paper's ref [18]:
kernels simulate a bounded edge window at full mechanism fidelity and
project steady-state throughput to the full graph.

Two main loops implement identical semantics (see DESIGN.md, "Host
performance"):

* the **fast path** (``PIUMAConfig.engine_fast_path=True``, default)
  dispatches ops through a type table and keeps driving a thread's
  generator without heap traffic while its resume time precedes every
  other queued event (peek-ahead continuation);
* the **reference path** (``engine_fast_path=False``) is the plain
  pop/execute/push loop with an ``isinstance`` ladder.

Both produce bit-identical results — same ``end_time``, per-tag stats,
resource utilizations, and watchdog/event accounting — which the
differential suite in ``tests/piuma/test_engine_fastpath.py`` enforces.
"""

from __future__ import annotations

import heapq
import time
from bisect import insort
from collections import defaultdict

from repro.piuma.degradation import DegradationModel
from repro.piuma.dma import DMAEngine
from repro.piuma.network import Network
from repro.piuma.ops import (
    AtomicUpdate,
    Compute,
    DMAOp,
    Load,
    PhaseMarker,
    SequentialAccess,
    Store,
)
from repro.piuma.invariants import InvariantChecker
from repro.piuma.resources import DRAMSlice, FluidResource
from repro.piuma.scheduler import make_scheduler
from repro.runtime.errors import HardwareExhausted, SimulationDiverged


class TagStats:
    """Aggregate accounting for one op tag.

    A hand-written ``__slots__`` class (not a dataclass): three fields
    are updated once per executed op, and slot stores are measurably
    cheaper than instance-dict stores on that path.
    """

    __slots__ = ("count", "bytes", "wait_ns")

    def __init__(self, count=0, bytes=0.0, wait_ns=0.0):
        self.count = count
        self.bytes = bytes
        self.wait_ns = wait_ns  # blocking time charged to threads

    def __repr__(self):
        return (
            f"TagStats(count={self.count}, bytes={self.bytes}, "
            f"wait_ns={self.wait_ns})"
        )

    def __eq__(self, other):
        if not isinstance(other, TagStats):
            return NotImplemented
        return (
            self.count == other.count
            and self.bytes == other.bytes
            and self.wait_ns == other.wait_ns
        )


class Simulator:
    """Event-driven PIUMA model for one kernel invocation.

    Parameters
    ----------
    config:
        :class:`repro.piuma.config.PIUMAConfig`.

    Attributes
    ----------
    events:
        Generator resumptions executed by the last :meth:`run` (the
        DES event count; identical on both engine paths).
    host_wall_s:
        Host wall-clock seconds the last :meth:`run` took.
    """

    def __init__(self, config):
        self.config = config
        # Resolved degradation state (None on a healthy fabric).  Static
        # for the simulator's lifetime: both main loops see identical
        # link/slice/engine/pipeline state, which is what keeps them
        # bit-identical under faults.
        degradation = DegradationModel.for_config(config)
        self.degradation = degradation
        self.network = Network(config, degradation=degradation)
        if degradation is None:
            self.slices = [
                DRAMSlice(
                    config.slice_bandwidth_bytes_per_ns,
                    config.dram_latency_ns,
                    name=f"dram{c}",
                )
                for c in range(config.n_cores)
            ]
            self.dma_engines = [
                DMAEngine(c, config) for c in range(config.n_cores)
            ]
        else:
            self.slices = []
            self.dma_engines = []
            for c in range(config.n_cores):
                bw, lat, period, duration = degradation.slice_parameters(
                    c, config.slice_bandwidth_bytes_per_ns,
                    config.dram_latency_ns,
                )
                self.slices.append(DRAMSlice(
                    bw, lat, name=f"dram{c}",
                    stall_period_ns=period, stall_duration_ns=duration,
                ))
                alive, fail_period, backoff = degradation.dma_parameters(c)
                self.dma_engines.append(DMAEngine(
                    c, config, alive=alive, fail_period=fail_period,
                    retry_backoff_ns=backoff,
                ))
        self.atomic_units = [
            FluidResource(config.atomic_rate_gbps, name=f"atomic{c}")
            for c in range(config.n_cores)
        ]
        # One fluid pipeline per MTP, shared by its threads.
        instr_rate = config.clock_ghz  # instructions per ns
        self.pipelines = [
            [
                FluidResource(instr_rate, name=f"mtp{c}.{m}")
                for m in range(config.mtps_per_core)
            ]
            for c in range(config.n_cores)
        ]
        self.stats = defaultdict(TagStats)
        self.end_time = 0.0
        self.setup_end = 0.0  # latest PhaseMarker across threads
        self.events = 0
        self.host_wall_s = 0.0
        # Event-scheduler backend (repro.piuma.scheduler).  Both main
        # loops and the sanitizer talk to it through push/pop/peek;
        # `_heap` stays bound to the heap backend's raw entry list so
        # the fast-path loop keeps its fused heappushpop switch.
        self._scheduler = make_scheduler(config.resolved_scheduler)
        self._heap = getattr(self._scheduler, "entries", [])
        self._seq = 0
        self._threads = []
        # Compiled op programs by thread index (repro.piuma.ops
        # .OpProgram, registered via spawn_program).  The vector engine
        # replays these directly; every other engine drives the
        # program's generator view, so a program-backed thread behaves
        # identically under all main loops.
        self._programs = {}
        # Vector-engine compile state (repro.piuma.vector_engine
        # .compile_thread): per-(op, core, mtp) plan-closure cache,
        # deferred-counter table, and per-thread replay rows, built
        # incrementally at spawn_program time so run() only replays.
        self._vector_state = None
        # Vector-engine replay cursors (thread index -> next step),
        # populated by _run_vector for the sanitizer's post-run
        # completeness check.
        self._program_pcs = None
        # Memoized topology tables: stripe-target core lists and the
        # matching (slice, core) pairs for DMA, both keyed by
        # (base_core, stripe count) — recomputing them per edge was a
        # measurable share of host time.
        self._stripe_cache = {}
        self._dma_target_cache = {}
        # Constants of the inlined DMA issue-slot reserve (identical
        # floats to FluidResource.reserve's `amount / rate + 0.0`).
        self._dma_issue_instrs = config.dma_issue_instrs
        self._dma_issue_cost = config.dma_issue_instrs / instr_rate + 0.0
        # Type-dispatch table replacing the isinstance ladder: one dict
        # lookup selects the handler.  The DMA handler — a couple of
        # invocations per simulated edge — is a closure over pre-bound
        # resources rather than a method, eliminating both the
        # per-invocation ``self`` lookups and the layered calls.
        self._dispatch = {
            PhaseMarker: self._exec_phase_marker,
            Compute: self._exec_compute,
            Load: self._exec_load,
            SequentialAccess: self._exec_sequential,
            Store: self._exec_store,
            AtomicUpdate: self._exec_atomic,
            DMAOp: self._make_exec_dma(),
        }
        # Runtime invariant sanitizer (repro.piuma.invariants): at
        # check_level>=1 it installs an instance `_execute` wrapper —
        # the same hook a Tracer uses — so both main loops route every
        # op through it; at level 0 nothing is constructed and the hot
        # loops keep the direct-dispatch path.
        self.checker = (
            InvariantChecker(self, config.check_level)
            if config.check_level
            else None
        )

    # -- thread management ---------------------------------------------------

    def spawn(self, generator, core, mtp):
        """Register a thread generator pinned to (core, mtp)."""
        if not 0 <= core < self.config.n_cores:
            raise ValueError("core out of range")
        if not 0 <= mtp < self.config.mtps_per_core:
            raise ValueError("mtp out of range")
        idx = len(self._threads)
        self._threads.append((generator, core, mtp))
        self._push(0.0, idx, None)

    def spawn_program(self, program, core, mtp):
        """Register a compiled :class:`~repro.piuma.ops.OpProgram`.

        The program's generator view goes into the thread table, so the
        fast/calendar/reference loops run it unchanged; the vector loop
        recognizes the registered program and replays it without
        generator resumption.
        """
        if not 0 <= core < self.config.n_cores:
            raise ValueError("core out of range")
        if not 0 <= mtp < self.config.mtps_per_core:
            raise ValueError("mtp out of range")
        idx = len(self._threads)
        self._threads.append((program.replay(), core, mtp))
        self._programs[idx] = program
        if self.config.resolved_engine == "vector":
            from repro.piuma.vector_engine import compile_thread

            compile_thread(self, idx, program, core, mtp)
        self._push(0.0, idx, None)

    def _push(self, when, idx, value):
        self._scheduler.push((when, self._seq, idx, value))
        self._seq += 1

    # -- op execution ----------------------------------------------------------

    def _memory_read(self, now, src_core, dst_core, nbytes, priority=False):
        """Round trip: request travels to the slice, data comes back."""
        arrival = now + self.network.latency(src_core, dst_core)
        done = self.slices[dst_core].request(arrival, nbytes, priority=priority)
        return done + self.network.latency(dst_core, src_core)

    def _stripe_targets(self, base_core, nbytes):
        """Slices touched by a bulk row access.

        Feature rows are line-interleaved across consecutive slices in
        the DGAS, so a multi-line row (and with it the traffic of a hub
        vertex) spreads over several memory controllers instead of
        hammering one.  Striping is capped to bound simulation cost; the
        cap still spreads hub load well below the per-slice mean.

        ``nbytes`` is truncated to an integer before the ceil-division:
        callers that split a payload into fluid shares can pass floats,
        and float ceil-div would let representation noise (e.g.
        ``128.00000000001``) grow the stripe count by one line.
        """
        key = (base_core, nbytes)
        targets = self._stripe_cache.get(key)
        if targets is None:
            cfg = self.config
            lines = (
                int(nbytes) + cfg.cache_line_bytes - 1
            ) // cfg.cache_line_bytes
            if lines < 1:
                lines = 1
            n = min(cfg.stripe_lines, lines, cfg.n_cores)
            n_cores = cfg.n_cores
            targets = [(base_core + i) % n_cores for i in range(n)]
            self._stripe_cache[key] = targets
        return targets

    def _dma_stripe_targets(self, base_core, nbytes):
        """Memoized ``(DRAMSlice, core)`` pairs for a striped DMA access.

        Keyed by the raw ``(base_core, nbytes)`` pair — the kernels
        intern their op shapes, so the key population is tiny and the
        ceil-division runs once per shape instead of once per edge.
        """
        key = (base_core, nbytes)
        targets = self._dma_target_cache.get(key)
        if targets is None:
            cfg = self.config
            lines = (
                int(nbytes) + cfg.cache_line_bytes - 1
            ) // cfg.cache_line_bytes
            if lines < 1:
                lines = 1
            n = min(cfg.stripe_lines, lines, cfg.n_cores)
            slices = self.slices
            n_cores = cfg.n_cores
            targets = [
                (slices[(base_core + i) % n_cores], (base_core + i) % n_cores)
                for i in range(n)
            ]
            self._dma_target_cache[key] = targets
        return targets

    # -- per-op handlers (type-dispatch table) --------------------------------

    def _exec_phase_marker(self, op, now, core, mtp):
        if now > self.setup_end:
            self.setup_end = now
        return now, now

    def _exec_compute(self, op, now, core, mtp):
        _start, end = self.pipelines[core][mtp].reserve(now, op.n_instrs)
        self._account(op.tag, 0, 0.0)
        return end, end

    def _exec_load(self, op, now, core, mtp):
        _start, issued = self.pipelines[core][mtp].reserve(now, op.grouped)
        done = self._memory_read(
            issued, core, op.target_core, op.nbytes, priority=op.priority
        )
        self._account(op.tag, op.nbytes, done - issued)
        return done, done

    def _exec_sequential(self, op, now, core, mtp):
        # Dependent round trips: the thread's time is (all issue
        # slots) + (bandwidth service of all bytes, with queueing)
        # + one latency round trip per round.  Bytes are charged to
        # the slice in one aggregate reservation at issue time so
        # shared resources are only ever touched in global event
        # order (reserving at future times would corrupt the FIFO
        # horizons of other threads).
        _start, issued = self.pipelines[core][mtp].reserve(
            now, op.n_rounds * op.instrs_per_round
        )
        network = self.network
        slices = self.slices
        total_bytes = op.n_rounds * op.bytes_per_round
        targets = self._stripe_targets(op.target_core, total_bytes)
        share = total_bytes / len(targets)
        served = issued
        worst_trip = 0.0
        for dst in targets:
            hop = network.latency(core, dst)
            slice_ = slices[dst]
            done = slice_.request(issued + hop, share) + hop
            if done > served:
                served = done
            trip = 2 * hop + slice_.latency_ns
            if trip > worst_trip:
                worst_trip = trip
        # request() already charged one DRAM latency (plus hops);
        # the remaining n_rounds - 1 dependent trips are pure delay
        # on this thread only.
        done = served + (op.n_rounds - 1) * worst_trip
        self._account(op.tag, total_bytes, done - issued)
        return done, done

    def _exec_store(self, op, now, core, mtp):
        _start, issued = self.pipelines[core][mtp].reserve(now, 1)
        network = self.network
        slices = self.slices
        targets = self._stripe_targets(op.target_core, op.nbytes)
        share = op.nbytes / len(targets)
        done = issued
        for dst in targets:
            arrival = network.transfer(issued, core, dst, share)
            end = slices[dst].request(arrival, share)
            if end > done:
                done = end
        self._account(op.tag, op.nbytes, 0.0)
        return issued, done

    def _exec_atomic(self, op, now, core, mtp):
        _start, issued = self.pipelines[core][mtp].reserve(now, 1)
        arrival = self.network.transfer(
            issued, core, op.target_core, op.nbytes
        )
        _ustart, unit_done = self.atomic_units[op.target_core].reserve(
            arrival, op.nbytes, extra_time=self.config.atomic_overhead_ns
        )
        # RMW: the unit reads the current row and writes the sum.
        done = self.slices[op.target_core].request(
            unit_done, 2 * op.nbytes
        )
        self._account(op.tag, 2 * op.nbytes, 0.0)
        return issued, done

    def _make_exec_dma(self):
        """Build the DMA handler as a closure over pre-bound resources.

        This is the hottest code in the simulator (a couple of
        executions per simulated edge), so the pipeline issue-slot
        reserve, the engine's staging-credit bookkeeping and occupancy,
        the network injection, and the DRAM slice request are all
        inlined here against the resources' slots — bit-identical to
        the layered ``reserve``/``submit``/``transfer``/``request``
        calls they replace (which remain the readable reference
        implementation in ``dma.py``/``resources.py``/``network.py``).
        Both main loops dispatch through this one closure, so the fast
        and reference paths cannot disagree on DMA semantics.
        """
        pipelines = self.pipelines
        engines = self.dma_engines
        stats = self.stats
        network = self.network
        injections = network._injection
        stripe_targets = self._dma_stripe_targets
        issue_cost = self._dma_issue_cost
        issue_instrs = self._dma_issue_instrs
        # Per-(op, core) execution plans.  The kernels intern their op
        # instances and every thread is pinned to one core, so each
        # (op, core) pair recurs thousands of times with the same
        # stripe targets, share, injection port, per-target latency and
        # service time, and staging limit — all of which are pure
        # functions of the op and the topology.  Resolving them once
        # turns the per-invocation work into slot updates only.  Every
        # precomputed float is built from the exact expression the
        # layered path evaluates, so results stay bit-identical.
        #
        # Keys are (id(op), core): op value-equality hashing walks the
        # slots and is far too slow for this path, and identity is the
        # right notion anyway (plans describe the interned instance).
        # `pinned` keeps every planned op alive so its id can never be
        # reused by a different op.
        plans = {}
        plans_get = plans.get
        pinned = []

        def build_plan(op, core):
            engine = engines[core]
            if not engine.alive:
                # Raised before caching: a dead engine never gets a
                # plan, so the fast path below cannot bypass the check.
                raise HardwareExhausted(
                    f"DMA engine on core {core} is dead",
                    cause="dead-dma",
                )
            eng = engine._engine
            nbytes = op.nbytes
            duration = nbytes / eng.rate + engine._overhead_ns
            if op.kind == "internal":
                plan = (None, duration)
            else:
                raw = stripe_targets(op.target_core, nbytes)
                share = nbytes / len(raw)
                inj = injections[core]
                resolved = []
                for memory, dst_core in raw:
                    lat = (
                        None if dst_core == core
                        else network.latency(core, dst_core)
                    )
                    resolved.append((
                        memory, memory._timeline, lat,
                        share / memory.rate, memory.latency_ns,
                    ))
                limit = engine._inflight_limit
                if nbytes > limit:
                    limit = nbytes
                plan = (
                    resolved, duration, share, inj, share / inj.rate, limit
                )
            plans[(id(op), core)] = plan
            pinned.append(op)
            return plan

        def exec_dma(op, now, core, mtp):
            pipe = pipelines[core][mtp]
            busy = pipe.busy_until
            issued = (now if now > busy else busy) + issue_cost
            pipe.busy_until = issued
            pipe.busy_time += issue_cost
            pipe.units_served += issue_instrs
            pipe.requests += 1
            nbytes = op.nbytes
            engine = engines[core]
            eng = engine._engine
            plan = plans_get((id(op), core))
            if plan is None:
                plan = build_plan(op, core)
            if engine._fail_period:
                # Flaky engine: every Nth descriptor fails and is
                # retried after a fixed backoff the issuing thread
                # observes (mirrors DMAEngine.submit/submit_internal).
                # Pure function of descriptor order — identical on both
                # main loops.  The wait is thread delay, not pipeline
                # or engine occupancy, so conservation holds untouched.
                engine._fail_countdown -= 1
                if not engine._fail_countdown:
                    engine._fail_countdown = engine._fail_period
                    engine.retries += 1
                    issued += engine._retry_backoff_ns
            targets = plan[0]
            if targets is None:
                duration = plan[1]
                busy = eng.busy_until
                start = issued if issued > busy else busy
                done = start + duration
                eng.busy_until = done
                eng.busy_time += duration
                eng.units_served += nbytes
                eng.requests += 1
                engine.ops += 1
                engine.bytes_moved += nbytes
            else:
                _targets, duration, share, inj, inj_service, limit = plan
                # Staging-buffer credits (see DMAEngine.submit).
                gate = issued
                inflight = engine._inflight
                inflight_bytes = engine._inflight_bytes
                popleft = inflight.popleft
                while inflight and inflight[0][0] <= gate:
                    inflight_bytes -= popleft()[1]
                while inflight and inflight_bytes + nbytes > limit:
                    retired, size = popleft()
                    inflight_bytes -= size
                    if retired > gate:
                        gate = retired
                # Engine descriptor + streaming occupancy.
                busy = eng.busy_until
                start = gate if gate > busy else busy
                engine_free = start + duration
                eng.busy_until = engine_free
                eng.busy_time += duration
                eng.units_served += nbytes
                eng.requests += 1
                engine.ops += 1
                engine.bytes_moved += nbytes
                # Stripe the payload: inject remote shares, charge each
                # slice's timeline (saturated-FIFO fast path inline).
                completion = start
                for memory, timeline, lat, service, lat_ns in targets:
                    if lat is None:
                        arrival = start
                    else:
                        busy = inj.busy_until
                        sent = (start if start > busy else busy) + inj_service
                        inj.busy_until = sent
                        inj.busy_time += inj_service
                        inj.units_served += share
                        inj.requests += 1
                        arrival = sent + lat
                    if memory.stall_period_ns:
                        # Stalling slice: route through the layered
                        # bulk_request, which applies the stall-window
                        # deferral before the same timeline fast path
                        # (identical service/latency arithmetic).
                        end = memory.bulk_request(arrival, share)
                        if end > completion:
                            completion = end
                        continue
                    memory.bytes_served += share
                    memory.requests += 1
                    starts = timeline._starts
                    if starts and arrival >= starts[-1]:
                        ends = timeline._ends
                        last_end = ends[-1]
                        begin = last_end if last_end > arrival else arrival
                        end = begin + service
                        if begin <= last_end + 1e-9:
                            if end > last_end:
                                ends[-1] = end
                        else:
                            starts.append(begin)
                            ends.append(end)
                    else:
                        _begin, end = timeline.backfill(arrival, service)
                    end += lat_ns
                    if end > completion:
                        completion = end
                inflight.append((completion, nbytes))
                engine._inflight_bytes = inflight_bytes + nbytes
                done = completion
            record = stats[op.tag]
            record.count += 1
            record.bytes += nbytes
            return issued, done

        # The vector engine's plan assembly shares this cache (and its
        # builder) so DMA plans are resolved once per (op, core) no
        # matter which main loop touches them first.
        exec_dma.plans = plans
        exec_dma.build_plan = build_plan
        return exec_dma

    def _execute(self, op, now, core, mtp):
        """Run one op; returns (resume_time, completion_time)."""
        handler = self._dispatch.get(op.__class__)
        if handler is None:
            raise TypeError(f"unknown op {op!r}")
        return handler(op, now, core, mtp)

    def _account(self, tag, nbytes, wait_ns):
        record = self.stats[tag]
        record.count += 1
        record.bytes += nbytes
        record.wait_ns += wait_ns

    # -- main loop -------------------------------------------------------------

    def run(self):
        """Run all spawned threads to completion; returns kernel ns.

        The returned time includes the STP launch overhead and the
        implicit global barrier (latest completion of any asynchronous
        op), matching how the paper measures kernel time.

        Watchdogs: the config's ``max_events`` / ``max_sim_ns`` /
        ``stall_events`` ceilings bound the loop, raising
        :class:`~repro.runtime.errors.SimulationDiverged` instead of
        spinning forever on a buggy kernel or pathological point.

        ``PIUMAConfig.engine_fast_path`` selects the loop and
        ``PIUMAConfig.scheduler`` the event-queue backend: the fast
        path (default) and the reference path produce bit-identical
        results under either scheduler; the reference path exists as
        the escape hatch and the differential-test oracle.
        """
        started = time.perf_counter()
        try:
            engine = self.config.resolved_engine
            if engine == "fast":
                result = self._run_fast()
            elif engine == "vector":
                result = self._run_vector()
            elif engine == "calendar":
                result = self._run_calendar()
            else:
                result = self._run_reference()
            if self.checker is not None:
                self.checker.after_run()
            return result
        finally:
            self.host_wall_s = time.perf_counter() - started

    def _diverged_events(self, events, now):
        return SimulationDiverged(
            f"event ceiling exceeded after {events - 1:,} events "
            f"at {now:.0f} simulated ns",
            cause="max_events",
        )

    def _diverged_sim_ns(self, now):
        return SimulationDiverged(
            f"simulated-time ceiling exceeded "
            f"({now:.0f} ns > {self.config.max_sim_ns:.0f} ns)",
            cause="max_sim_ns",
        )

    def _diverged_stall(self, stalled, now):
        return SimulationDiverged(
            f"no simulated-time progress over {stalled:,} "
            f"consecutive events at {now:.0f} ns",
            cause="stall",
        )

    def _run_fast(self):
        """Peek-ahead main loop (the default).

        After executing an op, if the thread's resume time strictly
        precedes the earliest queued event, the same generator is driven
        again without a heap push/pop — the global event order is
        provably unchanged, because the skipped push would have been
        popped next anyway (a new entry can never beat an equal-time
        queued entry: sequence numbers only grow, and the heap breaks
        time ties by sequence).  Long dependent op chains (SpMM threads)
        therefore bypass most heap churn.

        Event accounting is identical to the reference loop: every
        generator resumption — including the final ``StopIteration``
        — counts as one event, in the same global order, so the
        watchdog ceilings trip at exactly the same point.
        """
        cfg = self.config
        heap = self._heap
        threads = self._threads
        slices = self.slices
        # A Tracer monkey-patches `_execute` on the instance; when it
        # has, every op must route through the patched wrapper.  When it
        # hasn't (the overwhelmingly common case), dispatch straight
        # through the type table and skip the wrapper frame.
        execute = self._execute if "_execute" in self.__dict__ else None
        dispatch_get = self._dispatch.get
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        # Falsy ceilings mean "unbounded"; folding that into an infinite
        # ceiling keeps the per-event watchdog to one comparison each.
        inf = float("inf")
        max_events = cfg.max_events or inf
        max_sim_ns = cfg.max_sim_ns or inf
        stall_limit = cfg.stall_events or inf
        latest = 0.0
        events = 0
        stalled = 0
        last_now = -1.0
        seq = self._seq
        try:
            while heap:
                now, _seq, idx, value = heappop(heap)
                generator, core, mtp = threads[idx]
                while True:
                    events += 1
                    if not events & 2047:
                        # Periodically retire DRAM-timeline history:
                        # global event time is non-decreasing and every
                        # future allocation arrives at or after it, so
                        # intervals ending 1 ns before `now` are dead
                        # weight (see Timeline.compact — compaction is
                        # result-transparent at any event boundary).
                        cutoff = now - 1.0
                        for s in slices:
                            s.retire_before(cutoff)
                    if events > max_events:
                        raise self._diverged_events(events, now)
                    if now > max_sim_ns:
                        raise self._diverged_sim_ns(now)
                    if now == last_now:
                        stalled += 1
                        if stalled > stall_limit:
                            raise self._diverged_stall(stalled, now)
                    else:
                        stalled = 0
                        last_now = now
                    try:
                        op = generator.send(value)
                    except StopIteration:
                        if now > latest:
                            latest = now
                        break
                    if execute is None:
                        handler = dispatch_get(op.__class__)
                        if handler is None:
                            raise TypeError(f"unknown op {op!r}")
                        resume, completion = handler(op, now, core, mtp)
                    else:
                        resume, completion = execute(op, now, core, mtp)
                    if completion > latest:
                        latest = completion
                    if heap and heap[0][0] <= resume:
                        # An already-queued event runs first (earlier
                        # time, or an equal time with a smaller
                        # sequence number).  The push-then-pop pair is
                        # fused into one sift: the new entry can never
                        # beat the queued head (its sequence number is
                        # larger), so heappushpop returns exactly what
                        # push followed by pop would have.
                        now, _seq, idx, value = heappushpop(
                            heap, (resume, seq, idx, completion)
                        )
                        seq += 1
                        generator, core, mtp = threads[idx]
                        continue
                    now, value = resume, completion
        finally:
            self._seq = seq
            self.events = events
        self.end_time = latest + cfg.launch_overhead_ns
        return self.end_time

    def _run_vector(self):
        """Compiled-program replay loop (``engine="vector"``).

        Implemented in :mod:`repro.piuma.vector_engine`: threads
        registered with :meth:`spawn_program` replay precompiled op
        programs through per-(op, core, mtp) execution plans; plain
        generator threads (e.g. the dynamic work-stealing kernel) run
        exactly as under :meth:`_run_fast`.  Bit-identical to
        :meth:`_run_reference` in results and event accounting.
        """
        from repro.piuma.vector_engine import run_vector

        return run_vector(self)

    def _run_calendar(self):
        """Calendar-queue main loop (``scheduler="calendar"`` fast path).

        Same peek-ahead thread continuation and event accounting as
        ``_run_fast``, with the binary heap replaced by the calendar
        queue's bucket ring (see ``repro.piuma.scheduler``).  The ring
        internals are bound to locals; the rare slow paths — overflow
        migration, year jumps, width retuning — drop into the
        ``CalendarQueue`` methods and re-sync.

        Where ``_run_fast`` fuses its switch into ``heappushpop``, this
        loop caches the queue head: after each pop it scans forward for
        the *next* head (a peek), drives the popped thread against that
        bound, and on a switch pushes the running thread's entry and
        consumes the cached head.  The pushed entry can never precede
        the cached head (its resume time is >= the head's, and on a tie
        its sequence number is larger), so the global event order — and
        with it every result bit — matches both other loops exactly.

        The width retune runs at the same ``events & 2047`` boundary as
        DRAM-timeline compaction and is equally result-transparent: it
        re-buckets the queued population without reordering it.
        """
        cfg = self.config
        q = self._scheduler
        threads = self._threads
        slices = self.slices
        execute = self._execute if "_execute" in self.__dict__ else None
        dispatch_get = self._dispatch.get
        heappush = heapq.heappush
        inf = float("inf")
        max_events = cfg.max_events or inf
        max_sim_ns = cfg.max_sim_ns or inf
        stall_limit = cfg.stall_events or inf
        latest = 0.0
        events = 0
        stalled = 0
        last_now = -1.0
        seq = self._seq
        # Ring internals as locals (re-synced around queue method calls;
        # `buckets` and `overflow` are the queue's own mutable objects,
        # re-read only after a rebuild replaces them).
        buckets = q.buckets
        mask = q.mask
        inv_width = q.inv_width
        cur = q.cur
        year_end = q.year_end
        ring = q.ring_size
        overflow = q.overflow
        try:
            # Prime the cached head (a peek — the entry stays queued).
            if ring or overflow:
                q.cur, q.ring_size = cur, ring
                head_b, head_e = q._seek()
                cur, year_end, ring = q.cur, q.year_end, q.ring_size
                hw = head_e[0]
            else:
                head_e = None
            while head_e is not None:
                now, _seq, idx, value = head_e
                del head_b[0]
                ring -= 1
                # Scan forward from the cursor for the new head.  The
                # common case qualifies within a probe or two; crossing
                # the year horizon drops to the queue's slow path
                # (overflow migration / global-minimum jump).
                if ring:
                    i = cur
                    while True:
                        b = buckets[i & mask]
                        if b:
                            e = b[0]
                            if int(e[0] * inv_width) <= i:
                                cur = i
                                head_b, head_e, hw = b, e, e[0]
                                break
                        i += 1
                        if i >= year_end:
                            q.cur, q.ring_size = i, ring
                            head_b, head_e = q._seek()
                            cur, year_end = q.cur, q.year_end
                            ring = q.ring_size
                            hw = head_e[0]
                            break
                elif overflow:
                    q.cur, q.ring_size = cur, ring
                    head_b, head_e = q._seek()
                    cur, year_end, ring = q.cur, q.year_end, q.ring_size
                    hw = head_e[0]
                else:
                    head_e = None
                    hw = inf
                generator, core, mtp = threads[idx]
                while True:
                    events += 1
                    if not events & 2047:
                        # Same boundary as _run_fast: retire dead DRAM
                        # timeline history, then let the queue re-fit
                        # its bucket geometry to the observed deltas.
                        cutoff = now - 1.0
                        for s in slices:
                            s.retire_before(cutoff)
                        q.cur, q.ring_size = cur, ring
                        if q.retune():
                            buckets = q.buckets
                            mask = q.mask
                            inv_width = q.inv_width
                            overflow = q.overflow
                            year_end = q.year_end
                            cur = q.cur
                            ring = q.ring_size
                            if head_e is not None:
                                # Same minimal entry, new bucket list.
                                head_b, head_e = q._seek()
                                cur, year_end = q.cur, q.year_end
                                ring = q.ring_size
                    if events > max_events:
                        raise self._diverged_events(events, now)
                    if now > max_sim_ns:
                        raise self._diverged_sim_ns(now)
                    if now == last_now:
                        stalled += 1
                        if stalled > stall_limit:
                            raise self._diverged_stall(stalled, now)
                    else:
                        stalled = 0
                        last_now = now
                    try:
                        op = generator.send(value)
                    except StopIteration:
                        if now > latest:
                            latest = now
                        break
                    if execute is None:
                        handler = dispatch_get(op.__class__)
                        if handler is None:
                            raise TypeError(f"unknown op {op!r}")
                        resume, completion = handler(op, now, core, mtp)
                    else:
                        resume, completion = execute(op, now, core, mtp)
                    if completion > latest:
                        latest = completion
                    if hw <= resume:
                        # Switch: queue this thread's entry and let the
                        # outer loop consume the cached head.  Inline
                        # push — the engine's pops are monotone, so the
                        # entry is never behind the cursor, and queue
                        # size is capped by the thread count, so the
                        # growth check is dead weight here.
                        entry = (resume, seq, idx, completion)
                        seq += 1
                        ab = int(resume * inv_width)
                        if ab >= year_end:
                            heappush(overflow, entry)
                        else:
                            b = buckets[ab & mask]
                            if b and entry < b[-1]:
                                insort(b, entry)
                            else:
                                b.append(entry)
                            ring += 1
                        break
                    now, value = resume, completion
        finally:
            self._seq = seq
            self.events = events
            q.cur, q.ring_size = cur, ring
        self.end_time = latest + cfg.launch_overhead_ns
        return self.end_time

    def _run_reference(self):
        """The original pop/execute/push loop (``engine_fast_path=False``).

        Kept as the semantics oracle: the differential suite asserts
        both fast loops reproduce it bit-for-bit.  It drives whichever
        scheduler backend the config selects through the abstract
        ``pop``/``push`` surface — no peek-ahead, no bound internals —
        so it also oracles the calendar queue itself.
        """
        cfg = self.config
        scheduler = self._scheduler
        latest = 0.0
        events = 0
        stalled = 0
        last_now = -1.0
        try:
            while scheduler:
                now, _seq, idx, value = scheduler.pop()
                events += 1
                if not events & 2047:
                    cutoff = now - 1.0
                    for s in self.slices:
                        s.retire_before(cutoff)
                if cfg.max_events and events > cfg.max_events:
                    raise self._diverged_events(events, now)
                if cfg.max_sim_ns and now > cfg.max_sim_ns:
                    raise self._diverged_sim_ns(now)
                if now == last_now:
                    stalled += 1
                    if cfg.stall_events and stalled > cfg.stall_events:
                        raise self._diverged_stall(stalled, now)
                else:
                    stalled = 0
                    last_now = now
                generator, core, mtp = self._threads[idx]
                try:
                    op = generator.send(value)
                except StopIteration:
                    latest = max(latest, now)
                    continue
                resume, completion = self._execute(op, now, core, mtp)
                latest = max(latest, completion)
                self._push(resume, idx, completion)
        finally:
            self.events = events
        self.end_time = latest + self.config.launch_overhead_ns
        return self.end_time

    # -- reporting ---------------------------------------------------------------

    @property
    def events_per_s(self):
        """Host-side DES throughput of the last :meth:`run`."""
        if self.host_wall_s <= 0.0:
            return 0.0
        return self.events / self.host_wall_s

    def memory_utilization(self):
        """Mean DRAM-slice busy fraction over the kernel."""
        horizon = self.end_time or 1.0
        values = [s.utilization(horizon) for s in self.slices]
        return sum(values) / len(values)

    def priority_memory_utilization(self):
        """Mean DRAM-slice demand-read (priority) busy fraction.

        A sub-account of :meth:`memory_utilization`: priority service
        also occupies the bulk timeline, so this reports how much of the
        slice occupancy is pipeline demand reads rather than DMA bulk.
        """
        horizon = self.end_time or 1.0
        values = [s.priority_utilization(horizon) for s in self.slices]
        return sum(values) / len(values)

    def bytes_served(self):
        return sum(s.bytes_served for s in self.slices)

    def achieved_bandwidth(self):
        """System-wide achieved DRAM bandwidth in bytes/ns (== GB/s)."""
        if not self.end_time:
            return 0.0
        return self.bytes_served() / self.end_time
