"""HyperX-flavored interconnect delay model.

PIUMA connects cores within a die over a low-latency fabric and dies
over optical links in a HyperX topology (paper ref [8]), whose diameter
stays small (one inter-die hop in our flat single-dimension model).
Takeaway 3 of the paper is that SpMM at scale is *not* network-bound, so
the model charges realistic latencies but generous per-core injection
bandwidth; the bandwidth resource exists so ablations can artificially
choke it and verify the claim.

Under a :class:`~repro.piuma.degradation.DegradationModel` individual
links run at multiplied latency or go down entirely; down links reroute
through the cheapest healthy intermediate core.  Latency stays pure
(static per model), so the per-pair memo remains valid — but only for
the degradation state it was filled under, which is why the memo is
tied to a *degradation epoch* (see :meth:`Network.set_degradation`).
"""

from __future__ import annotations

from repro.piuma.degradation import DegradationModel
from repro.piuma.resources import FluidResource


class Network:
    """Latency and (optional) injection-bandwidth model between cores."""

    def __init__(self, config, degradation=None):
        self._config = config
        self._injection = [
            FluidResource(config.network_bandwidth_gbps, name=f"net{c}")
            for c in range(config.n_cores)
        ]
        # Latency is pure topology — memoize per (src, dst) pair.  The
        # simulator asks for the same few thousand pairs millions of
        # times per kernel, and the tier arithmetic (two integer
        # divisions over two derived-property lookups) was one of the
        # hottest lines of the DES before caching.
        self._latency_cache = {}
        self._mean_remote = None
        # Memo epoch: bumped by every degradation change so tests and
        # tools can assert the caches were actually dropped instead of
        # silently serving values computed under the previous link
        # state (the historical stale-memo hazard).
        self._epoch = 0
        if degradation is None:
            degradation = DegradationModel.for_config(config)
        self._degradation = degradation

    @property
    def degradation_epoch(self):
        """Monotone counter of link-state changes seen by the memos."""
        return self._epoch

    def set_degradation(self, model):
        """Switch the link-state model and invalidate every memo."""
        self._degradation = model
        self.invalidate()

    def invalidate(self):
        """Drop all latency memos (link parameters changed)."""
        self._latency_cache.clear()
        self._mean_remote = None
        self._epoch += 1

    def _tier_latency(self, src_core, dst_core):
        """Healthy tier latency: the pure-topology cost of a link."""
        if src_core == dst_core:
            return 0.0
        config = self._config
        per_die = config.cores_per_die
        per_node = config.cores_per_node
        if src_core // per_die == dst_core // per_die:
            return config.intra_die_latency_ns
        if src_core // per_node == dst_core // per_node:
            return config.inter_die_latency_ns
        return config.inter_node_latency_ns

    def latency(self, src_core, dst_core):
        """One-way latency in ns from ``src_core`` to ``dst_core``.

        Same core is free (local slice access); same die pays the
        intra-die fabric; different dies one optical HyperX hop;
        different nodes the node-to-node optical tier.  Degraded links
        pay their latency multiplier; down links the cheapest reroute.
        """
        key = (src_core, dst_core)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        value = self._tier_latency(src_core, dst_core)
        if self._degradation is not None and src_core != dst_core:
            value = self._degradation.link_latency(
                src_core, dst_core, value, self._tier_latency
            )
        self._latency_cache[key] = value
        return value

    def transfer(self, now, src_core, dst_core, nbytes):
        """Inject ``nbytes`` at ``now``; returns arrival time at ``dst``.

        Local transfers bypass the network entirely.
        """
        if src_core == dst_core:
            return now
        _start, end = self._injection[src_core].reserve(now, nbytes)
        return end + self.latency(src_core, dst_core)

    def mean_remote_latency(self):
        """Expected one-way latency from core 0 to a *uniformly random*
        destination core — the destination may be core 0 itself, whose
        local access is free, so the self term contributes latency 0 to
        the average.  That matches how the analytical checks use it: a
        random vertex lands on a random slice, including the local one.

        The value is pure topology (plus the static degradation state),
        so it is computed once and memoized until :meth:`invalidate`.
        """
        if self._mean_remote is None:
            n = self._config.n_cores
            if n == 1:
                self._mean_remote = 0.0
            else:
                total = sum(self.latency(0, dst) for dst in range(n))
                self._mean_remote = total / n
        return self._mean_remote

    def injection_utilization(self, horizon):
        """Max per-core injection-port utilization over ``[0, horizon]``."""
        return max(r.utilization(horizon) for r in self._injection)
