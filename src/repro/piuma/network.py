"""HyperX-flavored interconnect delay model.

PIUMA connects cores within a die over a low-latency fabric and dies
over optical links in a HyperX topology (paper ref [8]), whose diameter
stays small (one inter-die hop in our flat single-dimension model).
Takeaway 3 of the paper is that SpMM at scale is *not* network-bound, so
the model charges realistic latencies but generous per-core injection
bandwidth; the bandwidth resource exists so ablations can artificially
choke it and verify the claim.
"""

from __future__ import annotations

from repro.piuma.resources import FluidResource


class Network:
    """Latency and (optional) injection-bandwidth model between cores."""

    def __init__(self, config):
        self._config = config
        self._injection = [
            FluidResource(config.network_bandwidth_gbps, name=f"net{c}")
            for c in range(config.n_cores)
        ]

    def latency(self, src_core, dst_core):
        """One-way latency in ns from ``src_core`` to ``dst_core``.

        Same core is free (local slice access); same die pays the
        intra-die fabric; different dies one optical HyperX hop;
        different nodes the node-to-node optical tier.
        """
        if src_core == dst_core:
            return 0.0
        per_die = self._config.cores_per_die
        per_node = self._config.cores_per_node
        if src_core // per_die == dst_core // per_die:
            return self._config.intra_die_latency_ns
        if src_core // per_node == dst_core // per_node:
            return self._config.inter_die_latency_ns
        return self._config.inter_node_latency_ns

    def transfer(self, now, src_core, dst_core, nbytes):
        """Inject ``nbytes`` at ``now``; returns arrival time at ``dst``.

        Local transfers bypass the network entirely.
        """
        if src_core == dst_core:
            return now
        _start, end = self._injection[src_core].reserve(now, nbytes)
        return end + self.latency(src_core, dst_core)

    def mean_remote_latency(self):
        """Average one-way latency from a core to a uniformly random
        *other* location (including itself), used by analytical checks."""
        n = self._config.n_cores
        if n == 1:
            return 0.0
        total = sum(self.latency(0, dst) for dst in range(n))
        return total / n

    def injection_utilization(self, horizon):
        """Max per-core injection-port utilization over ``[0, horizon]``."""
        return max(r.utilization(horizon) for r in self._injection)
