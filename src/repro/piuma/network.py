"""HyperX-flavored interconnect delay model.

PIUMA connects cores within a die over a low-latency fabric and dies
over optical links in a HyperX topology (paper ref [8]), whose diameter
stays small (one inter-die hop in our flat single-dimension model).
Takeaway 3 of the paper is that SpMM at scale is *not* network-bound, so
the model charges realistic latencies but generous per-core injection
bandwidth; the bandwidth resource exists so ablations can artificially
choke it and verify the claim.
"""

from __future__ import annotations

from repro.piuma.resources import FluidResource


class Network:
    """Latency and (optional) injection-bandwidth model between cores."""

    def __init__(self, config):
        self._config = config
        self._injection = [
            FluidResource(config.network_bandwidth_gbps, name=f"net{c}")
            for c in range(config.n_cores)
        ]
        # Latency is pure topology — memoize per (src, dst) pair.  The
        # simulator asks for the same few thousand pairs millions of
        # times per kernel, and the tier arithmetic (two integer
        # divisions over two derived-property lookups) was one of the
        # hottest lines of the DES before caching.
        self._latency_cache = {}
        self._mean_remote = None

    def latency(self, src_core, dst_core):
        """One-way latency in ns from ``src_core`` to ``dst_core``.

        Same core is free (local slice access); same die pays the
        intra-die fabric; different dies one optical HyperX hop;
        different nodes the node-to-node optical tier.
        """
        key = (src_core, dst_core)
        cached = self._latency_cache.get(key)
        if cached is not None:
            return cached
        if src_core == dst_core:
            value = 0.0
        else:
            config = self._config
            per_die = config.cores_per_die
            per_node = config.cores_per_node
            if src_core // per_die == dst_core // per_die:
                value = config.intra_die_latency_ns
            elif src_core // per_node == dst_core // per_node:
                value = config.inter_die_latency_ns
            else:
                value = config.inter_node_latency_ns
        self._latency_cache[key] = value
        return value

    def transfer(self, now, src_core, dst_core, nbytes):
        """Inject ``nbytes`` at ``now``; returns arrival time at ``dst``.

        Local transfers bypass the network entirely.
        """
        if src_core == dst_core:
            return now
        _start, end = self._injection[src_core].reserve(now, nbytes)
        return end + self.latency(src_core, dst_core)

    def mean_remote_latency(self):
        """Expected one-way latency from core 0 to a *uniformly random*
        destination core — the destination may be core 0 itself, whose
        local access is free, so the self term contributes latency 0 to
        the average.  That matches how the analytical checks use it: a
        random vertex lands on a random slice, including the local one.

        The value is pure topology, so it is computed once and
        memoized.
        """
        if self._mean_remote is None:
            n = self._config.n_cores
            if n == 1:
                self._mean_remote = 0.0
            else:
                total = sum(self.latency(0, dst) for dst in range(n))
                self._mean_remote = total / n
        return self._mean_remote

    def injection_utilization(self, horizon):
        """Max per-core injection-port utilization over ``[0, horizon]``."""
        return max(r.utilization(horizon) for r in self._injection)
