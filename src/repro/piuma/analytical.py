"""Bandwidth-bound analytical SpMM model (Section IV-A, Equations 1-5).

The model assumes no reuse of input feature vectors — fair on PIUMA,
which has no L2/L3 — and one write-back per output row.  Read and write
phases are charged sequentially against the system's aggregate DRAM
bandwidth, exactly as Equation 5 divides traffic volumes by the
respective bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sparse.spmm import SpMMTraffic, spmm_traffic


@dataclass(frozen=True)
class ModelResult:
    """Analytical prediction for one SpMM invocation.

    Attributes
    ----------
    time_ns:
        Equation 5 execution time.
    gflops:
        Equation 4 FLOPs divided by the Equation 5 time (the paper's
        expected-throughput curve in Fig 5).
    traffic:
        The underlying Equations 1-4 byte/FLOP counts.
    """

    time_ns: float
    gflops: float
    traffic: SpMMTraffic


def element_bytes(config):
    """Per-element sizes of the PIUMA kernels, from the hardware config."""
    return {
        "row": config.index_bytes,
        "col": config.index_bytes,
        "nnz": config.value_bytes,
        "feature": config.feature_bytes,
    }


def spmm_model(n_vertices, n_edges, embedding_dim, config,
               read_bandwidth=None, write_bandwidth=None):
    """Evaluate the Equation 5 model for a graph on a PIUMA config.

    Parameters
    ----------
    n_vertices, n_edges, embedding_dim:
        Kernel size (|V|, |E|, K).
    config:
        :class:`PIUMAConfig`; supplies element sizes and, by default,
        the aggregate DRAM bandwidth for both directions.
    read_bandwidth, write_bandwidth:
        Override bandwidths in bytes/ns (GB/s).  ``None`` (the default)
        uses the config's aggregate bandwidth; an explicit non-positive
        override raises instead of silently falling back.
    """
    traffic = spmm_traffic(
        n_vertices, n_edges, embedding_dim, element_bytes(config)
    )
    bw_read = (
        config.total_bandwidth_gbps if read_bandwidth is None
        else read_bandwidth
    )
    bw_write = (
        config.total_bandwidth_gbps if write_bandwidth is None
        else write_bandwidth
    )
    if bw_read <= 0 or bw_write <= 0:
        raise ValueError("bandwidths must be positive")
    time_ns = traffic.read_bytes / bw_read + traffic.write_bytes / bw_write
    gflops = traffic.flops / time_ns if time_ns > 0 else 0.0
    return ModelResult(time_ns=time_ns, gflops=gflops, traffic=traffic)
