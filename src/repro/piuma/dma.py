"""DMA offload engine.

One engine per core.  Requests from all threads of the core are
serialized in arrival order (the property Section IV-C leans on: a
single thread that keeps the engine fed saturates it without help).
The engine itself is latency *tolerant*: it occupies only for descriptor
setup plus streaming time, while the DRAM access latency is paid by the
data, not by the engine — so back-to-back requests pipeline.
"""

from __future__ import annotations

import collections

from repro.piuma.resources import FluidResource
from repro.runtime.errors import HardwareExhausted


class DMAEngine:
    """Per-core DMA engine with an in-order request queue.

    Under a degradation spec an engine may be *dead* (every submit
    raises :class:`HardwareExhausted` — the core's threads cannot
    offload at all) or *flaky*: every ``fail_period``-th descriptor
    fails and is retried after ``retry_backoff_ns``, a delay the
    issuing thread observes.  Both behaviors are pure functions of the
    submission order, which is identical on both engine main loops.
    """

    __slots__ = ("core_id", "_config", "_engine", "ops", "bytes_moved",
                 "_inflight", "_inflight_bytes", "_inflight_limit",
                 "_overhead_ns", "_lat_to", "alive", "retries",
                 "_fail_period", "_fail_countdown", "_retry_backoff_ns")

    def __init__(self, core_id, config, alive=True, fail_period=0,
                 retry_backoff_ns=0.0):
        self.core_id = core_id
        self._config = config
        self._engine = FluidResource(config.dma_rate_gbps, name=f"dma{core_id}")
        self.ops = 0
        self.bytes_moved = 0.0
        self.alive = alive
        self.retries = 0
        self._fail_period = int(fail_period)
        self._fail_countdown = int(fail_period)
        self._retry_backoff_ns = retry_backoff_ns
        # Hot-path constants hoisted out of `submit` (attribute chains
        # through `_config` showed up in DES profiles).
        self._inflight_limit = config.dma_inflight_bytes
        self._overhead_ns = config.dma_overhead_ns
        # Bounded memory credits: the engine keeps at most
        # ``dma_inflight_bytes`` outstanding at DRAM (its staging-buffer
        # capacity).  This is the backpressure that lets the system reach
        # a steady state instead of dumping unbounded request bursts into
        # the memory timelines, while still allowing many small requests
        # in flight (a per-op limit would starve small embedding dims).
        self._inflight = collections.deque()  # (completion, nbytes)
        self._inflight_bytes = 0.0
        # Per-destination one-way latency, filled lazily from the
        # network (int key — avoids building a (src, dst) tuple per
        # submit target).
        self._lat_to = {}

    def submit_internal(self, now, nbytes):
        """Engine-internal request (scratchpad copy-add): descriptor
        overhead plus streaming occupancy, no DRAM traffic.

        Returns when the engine can accept its next request (which is
        also the completion time).  The :class:`FluidResource` reserve
        is inlined — this runs once per edge in the DMA kernels.
        """
        if not self.alive:
            raise HardwareExhausted(
                f"DMA engine on core {self.core_id} is dead",
                cause="dead-dma",
            )
        if self._fail_period:
            self._fail_countdown -= 1
            if not self._fail_countdown:
                self._fail_countdown = self._fail_period
                self.retries += 1
                now += self._retry_backoff_ns
        eng = self._engine
        busy = eng.busy_until
        start = now if now > busy else busy
        duration = nbytes / eng.rate + self._overhead_ns
        engine_free = start + duration
        eng.busy_until = engine_free
        eng.busy_time += duration
        eng.units_served += nbytes
        eng.requests += 1
        self.ops += 1
        self.bytes_moved += nbytes
        return engine_free

    def submit(self, now, nbytes, targets=None, network=None):
        """Enqueue a request of ``nbytes`` at time ``now``.

        Parameters
        ----------
        nbytes:
            Payload size.  Zero-byte requests (e.g. buffer init with a
            broadcast value) still pay the descriptor overhead.
        targets:
            List of ``(DRAMSlice, core_id)`` stripes the payload spreads
            over (line interleaving), or None for engine-internal
            operations (scratchpad copy-add) that move no DRAM traffic.
        network:
            :class:`Network` used to reach remote slices.

        Returns
        -------
        (engine_free, completion):
            When the engine can accept its next request, and when the
            data movement finished.

        The network injection, latency lookup, and DRAM request are
        inlined against the resources' slots: this method executes a
        couple of times per simulated edge and the call overhead of the
        layered form dominated host time (DESIGN.md, "Host
        performance").  Semantics are bit-identical to the layered
        ``reserve``/``transfer``/``request`` calls it replaces.
        """
        if not targets:
            engine_free = self.submit_internal(now, nbytes)
            return engine_free, engine_free
        if not self.alive:
            raise HardwareExhausted(
                f"DMA engine on core {self.core_id} is dead",
                cause="dead-dma",
            )
        if self._fail_period:
            self._fail_countdown -= 1
            if not self._fail_countdown:
                self._fail_countdown = self._fail_period
                self.retries += 1
                now += self._retry_backoff_ns
        # Retire outstanding requests that completed by now, then
        # wait for the oldest ones until the new payload fits in the
        # staging buffer (backpressure toward the issuing threads'
        # descriptor stream).
        gate = now
        limit = self._inflight_limit
        if nbytes > limit:
            limit = nbytes
        inflight = self._inflight
        inflight_bytes = self._inflight_bytes
        popleft = inflight.popleft
        while inflight and inflight[0][0] <= gate:
            inflight_bytes -= popleft()[1]
        while inflight and inflight_bytes + nbytes > limit:
            done, size = popleft()
            inflight_bytes -= size
            if done > gate:
                gate = done
        eng = self._engine
        busy = eng.busy_until
        start = gate if gate > busy else busy
        duration = nbytes / eng.rate + self._overhead_ns
        engine_free = start + duration
        eng.busy_until = engine_free
        eng.busy_time += duration
        eng.units_served += nbytes
        eng.requests += 1
        self.ops += 1
        self.bytes_moved += nbytes
        share = nbytes / len(targets)
        completion = start
        core_id = self.core_id
        if network is None:
            for memory, _dst_core in targets:
                end = memory.bulk_request(start, share)
                if end > completion:
                    completion = end
        else:
            inj = network._injection[core_id]
            lat_to = self._lat_to
            inj_service = share / inj.rate
            for memory, dst_core in targets:
                if dst_core == core_id:
                    arrival = start
                else:
                    busy = inj.busy_until
                    sent = (start if start > busy else busy) + inj_service
                    inj.busy_until = sent
                    inj.busy_time += inj_service
                    inj.units_served += share
                    inj.requests += 1
                    lat = lat_to.get(dst_core)
                    if lat is None:
                        lat = lat_to[dst_core] = network.latency(
                            core_id, dst_core
                        )
                    arrival = sent + lat
                end = memory.bulk_request(arrival, share)
                if end > completion:
                    completion = end
        inflight.append((completion, nbytes))
        self._inflight_bytes = inflight_bytes + nbytes
        return engine_free, completion

    def utilization(self, horizon):
        return self._engine.utilization(horizon)

    @property
    def busy_time(self):
        return self._engine.busy_time

    @property
    def streamed_bytes(self):
        """Bytes the underlying fluid engine served.

        Accounted on the same lines as :attr:`bytes_moved` (both the
        layered :meth:`submit` path and the inlined engine hot loop
        update the two together), so the runtime sanitizer can
        cross-check them: any accounting drift between the engine's
        descriptor bookkeeping and its fluid-resource occupancy is a
        byte-conservation violation.
        """
        return self._engine.units_served

    @property
    def requests(self):
        """Requests the underlying fluid engine accepted (== ops)."""
        return self._engine.requests
