"""DMA offload engine.

One engine per core.  Requests from all threads of the core are
serialized in arrival order (the property Section IV-C leans on: a
single thread that keeps the engine fed saturates it without help).
The engine itself is latency *tolerant*: it occupies only for descriptor
setup plus streaming time, while the DRAM access latency is paid by the
data, not by the engine — so back-to-back requests pipeline.
"""

from __future__ import annotations

import collections

from repro.piuma.resources import FluidResource


class DMAEngine:
    """Per-core DMA engine with an in-order request queue."""

    def __init__(self, core_id, config):
        self.core_id = core_id
        self._config = config
        self._engine = FluidResource(config.dma_rate_gbps, name=f"dma{core_id}")
        self.ops = 0
        self.bytes_moved = 0.0
        # Bounded memory credits: the engine keeps at most
        # ``dma_inflight_bytes`` outstanding at DRAM (its staging-buffer
        # capacity).  This is the backpressure that lets the system reach
        # a steady state instead of dumping unbounded request bursts into
        # the memory timelines, while still allowing many small requests
        # in flight (a per-op limit would starve small embedding dims).
        self._inflight = collections.deque()  # (completion, nbytes)
        self._inflight_bytes = 0.0

    def submit(self, now, nbytes, targets=None, network=None):
        """Enqueue a request of ``nbytes`` at time ``now``.

        Parameters
        ----------
        nbytes:
            Payload size.  Zero-byte requests (e.g. buffer init with a
            broadcast value) still pay the descriptor overhead.
        targets:
            List of ``(DRAMSlice, core_id)`` stripes the payload spreads
            over (line interleaving), or None for engine-internal
            operations (scratchpad copy-add) that move no DRAM traffic.
        network:
            :class:`Network` used to reach remote slices.

        Returns
        -------
        (engine_free, completion):
            When the engine can accept its next request, and when the
            data movement finished.
        """
        gate = now
        if targets:
            # Retire outstanding requests that completed by now, then
            # wait for the oldest ones until the new payload fits in the
            # staging buffer (backpressure toward the issuing threads'
            # descriptor stream).
            limit = max(self._config.dma_inflight_bytes, nbytes)
            while self._inflight and self._inflight[0][0] <= gate:
                self._inflight_bytes -= self._inflight.popleft()[1]
            while self._inflight and self._inflight_bytes + nbytes > limit:
                done, size = self._inflight.popleft()
                self._inflight_bytes -= size
                gate = max(gate, done)
        start, engine_free = self._engine.reserve(
            gate, nbytes, extra_time=self._config.dma_overhead_ns
        )
        self.ops += 1
        self.bytes_moved += nbytes
        if not targets:
            return engine_free, engine_free
        share = nbytes / len(targets)
        completion = start
        for memory, dst_core in targets:
            arrival = start
            if network is not None:
                arrival = network.transfer(
                    start, self.core_id, dst_core, share
                )
            completion = max(completion, memory.request(arrival, share))
        self._inflight.append((completion, nbytes))
        self._inflight_bytes += nbytes
        return engine_free, completion

    def utilization(self, horizon):
        return self._engine.utilization(horizon)

    @property
    def busy_time(self):
        return self._engine.busy_time
