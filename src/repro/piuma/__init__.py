"""PIUMA architecture simulator.

A discrete-event model of Intel's Programmable Integrated Unified
Memory Architecture: multi-threaded pipelines, per-core DMA offload
engines with serialized request queues, per-core DRAM slices in a
distributed global address space, and a HyperX-flavored interconnect.
Two SpMM kernels (loop-unrolled and DMA-offload) run on it, and the
bandwidth-bound analytical model of the paper's Section IV-A provides
the reference curve.
"""

from repro.piuma.analytical import ModelResult, spmm_model
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import (
    DEGRADATION_PRESETS,
    DegradationModel,
    DegradationSpec,
    effective_total_bandwidth,
    thread_placements,
)
from repro.piuma.densemm import DenseMMEstimate, dense_mm_time, peak_mac_gflops
from repro.piuma.engine import Simulator
from repro.piuma.gcn import gcn_breakdown as piuma_gcn_breakdown
from repro.piuma.kernels import KernelResult, auto_window, run_spmm_kernel
from repro.piuma.multinode import (
    HaloFabric,
    MultinodeEstimate,
    assemble_multinode,
    run_multinode,
    strong_scaling,
)
from repro.piuma.spmm_dma import dma_thread
from repro.piuma.spmm_loop import loop_unrolled_thread

__all__ = [
    "DEGRADATION_PRESETS",
    "DegradationModel",
    "DegradationSpec",
    "DenseMMEstimate",
    "HaloFabric",
    "KernelResult",
    "ModelResult",
    "MultinodeEstimate",
    "PIUMAConfig",
    "Simulator",
    "assemble_multinode",
    "auto_window",
    "dense_mm_time",
    "dma_thread",
    "effective_total_bandwidth",
    "loop_unrolled_thread",
    "peak_mac_gflops",
    "piuma_gcn_breakdown",
    "run_multinode",
    "run_spmm_kernel",
    "simulate_dense_mm",
    "simulate_gcn",
    "simulate_spmm",
    "spmm_model",
    "strong_scaling",
    "thread_placements",
]


def simulate_dense_mm(*args, **kwargs):
    """See :func:`repro.piuma.densemm_kernel.simulate_dense_mm`."""
    from repro.piuma.densemm_kernel import simulate_dense_mm as impl

    return impl(*args, **kwargs)


def simulate_gcn(*args, **kwargs):
    """See :func:`repro.piuma.gcn_sim.simulate_gcn`."""
    from repro.piuma.gcn_sim import simulate_gcn as impl

    return impl(*args, **kwargs)


def simulate_spmm(adj, embedding_dim, config=None, kernel="dma", window_edges=None):
    """Convenience wrapper: simulate one SpMM kernel.

    Parameters
    ----------
    adj:
        CSR adjacency.
    embedding_dim:
        K.
    config:
        :class:`PIUMAConfig` (default: one 8-core die).
    kernel:
        ``"dma"`` (edge-parallel, DMA offload — the paper's winner),
        ``"loop"`` (edge-parallel, scalar loop unrolling) or
        ``"vertex"`` (vertex-parallel DMA: no atomics, but load
        imbalance on skewed graphs).
    window_edges:
        Down-scaled window size (default automatic).
    """
    from repro.piuma.spmm_vertex import split_work_vertex, vertex_parallel_thread

    config = config or PIUMAConfig()
    kernels = {
        "dma": (dma_thread, None),
        "loop": (loop_unrolled_thread, None),
        "vertex": (vertex_parallel_thread, split_work_vertex),
    }
    if kernel not in kernels:
        raise ValueError(f"kernel must be one of {sorted(kernels)}")
    factory, splitter = kernels[kernel]
    return run_spmm_kernel(
        adj, embedding_dim, config, factory, window_edges, splitter
    )
