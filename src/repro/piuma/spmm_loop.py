"""Loop-unrolled SpMM kernel (the baseline of Section IV-B).

Each MTP thread walks its edge slice: every ``nnz_group_edges`` edges it
fetches the column-index and value lines (a blocking grouped load), then
for each edge streams the neighbor's feature vector through the scalar
pipeline in unrolled rounds — issue 8-element loads, stall on use, MAC
into the register/cache-resident accumulation buffer.  The round-trip
latency of every round sits on the thread's critical path, which is why
this kernel "was challenged with scaling past 8 cores": more cores mean
more remote accesses, longer latency per round, and a fixed thread count
cannot buy it back.
"""

from __future__ import annotations

import math

from repro.piuma.ops import AtomicUpdate, Load, PhaseMarker, SequentialAccess


def owner_core(vertex, n_cores, hashed=True):
    """Home slice of a vertex row in the DGAS.

    PIUMA's global address space hash-interleaves blocks across slices;
    plain ``v % n_cores`` would send ~44% of RMAT traffic to slice 0
    (power-law hubs have low-biased id bits) — a hotspot real hardware
    avoids by address hashing, so we hash too (Knuth multiplicative
    mix).  ``hashed=False`` selects the naive placement for ablation.
    """
    if not hashed:
        return int(vertex) % n_cores
    mixed = (int(vertex) * 0x9E3779B1) & 0xFFFFFFFF
    return (mixed >> 16) % n_cores


def nnz_line_core(edge_index, group, n_cores):
    """Home slice of the CSR line holding ``edge_index`` (line interleave)."""
    return (int(edge_index) // group) % n_cores


def binary_search_op(work, config):
    """Algorithm 2 line 4: locate the first owned row via binary search.

    ``log2(|V|)``-ish dependent probes of the row-offset array, each a
    small load to a pseudo-random slice.
    """
    n_rows = max(2, int(work.rows.max()) + 1 if len(work.rows) else 2)
    probes = max(1, int(math.ceil(math.log2(n_rows))))
    target = (work.core * 7 + work.mtp + 3) % config.n_cores
    return SequentialAccess(
        n_rounds=probes,
        bytes_per_round=2 * config.index_bytes,
        target_core=target,
        instrs_per_round=4,
        tag="binary_search",
    )


def loop_unrolled_thread(work, embedding_dim, config):
    """Thread generator for the loop-unrolled kernel."""
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    feature_bytes = config.feature_bytes
    # The tail round (K not a multiple of the unroll) is folded into the
    # uniform rounds; the size error is under one line per edge.
    rounds = max(1, math.ceil(embedding_dim / config.unroll))
    round_bytes = min(embedding_dim, config.unroll) * feature_bytes
    row_bytes = embedding_dim * feature_bytes

    yield binary_search_op(work, config)
    yield PhaseMarker()

    n_edges = len(work.cols)
    current_row = int(work.rows[0]) if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        yield Load(
            nbytes=nnz_bytes,
            target_core=nnz_line_core(work.start_edge + begin, group, n_cores),
            tag="nnz",
            grouped=2,
        )
        for e in range(begin, stop):
            row = int(work.rows[e])
            if row != current_row:
                # Row boundary: flush the accumulation buffer.
                # Edge-parallel write-backs are atomic (multiple
                # writers per straddled row) and do not stall the
                # pipeline.
                yield AtomicUpdate(
                    nbytes=row_bytes,
                    target_core=owner_core(current_row, n_cores, hashed),
                    tag="atomic_write",
                )
                current_row = row
            vertex = int(work.cols[e])
            yield SequentialAccess(
                n_rounds=rounds,
                bytes_per_round=round_bytes,
                target_core=owner_core(vertex, n_cores, hashed),
                instrs_per_round=config.instrs_per_unrolled_round,
                tag="feature",
            )
    if current_row >= 0:
        yield AtomicUpdate(
            nbytes=row_bytes,
            target_core=owner_core(current_row, n_cores, hashed),
            tag="atomic_write",
        )
