"""Loop-unrolled SpMM kernel (the baseline of Section IV-B).

Each MTP thread walks its edge slice: every ``nnz_group_edges`` edges it
fetches the column-index and value lines (a blocking grouped load), then
for each edge streams the neighbor's feature vector through the scalar
pipeline in unrolled rounds — issue 8-element loads, stall on use, MAC
into the register/cache-resident accumulation buffer.  The round-trip
latency of every round sits on the thread's critical path, which is why
this kernel "was challenged with scaling past 8 cores": more cores mean
more remote accesses, longer latency per round, and a fixed thread count
cannot buy it back.
"""

from __future__ import annotations

import math

import numpy as np

from repro.piuma.ops import AtomicUpdate, Load, PhaseMarker, SequentialAccess


def as_int_list(values):
    """Convert an index array to a list of plain Python ints, once.

    Kernel inner loops used to box every element individually with
    ``int(arr[e])`` — one numpy scalar extraction per simulated edge.
    ``ndarray.tolist()`` converts the whole array in C and the loops
    then run over native ints.
    """
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return [int(v) for v in values]


def owner_core(vertex, n_cores, hashed=True):
    """Home slice of a vertex row in the DGAS.

    PIUMA's global address space hash-interleaves blocks across slices;
    plain ``v % n_cores`` would send ~44% of RMAT traffic to slice 0
    (power-law hubs have low-biased id bits) — a hotspot real hardware
    avoids by address hashing, so we hash too (Knuth multiplicative
    mix).  ``hashed=False`` selects the naive placement for ablation.
    """
    if not hashed:
        return int(vertex) % n_cores
    mixed = (int(vertex) * 0x9E3779B1) & 0xFFFFFFFF
    return (mixed >> 16) % n_cores


def owner_cores(vertices, n_cores, hashed=True):
    """Vectorized :func:`owner_core` over an index array → list of ints.

    The kernels resolve the home slice of every simulated edge; calling
    :func:`owner_core` per edge was a measurable share of host time, so
    the whole array is mixed and reduced in numpy and converted to
    native ints once.  Bit-identical to the scalar function: the mix
    product of a sub-2^32 vertex id fits comfortably in int64.
    """
    arr = np.asarray(vertices, dtype=np.int64)
    if not hashed:
        return (arr % n_cores).tolist()
    mixed = (arr * 0x9E3779B1) & 0xFFFFFFFF
    return ((mixed >> 16) % n_cores).tolist()


def nnz_line_core(edge_index, group, n_cores):
    """Home slice of the CSR line holding ``edge_index`` (line interleave)."""
    return (int(edge_index) // group) % n_cores


def binary_search_op(work, config):
    """Algorithm 2 line 4: locate the first owned row via binary search.

    ``log2(|V|)``-ish dependent probes of the row-offset array, each a
    small load to a pseudo-random slice.
    """
    n_rows = max(2, int(work.rows.max()) + 1 if len(work.rows) else 2)
    probes = max(1, int(math.ceil(math.log2(n_rows))))
    target = (work.core * 7 + work.mtp + 3) % config.n_cores
    return SequentialAccess(
        n_rounds=probes,
        bytes_per_round=2 * config.index_bytes,
        target_core=target,
        instrs_per_round=4,
        tag="binary_search",
    )


def loop_unrolled_thread(work, embedding_dim, config, shared=None):
    """Thread generator for the loop-unrolled kernel.

    Ops are interned: every (target, bytes) shape is built at most once
    and the same immutable instance re-yielded — op construction is
    otherwise a per-edge cost.  ``shared`` optionally spans the intern
    table across all threads of one kernel invocation (see
    ``spmm_dma.dma_thread``).
    """
    n_cores = config.n_cores
    hashed = config.hashed_placement
    group = config.nnz_group_edges
    feature_bytes = config.feature_bytes
    # The tail round (K not a multiple of the unroll) is folded into the
    # uniform rounds; the size error is under one line per edge.
    rounds = max(1, math.ceil(embedding_dim / config.unroll))
    round_bytes = min(embedding_dim, config.unroll) * feature_bytes
    row_bytes = embedding_dim * feature_bytes
    instrs_per_round = config.instrs_per_unrolled_round

    yield binary_search_op(work, config)
    yield PhaseMarker()

    col_cores = owner_cores(work.cols, n_cores, hashed)
    row_cores = owner_cores(work.rows, n_cores, hashed)
    rows = as_int_list(work.rows)
    if shared is None:
        shared = {}
    nnz_loads = shared.setdefault("nnz", {})      # (core, bytes) -> Load
    feature_ops = shared.setdefault("feature", {})  # core -> SequentialAccess
    atomic_ops = shared.setdefault("atomic", {})  # core -> AtomicUpdate
    n_edges = len(rows)
    current_row = rows[0] if n_edges else -1
    current_core = row_cores[0] if n_edges else -1
    for begin in range(0, n_edges, group):
        stop = min(begin + group, n_edges)
        nnz_bytes = (stop - begin) * (config.index_bytes + config.value_bytes)
        nnz_key = (
            nnz_line_core(work.start_edge + begin, group, n_cores), nnz_bytes
        )
        op = nnz_loads.get(nnz_key)
        if op is None:
            op = nnz_loads[nnz_key] = Load(
                nbytes=nnz_bytes, target_core=nnz_key[0], tag="nnz", grouped=2
            )
        yield op
        for e in range(begin, stop):
            row = rows[e]
            if row != current_row:
                # Row boundary: flush the accumulation buffer.
                # Edge-parallel write-backs are atomic (multiple
                # writers per straddled row) and do not stall the
                # pipeline.
                op = atomic_ops.get(current_core)
                if op is None:
                    op = atomic_ops[current_core] = AtomicUpdate(
                        nbytes=row_bytes, target_core=current_core,
                        tag="atomic_write",
                    )
                yield op
                current_row = row
                current_core = row_cores[e]
            target = col_cores[e]
            op = feature_ops.get(target)
            if op is None:
                op = feature_ops[target] = SequentialAccess(
                    n_rounds=rounds,
                    bytes_per_round=round_bytes,
                    target_core=target,
                    instrs_per_round=instrs_per_round,
                    tag="feature",
                )
            yield op
    if current_row >= 0:
        op = atomic_ops.get(current_core)
        if op is None:
            op = atomic_ops[current_core] = AtomicUpdate(
                nbytes=row_bytes, target_core=current_core, tag="atomic_write"
            )
        yield op


#: Static op stream: safe to compile into an OpProgram (vector engine).
loop_unrolled_thread.program_safe = True
