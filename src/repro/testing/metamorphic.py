"""Metamorphic relations of the PIUMA DES.

Where the differential oracle checks *two implementations of the same
semantics* against each other, metamorphic relations check the
semantics themselves: edits to a workload whose directional effect is
known from the hardware model, regardless of the exact numbers.
Violating one means the simulator's scaling behavior — the very thing
the paper characterizes — is wrong in a way bit-identity can never
catch (both engines would be wrong together).

Slack factors are calibrated on the seeded case population (see
``tests/testing/test_conformance.py``): the relations are monotone in
the fluid model only up to discretization effects (window re-splitting
across more threads, stripe-set changes under relabeling), so each
tolerance carries the observed worst case plus margin.
"""

from __future__ import annotations

import numpy as np
from dataclasses import replace

from repro.piuma import simulate_spmm
from repro.sparse.reorder import apply_permutation
from repro.testing.oracle import run_case

#: Doubling the core count may not increase the simulated window time
#: by more than this per-kernel factor.  More cores = more threads
#: over the same edge window; per-thread work shrinks, but per-thread
#: *setup* (binary search, first-touch latencies) does not amortize as
#: well on the smaller slices.  The latency-bound loop kernel is the
#: loose one: its window time is dominated by dependent round-trip
#: chains whose length depends on how the re-split lands (observed
#: worst case 1.52x on the seeded population; bandwidth-bound kernels
#: stay within 1.09x).
CORE_SLACK = {"dma": 1.25, "loop": 1.9, "vertex": 1.25}

#: Doubling DRAM bandwidth may not increase window time by more than
#: this factor.  The relation is nearly exact — service times shrink
#: pointwise — but backfilled timelines can reorder completions at the
#: margin (observed worst case 0.9997, i.e. never slower).
BANDWIDTH_SLACK = 1.02

#: Relabeling vertices (graph isomorphism) may not change steady-state
#: throughput by more than this per-kernel ratio either way.
#: Structure, degrees, and traffic volumes are preserved; what
#: legitimately moves is the edge→thread split and the stripe/slice
#: placement.  The vertex (atomic) kernel is the loose one: relabeling
#: redistributes hub rows across near-memory atomic units, which moves
#: its serialization bottleneck (observed worst case 2.58x; dma 1.48x,
#: loop 1.09x).
RELABEL_SLACK = {"dma": 1.8, "loop": 1.3, "vertex": 3.2}


def _relation_failure(case, relation, detail):
    return {"case": case.name, "check": f"metamorphic:{relation}",
            "detail": detail}


def core_scaling_failures(case, base=None):
    """More cores must not slow the window down beyond CORE_SLACK."""
    if base is None:
        base = run_case(case)
    doubled = run_case(replace(case, n_cores=case.n_cores * 2))
    slack = CORE_SLACK[case.kernel]
    if doubled.sim_time_ns > base.sim_time_ns * slack:
        return [_relation_failure(
            case, "core-scaling",
            f"{case.n_cores}->{case.n_cores * 2} cores slowed the window "
            f"{base.sim_time_ns:.0f} -> {doubled.sim_time_ns:.0f} ns "
            f"(> {slack}x slack)",
        )]
    return []


def bandwidth_scaling_failures(case, base=None):
    """2x DRAM bandwidth must not slow SpMM beyond BANDWIDTH_SLACK."""
    if base is None:
        base = run_case(case)
    doubled = run_case(replace(
        case, dram_bandwidth_scale=case.dram_bandwidth_scale * 2
    ))
    limit = base.sim_time_ns * BANDWIDTH_SLACK
    if doubled.sim_time_ns > limit:
        return [_relation_failure(
            case, "bandwidth-scaling",
            f"2x bandwidth slowed the window "
            f"{base.sim_time_ns:.0f} -> {doubled.sim_time_ns:.0f} ns "
            f"(> {BANDWIDTH_SLACK}x slack)",
        )]
    return []


def relabel_failures(case, base=None):
    """Vertex relabeling must not move throughput beyond RELABEL_SLACK."""
    if base is None:
        base = run_case(case)
    adj = case.graph()
    perm = np.random.default_rng(case.graph_seed).permutation(adj.n_rows)
    relabeled = apply_permutation(adj, perm)
    result = simulate_spmm(
        relabeled, case.embedding_dim, config=case.config(),
        kernel=case.kernel, window_edges=case.window_edges,
    )
    if base.gflops <= 0 or result.gflops <= 0:
        return [_relation_failure(
            case, "relabel-invariance",
            f"non-positive throughput (base {base.gflops}, "
            f"relabeled {result.gflops})",
        )]
    ratio = result.gflops / base.gflops
    slack = RELABEL_SLACK[case.kernel]
    if not (1.0 / slack) <= ratio <= slack:
        return [_relation_failure(
            case, "relabel-invariance",
            f"relabeling moved throughput {base.gflops:.2f} -> "
            f"{result.gflops:.2f} GF (ratio {ratio:.3f}, slack "
            f"{slack}x)",
        )]
    return []


#: All relations, in the order the harness runs them.
RELATIONS = (
    ("core-scaling", core_scaling_failures),
    ("bandwidth-scaling", bandwidth_scaling_failures),
    ("relabel-invariance", relabel_failures),
)


def metamorphic_failures(case, base=None):
    """Run every relation on one case; returns failure records.

    ``base`` optionally reuses an already-computed result for the
    unmodified case (the differential oracle just ran it).

    Degraded cases are skipped: every relation edits a knob that the
    degradation spec's seeded membership draws depend on (doubling
    ``n_cores`` changes which cores/slices/links are degraded, so the
    edited run is not the same fault pattern scaled — the directional
    claims do not hold).  Bit-identity and the sanitizer remain the
    checks that cover the degraded regime.
    """
    if case.degradation is not None:
        return []
    if base is None:
        base = run_case(case)
    failures = []
    for _name, relation in RELATIONS:
        failures.extend(relation(case, base=base))
    return failures
