"""Conformance orchestration behind ``repro check`` and the CI lane.

One call runs the whole safety net over a seeded case population:

1. the three-way differential oracle on every case (fast vs reference
   bit-identity, both vs the Eq. 5 envelope), with the runtime
   invariant sanitizer armed at the requested ``check_level`` inside
   every run;
2. the metamorphic relations on every case;
3. the mutation smoke-checks — each seeded accounting perturbation
   must be caught by its named invariant on every requested engine.

The first failing case is greedily shrunk (same check, smaller
graph/config) and the shrunk reproduction — with every failure record
— can be written to a JSON artifact for CI upload.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import dataclass, field

from repro.testing.cases import generate_cases, shrink
from repro.testing.metamorphic import metamorphic_failures
from repro.testing.mutations import MUTATIONS, run_mutation
from repro.testing.oracle import differential_failures, run_case

#: Engine selections understood by :func:`run_conformance`.  Names
#: resolve through :data:`repro.testing.oracle.ENGINE_BACKENDS`;
#: ``"both"`` keeps its historical meaning (heap-backed fast vs
#: reference), ``"all"`` adds the vector replay engine and the
#: calendar-queue backend on both legacy loops.
ENGINE_CHOICES = {
    "fast": ("fast",),
    "reference": ("reference",),
    "calendar": ("calendar",),
    "vector": ("vector",),
    "both": ("fast", "reference"),
    "all": ("fast", "calendar", "vector", "reference",
            "reference-calendar"),
}


@dataclass
class ConformanceReport:
    """Outcome of one :func:`run_conformance` call.

    ``failures`` holds oracle/metamorphic failure records
    (``{"case", "check", "detail"}``); ``mutation_failures`` holds
    safety-net failures (a mutation the sanitizer missed or
    misattributed); ``shrunk`` is the minimized reproduction of the
    first oracle failure, if any.
    """

    cases: int
    check_level: int
    engines: tuple
    failures: list = field(default_factory=list)
    mutation_failures: list = field(default_factory=list)
    mutations_run: int = 0
    shrunk: dict = None
    wall_s: float = 0.0

    @property
    def passed(self):
        return not self.failures and not self.mutation_failures

    def to_json(self):
        return {
            "passed": self.passed,
            "cases": self.cases,
            "check_level": self.check_level,
            "engines": list(self.engines),
            "failures": self.failures,
            "mutation_failures": self.mutation_failures,
            "mutations_run": self.mutations_run,
            "shrunk": self.shrunk,
            "wall_s": self.wall_s,
        }

    def summary(self):
        verdict = "PASS" if self.passed else "FAIL"
        text = (
            f"[{verdict}] {self.cases} case(s) at check_level="
            f"{self.check_level} on {'+'.join(self.engines)} engine(s); "
            f"{self.mutations_run} mutation(s); "
            f"{len(self.failures)} oracle/metamorphic failure(s), "
            f"{len(self.mutation_failures)} sanitizer miss(es) "
            f"in {self.wall_s:.1f}s"
        )
        return text


def _shrink_failure(case, failure, check_level, engines):
    """Minimize the case behind one oracle failure record."""
    check = failure["check"]

    def still_fails(candidate):
        found = differential_failures(
            candidate, check_level=check_level, engines=engines
        )
        return any(f["check"] == check for f in found)

    smallest = shrink(case, still_fails)
    return {"check": check, "case": smallest.to_json()}


def run_conformance(n_cases=25, seed=0, check_level=2, engine="both", *,
                    metamorphic=True, mutations=True, cases=None,
                    artifact=None, out=None):
    """Run the full conformance suite; returns a :class:`ConformanceReport`.

    Parameters
    ----------
    n_cases / seed:
        Size and seed of the generated case population (ignored when
        an explicit ``cases`` list is given).
    check_level:
        Sanitizer level armed inside every differential run (the
        metamorphic and mutation stages manage their own levels).
    engine:
        ``"fast"``, ``"reference"``, ``"calendar"``, ``"both"``, or
        ``"all"`` (every loop x scheduler backend).  Bit-identity
        needs at least two; a single-engine run still exercises the
        sanitizer and the model envelope.
    metamorphic / mutations:
        Disable individual stages (the mutation stage patches engine
        classes, so e.g. a profiling run may want it off).
    cases:
        Explicit :class:`~repro.testing.cases.ConformanceCase` list —
        used to re-run a shrunk artifact.
    artifact:
        Path for the JSON report (written on failure *and* success;
        CI uploads it only when the lane fails).
    out:
        Progress callback (e.g. ``print``); ``None`` is silent.
    """
    engines = ENGINE_CHOICES[engine]
    if cases is None:
        cases = generate_cases(n_cases, seed=seed)
    emit = out if out is not None else (lambda _line: None)
    started = time.perf_counter()
    report = ConformanceReport(
        cases=len(cases), check_level=check_level, engines=engines,
    )

    first_failure = None
    for case in cases:
        failures = differential_failures(
            case, check_level=check_level, engines=engines
        )
        if metamorphic and not failures and case.degradation is None:
            # Reuse the oracle's base run only implicitly (results are
            # deterministic); relations re-run the unmodified case at
            # level 0 to keep their comparisons sanitizer-free.
            failures = metamorphic_failures(case, base=run_case(case))
        if failures:
            emit(f"{case.name}: {len(failures)} failure(s) — "
                 f"{failures[0]['check']}")
            report.failures.extend(failures)
            if first_failure is None:
                first_failure = (case, failures[0])
        else:
            emit(f"{case.name}: ok")

    if mutations:
        for name, mutation in sorted(MUTATIONS.items()):
            for eng in engines:
                report.mutations_run += 1
                error = run_mutation(name, engine=eng)
                if error is None:
                    report.mutation_failures.append({
                        "mutation": name,
                        "engine": eng,
                        "detail": (
                            "sanitizer did not fire at check_level="
                            f"{mutation.level} ({mutation.description})"
                        ),
                    })
                elif error.invariant != mutation.invariant:
                    report.mutation_failures.append({
                        "mutation": name,
                        "engine": eng,
                        "detail": (
                            f"expected invariant {mutation.invariant!r} "
                            f"but {error.invariant!r} fired: {error}"
                        ),
                    })
        emit(f"mutations: {report.mutations_run} run, "
             f"{len(report.mutation_failures)} missed")

    if first_failure is not None:
        case, failure = first_failure
        # Metamorphic failures are about *pairs* of runs; only the
        # differential checks shrink cleanly against a single case.
        if failure["check"].startswith(("invariant:", "engine-mismatch",
                                        "model-envelope:")):
            emit(f"shrinking {case.name} ({failure['check']})...")
            report.shrunk = _shrink_failure(
                case, failure, check_level, engines
            )

    report.wall_s = time.perf_counter() - started
    if artifact is not None:
        path = pathlib.Path(artifact)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
        emit(f"report written to {path}")
    return report
