"""Seeded conformance-case generation with greedy shrinking.

A :class:`ConformanceCase` is one fully-specified DES workload: an
RMAT graph recipe plus the kernel and config knobs of a single
``simulate_spmm`` invocation.  Cases are generated from a seed (the
same ``(n, seed)`` always yields the same population, so CI failures
reproduce locally), serialize to plain JSON (failing cases land in CI
artifacts), and shrink: given a predicate "this case still fails",
:func:`shrink` greedily walks toward the smallest graph/config that
keeps failing, which is what you want to debug, not the scale-9
original.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace

from repro.graphs.rmat import GRAPH500, RMATParams, rmat_graph
from repro.piuma.config import PIUMAConfig
from repro.piuma.degradation import DegradationSpec

#: Knob pools the generator draws from.  Deliberately spans both
#: bandwidth-bound (dma, large K) and latency-bound (loop, small K)
#: regimes, single-core and multi-core, and both RMAT flavors.
_POOLS = {
    "scale": (7, 8, 9),
    "edge_factor": (4, 8, 16),
    "symmetric": (True, False),
    "kernel": ("dma", "loop", "vertex"),
    "embedding_dim": (16, 64, 256),
    "n_cores": (1, 2, 4, 8),
    "threads_per_mtp": (4, 8, 16),
    "dram_latency_ns": (20.0, 45.0, 90.0),
    "dram_bandwidth_scale": (0.5, 1.0, 2.0),
    "window_edges": (1024, 2048),
}

#: Degradation specs a case may carry.  Drawn *after* every knob in
#: ``_POOLS`` and after ``graph_seed`` — a separate trailing draw, so
#: adding this axis changed no previously generated case — and mostly
#: ``None`` (the healthy fabric stays the dominant regime the envelopes
#: are calibrated on).  The degraded entries are mild single-axis
#: specs: fractions and intensities small enough that the kernels
#: complete and the differential oracle's bit-identity leg is the check
#: that matters (the Eq.5 envelopes are only applied to healthy cases).
_DEGRADATION_POOL = (
    None, None, None, None, None, None,
    DegradationSpec(degraded_link_fraction=0.25, link_latency_scale=2.0),
    DegradationSpec(degraded_slice_fraction=0.25,
                    slice_bandwidth_derate=0.75),
    DegradationSpec(stall_slice_fraction=0.25, stall_period_ns=20000.0,
                    stall_duration_ns=500.0),
    DegradationSpec(flaky_dma_fraction=0.25, dma_fail_period=32,
                    dma_retry_backoff_ns=100.0),
)

#: Shard counts a case may carry (the multi-node sharded oracle).
#: Drawn after every historical knob *and* after the degradation draw —
#: the same trailing-draw rule that kept old populations stable when
#: the degradation axis landed — and mostly 1 (monolithic stays the
#: dominant regime; sharded cases exercise the partition/halo path and
#: the Eq.5 multi-node envelope).
_SHARD_POOL = (1, 1, 1, 1, 2, 4)

#: Partitioning strategies a sharded case may use (drawn last of all).
_STRATEGY_POOL = ("block", "degree")


@dataclass(frozen=True)
class ConformanceCase:
    """One seeded DES workload: graph recipe + kernel + config knobs."""

    name: str
    scale: int
    edge_factor: int
    graph_seed: int
    symmetric: bool
    kernel: str
    embedding_dim: int
    n_cores: int
    threads_per_mtp: int
    dram_latency_ns: float
    dram_bandwidth_scale: float
    window_edges: int
    #: Optional hardware-fault spec (``None`` = healthy fabric).
    #: Appended after the original fields so positional construction
    #: of historical cases is unchanged.
    degradation: DegradationSpec | None = None
    #: Shard the case's graph across this many simulated nodes
    #: (1 = the historical monolithic case).  Appended after
    #: ``degradation`` under the same trailing-draw compatibility rule.
    n_shards: int = 1
    #: Partitioning strategy of a sharded case
    #: (:data:`repro.graphs.partition.PARTITION_STRATEGIES`).
    partition_strategy: str = "block"

    def config(self, check_level=0, engine_fast_path=True, **overrides):
        """The :class:`PIUMAConfig` this case runs under."""
        fields = {
            "n_cores": self.n_cores,
            "threads_per_mtp": self.threads_per_mtp,
            "dram_latency_ns": self.dram_latency_ns,
            "dram_bandwidth_scale": self.dram_bandwidth_scale,
            "check_level": check_level,
            "engine_fast_path": engine_fast_path,
            "degradation": self.degradation,
        }
        fields.update(overrides)
        return PIUMAConfig(**fields)

    def graph(self):
        """Materialize (and memoize) the case's RMAT adjacency."""
        key = (self.scale, self.edge_factor, self.graph_seed, self.symmetric)
        adj = _GRAPH_MEMO.get(key)
        if adj is None:
            adj = _GRAPH_MEMO[key] = rmat_graph(
                RMATParams(
                    scale=self.scale, edge_factor=self.edge_factor,
                    abcd=GRAPH500,
                ),
                seed=self.graph_seed,
                symmetric=self.symmetric,
            )
        return adj

    def to_json(self):
        """Plain-JSON description (CI artifacts, repro instructions)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data):
        degradation = data.get("degradation")
        if isinstance(degradation, dict):
            data = dict(data)
            data["degradation"] = DegradationSpec(**degradation)
        return cls(**data)


_GRAPH_MEMO = {}


def generate_cases(n, seed=0):
    """``n`` deterministic cases drawn from the knob pools.

    The same ``(n, seed)`` always produces the same list, and case
    ``i`` of a longer population equals case ``i`` of a shorter one
    with the same seed (draws are per-case), so "re-run case 17" is
    meaningful across invocations with different ``--cases``.
    """
    if n < 1:
        raise ValueError("need at least one case")
    cases = []
    for index in range(n):
        rng = random.Random(f"{seed}:{index}")
        knobs = {key: rng.choice(pool) for key, pool in _POOLS.items()}
        graph_seed = rng.randrange(1 << 16)
        # Drawn after every historical knob, so the degradation axis
        # changed no previously generated case population.
        degradation = rng.choice(_DEGRADATION_POOL)
        # Drawn after the degradation draw, same compatibility rule:
        # the shard axes changed no case generated before they existed.
        n_shards = rng.choice(_SHARD_POOL)
        partition_strategy = rng.choice(_STRATEGY_POOL)
        cases.append(
            ConformanceCase(
                name=f"case{index:03d}-s{seed}",
                graph_seed=graph_seed,
                degradation=degradation,
                n_shards=n_shards,
                partition_strategy=partition_strategy,
                **knobs,
            )
        )
    return cases


def _shrink_candidates(case):
    """Simpler variants of ``case``, most aggressive first.

    The kernel is never changed (which engine path a failure lives on
    is usually kernel-specific); everything that controls *size* or
    non-default knobs is walked toward the minimum.
    """
    candidates = []

    def emit(**changes):
        candidates.append(replace(case, **changes))

    if case.degradation is not None:
        # Try the healthy fabric first: a failure that survives without
        # the fault spec is a plain engine bug, which is the simpler
        # (and more alarming) reproduction.
        emit(degradation=None)
    if case.n_shards > 1:
        # Same idea for the shard axis: a failure that survives
        # monolithic is not a partition/halo bug.
        emit(n_shards=1, partition_strategy="block")
        emit(n_shards=max(1, case.n_shards // 2))
    if case.scale > 6:
        emit(scale=case.scale - 1)
    if case.edge_factor > 2:
        emit(edge_factor=max(2, case.edge_factor // 2))
    if case.window_edges > 256:
        emit(window_edges=max(256, case.window_edges // 2))
    if case.n_cores > 1:
        emit(n_cores=case.n_cores // 2)
    if case.threads_per_mtp > 1:
        emit(threads_per_mtp=max(1, case.threads_per_mtp // 2))
    if case.embedding_dim > 8:
        emit(embedding_dim=max(8, case.embedding_dim // 2))
    if case.dram_bandwidth_scale != 1.0:
        emit(dram_bandwidth_scale=1.0)
    if case.dram_latency_ns != 45.0:
        emit(dram_latency_ns=45.0)
    if not case.symmetric:
        emit(symmetric=True)
    return candidates


def shrink(case, still_fails, max_attempts=64):
    """Greedily minimize a failing case.

    ``still_fails(candidate)`` must return True when the candidate
    reproduces the original failure.  Classic greedy descent: try each
    simpler variant in order; on the first that still fails, restart
    from it.  Bounded by ``max_attempts`` predicate evaluations, so a
    flaky predicate cannot loop the harness.  Returns the smallest
    still-failing case found (possibly the original).
    """
    attempts = 0
    current = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if still_fails(candidate):
                current = replace(candidate, name=current.name + "'")
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current
