"""Three-way differential oracle: fast engine vs reference engine vs Eq. 5.

The fast and reference main loops promise *bit-identical* results
(DESIGN.md, "Host performance"), so the first leg compares every
observable of a :class:`~repro.piuma.kernels.KernelResult` exactly —
no tolerances.  The second leg checks both against the analytical
Equation 5 model: the DES has real mechanisms the model ignores
(latency chains, issue slots, queueing), so exact agreement is neither
expected nor desirable, but the efficiency ratio lives inside a
per-kernel envelope.  A simulator accounting bug that slips past the
runtime sanitizer tends to move that ratio wildly (double-counted
bytes halve it; lost occupancy inflates it past 1), which is what the
envelope is for — it is a tripwire, not a precision claim.
"""

from __future__ import annotations

from repro.piuma import (
    effective_total_bandwidth,
    simulate_spmm,
    spmm_model,
)
from repro.runtime.errors import InvariantViolation

#: Per-kernel (min, max) bounds on DES gflops / Eq.5 model gflops,
#: calibrated on the seeded case population (see
#: ``tests/testing/test_conformance.py::test_envelopes_calibrated``)
#: with ~2x headroom below and ~1.5x above the observed extremes.
#: The dma kernel tracks the bandwidth-bound model closely; the loop
#: kernel is latency-bound (Section IV-B) and lands far below it; the
#: vertex kernel sits between.
ENVELOPES = {
    "dma": (0.25, 1.70),
    "loop": (0.03, 1.10),
    "vertex": (0.12, 1.35),
}

#: Engine backends the oracle can drive: name -> PIUMAConfig knob
#: overrides.  ``"fast"``, ``"calendar"``, ``"vector"``, and
#: ``"reference"`` select main loops through the unified ``engine``
#: knob; ``"reference-calendar"`` exercises the legacy knob pair
#: (reference loop over the calendar queue), which doubles as the
#: back-compat regression for ``engine="auto"`` resolution.  All five
#: promise bit-identical results.
ENGINE_BACKENDS = {
    "fast": {"engine": "fast"},
    "calendar": {"engine": "calendar"},
    "vector": {"engine": "vector"},
    "reference": {"engine": "reference"},
    "reference-calendar": {"engine_fast_path": False,
                           "scheduler": "calendar"},
}


def run_case(case, check_level=0, engine_fast_path=None, scheduler=None,
             engine=None):
    """Execute one conformance case; returns the ``KernelResult``.

    ``engine`` names a backend from :data:`ENGINE_BACKENDS`; the
    legacy ``engine_fast_path``/``scheduler`` keywords are still
    honored (and compose with it) for callers predating the unified
    knob.
    """
    knobs = dict(ENGINE_BACKENDS[engine]) if engine else {}
    if engine_fast_path is not None:
        knobs["engine_fast_path"] = engine_fast_path
    if scheduler is not None:
        knobs["scheduler"] = scheduler
    return simulate_spmm(
        case.graph(),
        case.embedding_dim,
        config=case.config(check_level=check_level, **knobs),
        kernel=case.kernel,
        window_edges=case.window_edges,
    )


def result_signature(result):
    """Every observable that must be bit-identical across engines."""
    return {
        "sim_time_ns": result.sim_time_ns,
        "gflops": result.gflops,
        "projected_time_ns": result.projected_time_ns,
        "events": result.events,
        "window_edges": result.window_edges,
        "memory_utilization": result.memory_utilization,
        "achieved_bandwidth": result.achieved_bandwidth,
        "tag_stats": {
            tag: (s.count, s.bytes, s.wait_ns)
            for tag, s in sorted(result.tag_stats.items())
        },
    }


def run_sharded_case(case, check_level=0, engine_fast_path=None,
                     scheduler=None, engine=None):
    """Simulate every shard of a sharded case on one engine backend.

    The case's graph is partitioned ``case.n_shards`` ways with
    ``case.partition_strategy`` (the exact code path of the multi-node
    runner, via :func:`repro.runtime.shard.shard_geometry`) and each
    non-empty shard runs its own ``simulate_spmm``.  Returns a list of
    ``(KernelResult | None, geometry)`` pairs, shard order.
    """
    from repro.runtime.shard import shard_geometry

    knobs = dict(ENGINE_BACKENDS[engine]) if engine else {}
    if engine_fast_path is not None:
        knobs["engine_fast_path"] = engine_fast_path
    if scheduler is not None:
        knobs["scheduler"] = scheduler
    adj = case.graph()
    config = case.config(check_level=check_level, **knobs)
    shards = []
    for index in range(case.n_shards):
        sub, info = shard_geometry(
            adj, case.n_shards, index, case.partition_strategy
        )
        result = None
        if sub.nnz:
            result = simulate_spmm(
                sub, case.embedding_dim, config=config, kernel=case.kernel,
                window_edges=case.window_edges,
            )
        shards.append((result, info))
    return shards


def case_signature(case, outcome):
    """Bit-identity signature of a case outcome, monolithic or sharded.

    Monolithic outcomes (a ``KernelResult``) keep the historical flat
    signature; sharded outcomes (the list from :func:`run_sharded_case`)
    nest one signature per shard, so a divergence report names the
    offending shard.
    """
    if case.n_shards <= 1:
        return result_signature(outcome)
    return {
        f"shard{index}": (result_signature(result)
                          if result is not None else None)
        for index, (result, _info) in enumerate(outcome)
    }


def assembled_case_estimate(case, shards):
    """Assemble a sharded case's end-to-end multi-node estimate.

    Runs the same bulk-synchronous assembly as the ``repro multinode``
    runner (slowest shard + halo exchange on the inter-node tier), so
    the tier-3 envelope below checks the code path users see.
    """
    from repro.piuma.multinode import HaloFabric, assemble_multinode
    from repro.runtime.shard import conserved_counters

    config = case.config()
    records = [
        {
            "projected_time_ns": (float(result.projected_time_ns)
                                  if result is not None else 0.0),
            "shard": info,
            "conserved": conserved_counters(
                info["rows"], info["edges"], case.embedding_dim, config
            ),
        }
        for result, info in shards
    ]
    return assemble_multinode(
        records,
        dataset=case.name,
        strategy=case.partition_strategy,
        embedding_dim=case.embedding_dim,
        fabric=HaloFabric.from_config(config),
    )


def model_efficiency(case, result):
    """DES gflops as a fraction of the Eq. 5 model's prediction.

    For a case carrying a degradation spec the model is re-evaluated
    under the *derated* aggregate bandwidth (per-slice derates and
    stall duty cycles folded in — see ``effective_total_bandwidth``),
    so the envelope keeps measuring mechanism overhead rather than the
    fault injection itself.  On a healthy case the derated bandwidth
    equals the configured one and the ratio is unchanged.
    """
    adj = case.graph()
    config = case.config()
    bandwidth = effective_total_bandwidth(config)
    model = spmm_model(
        adj.n_rows, adj.nnz, case.embedding_dim, config,
        read_bandwidth=bandwidth, write_bandwidth=bandwidth,
    )
    return result.gflops / model.gflops if model.gflops > 0 else 0.0


def differential_failures(case, check_level=2, engines=("fast", "reference")):
    """Run the oracle on one case; returns failure records (empty = pass).

    ``engines`` names backends from :data:`ENGINE_BACKENDS`; every
    result is compared bit-for-bit against the reference engine (or the
    first backend that completed, when the reference was not requested).
    Each failure is a plain dict: ``{"case", "check", "detail"}`` with
    ``check`` one of ``invariant:<engine>``, ``engine-mismatch``, or
    ``model-envelope:<engine>``.  An ``InvariantViolation`` raised by
    the sanitizer inside any engine is captured as a failure record
    rather than propagating — the harness reports, it does not crash.
    """
    sharded = case.n_shards > 1
    failures = []
    results = {}
    for engine in engines:
        if engine not in ENGINE_BACKENDS:
            raise KeyError(f"unknown engine backend {engine!r}")
        try:
            if sharded:
                results[engine] = run_sharded_case(
                    case, check_level=check_level, engine=engine,
                )
            else:
                results[engine] = run_case(
                    case, check_level=check_level, engine=engine,
                )
        except InvariantViolation as error:
            failures.append({
                "case": case.name,
                "check": f"invariant:{engine}",
                "detail": str(error),
            })
    if len(results) >= 2:
        base_name = ("reference" if "reference" in results
                     else next(iter(results)))
        base = case_signature(case, results[base_name])
        for engine, result in results.items():
            if engine == base_name:
                continue
            sig = case_signature(case, result)
            if sig != base:
                diverged = sorted(
                    key for key in sig if sig[key] != base[key]
                )
                failures.append({
                    "case": case.name,
                    "check": "engine-mismatch",
                    "detail": (
                        f"{engine} and {base_name} engines disagree on "
                        f"{', '.join(diverged)}: "
                        + "; ".join(
                            f"{key} {engine}={sig[key]!r} "
                            f"{base_name}={base[key]!r}"
                            for key in diverged[:3]
                        )
                    ),
                })
    if sharded:
        # Tier-3 oracle of the sharded path: the assembled end-to-end
        # multi-node time must live inside the Eq.5-derived DGAS
        # envelope of ``repro.ext.distributed``.  Degraded-fabric cases
        # are exempt (the analytical DGAS aggregate knows nothing of
        # fault derating) — their load-bearing check is the per-shard
        # bit-identity leg above.
        if case.degradation is None and results:
            from repro.ext.distributed import multinode_envelope_failure

            adj = case.graph()
            config = case.config()
            for engine, shards in results.items():
                estimate = assembled_case_estimate(case, shards)
                detail = multinode_envelope_failure(
                    estimate.time_ns, adj.n_rows, adj.nnz,
                    case.embedding_dim, config, case.n_shards,
                    kernel=case.kernel,
                )
                if detail is not None:
                    failures.append({
                        "case": case.name,
                        "check": f"multinode-envelope:{engine}",
                        "detail": detail,
                    })
        return failures
    low, high = ENVELOPES[case.kernel]
    for engine, result in results.items():
        efficiency = model_efficiency(case, result)
        if not low <= efficiency <= high:
            failures.append({
                "case": case.name,
                "check": f"model-envelope:{engine}",
                "detail": (
                    f"{case.kernel} kernel at {efficiency:.4f} of the "
                    f"Eq.5 model, outside [{low}, {high}] "
                    f"(DES {result.gflops:.2f} GF)"
                ),
            })
    return failures
