"""Three-way differential oracle: fast engine vs reference engine vs Eq. 5.

The fast and reference main loops promise *bit-identical* results
(DESIGN.md, "Host performance"), so the first leg compares every
observable of a :class:`~repro.piuma.kernels.KernelResult` exactly —
no tolerances.  The second leg checks both against the analytical
Equation 5 model: the DES has real mechanisms the model ignores
(latency chains, issue slots, queueing), so exact agreement is neither
expected nor desirable, but the efficiency ratio lives inside a
per-kernel envelope.  A simulator accounting bug that slips past the
runtime sanitizer tends to move that ratio wildly (double-counted
bytes halve it; lost occupancy inflates it past 1), which is what the
envelope is for — it is a tripwire, not a precision claim.
"""

from __future__ import annotations

from repro.piuma import (
    effective_total_bandwidth,
    simulate_spmm,
    spmm_model,
)
from repro.runtime.errors import InvariantViolation

#: Per-kernel (min, max) bounds on DES gflops / Eq.5 model gflops,
#: calibrated on the seeded case population (see
#: ``tests/testing/test_conformance.py::test_envelopes_calibrated``)
#: with ~2x headroom below and ~1.5x above the observed extremes.
#: The dma kernel tracks the bandwidth-bound model closely; the loop
#: kernel is latency-bound (Section IV-B) and lands far below it; the
#: vertex kernel sits between.
ENVELOPES = {
    "dma": (0.25, 1.70),
    "loop": (0.03, 1.10),
    "vertex": (0.12, 1.35),
}

#: Engine backends the oracle can drive: name -> PIUMAConfig knob
#: overrides.  ``"fast"``, ``"calendar"``, ``"vector"``, and
#: ``"reference"`` select main loops through the unified ``engine``
#: knob; ``"reference-calendar"`` exercises the legacy knob pair
#: (reference loop over the calendar queue), which doubles as the
#: back-compat regression for ``engine="auto"`` resolution.  All five
#: promise bit-identical results.
ENGINE_BACKENDS = {
    "fast": {"engine": "fast"},
    "calendar": {"engine": "calendar"},
    "vector": {"engine": "vector"},
    "reference": {"engine": "reference"},
    "reference-calendar": {"engine_fast_path": False,
                           "scheduler": "calendar"},
}


def run_case(case, check_level=0, engine_fast_path=None, scheduler=None,
             engine=None):
    """Execute one conformance case; returns the ``KernelResult``.

    ``engine`` names a backend from :data:`ENGINE_BACKENDS`; the
    legacy ``engine_fast_path``/``scheduler`` keywords are still
    honored (and compose with it) for callers predating the unified
    knob.
    """
    knobs = dict(ENGINE_BACKENDS[engine]) if engine else {}
    if engine_fast_path is not None:
        knobs["engine_fast_path"] = engine_fast_path
    if scheduler is not None:
        knobs["scheduler"] = scheduler
    return simulate_spmm(
        case.graph(),
        case.embedding_dim,
        config=case.config(check_level=check_level, **knobs),
        kernel=case.kernel,
        window_edges=case.window_edges,
    )


def result_signature(result):
    """Every observable that must be bit-identical across engines."""
    return {
        "sim_time_ns": result.sim_time_ns,
        "gflops": result.gflops,
        "projected_time_ns": result.projected_time_ns,
        "events": result.events,
        "window_edges": result.window_edges,
        "memory_utilization": result.memory_utilization,
        "achieved_bandwidth": result.achieved_bandwidth,
        "tag_stats": {
            tag: (s.count, s.bytes, s.wait_ns)
            for tag, s in sorted(result.tag_stats.items())
        },
    }


def model_efficiency(case, result):
    """DES gflops as a fraction of the Eq. 5 model's prediction.

    For a case carrying a degradation spec the model is re-evaluated
    under the *derated* aggregate bandwidth (per-slice derates and
    stall duty cycles folded in — see ``effective_total_bandwidth``),
    so the envelope keeps measuring mechanism overhead rather than the
    fault injection itself.  On a healthy case the derated bandwidth
    equals the configured one and the ratio is unchanged.
    """
    adj = case.graph()
    config = case.config()
    bandwidth = effective_total_bandwidth(config)
    model = spmm_model(
        adj.n_rows, adj.nnz, case.embedding_dim, config,
        read_bandwidth=bandwidth, write_bandwidth=bandwidth,
    )
    return result.gflops / model.gflops if model.gflops > 0 else 0.0


def differential_failures(case, check_level=2, engines=("fast", "reference")):
    """Run the oracle on one case; returns failure records (empty = pass).

    ``engines`` names backends from :data:`ENGINE_BACKENDS`; every
    result is compared bit-for-bit against the reference engine (or the
    first backend that completed, when the reference was not requested).
    Each failure is a plain dict: ``{"case", "check", "detail"}`` with
    ``check`` one of ``invariant:<engine>``, ``engine-mismatch``, or
    ``model-envelope:<engine>``.  An ``InvariantViolation`` raised by
    the sanitizer inside any engine is captured as a failure record
    rather than propagating — the harness reports, it does not crash.
    """
    failures = []
    results = {}
    for engine in engines:
        if engine not in ENGINE_BACKENDS:
            raise KeyError(f"unknown engine backend {engine!r}")
        try:
            results[engine] = run_case(
                case, check_level=check_level, engine=engine,
            )
        except InvariantViolation as error:
            failures.append({
                "case": case.name,
                "check": f"invariant:{engine}",
                "detail": str(error),
            })
    if len(results) >= 2:
        base_name = ("reference" if "reference" in results
                     else next(iter(results)))
        base = result_signature(results[base_name])
        for engine, result in results.items():
            if engine == base_name:
                continue
            sig = result_signature(result)
            if sig != base:
                diverged = sorted(
                    key for key in sig if sig[key] != base[key]
                )
                failures.append({
                    "case": case.name,
                    "check": "engine-mismatch",
                    "detail": (
                        f"{engine} and {base_name} engines disagree on "
                        f"{', '.join(diverged)}: "
                        + "; ".join(
                            f"{key} {engine}={sig[key]!r} "
                            f"{base_name}={base[key]!r}"
                            for key in diverged[:3]
                        )
                    ),
                })
    low, high = ENVELOPES[case.kernel]
    for engine, result in results.items():
        efficiency = model_efficiency(case, result)
        if not low <= efficiency <= high:
            failures.append({
                "case": case.name,
                "check": f"model-envelope:{engine}",
                "detail": (
                    f"{case.kernel} kernel at {efficiency:.4f} of the "
                    f"Eq.5 model, outside [{low}, {high}] "
                    f"(DES {result.gflops:.2f} GF)"
                ),
            })
    return failures
