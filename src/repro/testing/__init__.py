"""Differential conformance harness for the PIUMA DES.

The simulator ships two bit-identical main loops plus an analytical
model of the same kernel, which makes it unusually testable: any
seeded workload can be run through the fast engine, the reference
engine, and the Equation 5 model, and the three answers cross-checked
without hand-written expectations.  This package packages that idea:

* :mod:`repro.testing.cases` — seeded RMAT/config case generation with
  greedy shrinking;
* :mod:`repro.testing.oracle` — the three-way differential oracle
  (fast vs reference bit-identity, both vs the Eq. 5 envelope);
* :mod:`repro.testing.metamorphic` — relations that must hold across
  config edits (more cores never slower beyond tolerance, more
  bandwidth never slower, vertex relabeling never changes throughput
  beyond tolerance);
* :mod:`repro.testing.mutations` — seeded accounting perturbations
  that the runtime invariant sanitizer (``repro.piuma.invariants``)
  must catch, each by a specific named invariant;
* :mod:`repro.testing.conformance` — the orchestration behind
  ``repro check`` and the CI ``conformance`` lane.
"""

from repro.testing.cases import ConformanceCase, generate_cases, shrink
from repro.testing.conformance import ConformanceReport, run_conformance
from repro.testing.mutations import MUTATIONS, run_mutation
from repro.testing.oracle import (
    differential_failures,
    run_case,
    run_sharded_case,
)

__all__ = [
    "ConformanceCase",
    "ConformanceReport",
    "MUTATIONS",
    "differential_failures",
    "generate_cases",
    "run_case",
    "run_conformance",
    "run_mutation",
    "run_sharded_case",
    "shrink",
]
