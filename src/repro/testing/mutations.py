"""Mutation smoke-checks for the runtime invariant sanitizer.

The sanitizer (``repro.piuma.invariants``) is itself code, and a
checker that never fires is indistinguishable from a checker that
works.  Each mutation here perturbs one *known accounting line* of the
engine — the kind of silent bookkeeping bug the sanitizer exists to
catch — and records which named invariant must fire, at which
``check_level``.  The conformance harness (and the CI lane) runs every
mutation on both engine paths and fails if the expected invariant does
not trip: a seeded-fault test of the safety net, not of the simulator.

Mutations patch *class* attributes (``DRAMSlice.request``,
``Timeline.backfill``, ``FluidResource.reserve``, ``Simulator``
internals) because the engine's inlined hot paths close over instances
and dicts, not over module globals; everything the hot loops reach via
a bound-method or dispatch-dict lookup is patchable here, and each
patch is restored on exit even when the run raises.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, replace

from repro.piuma.engine import Simulator
from repro.piuma.ops import DMAOp
from repro.piuma.resources import DRAMSlice, FluidResource, Timeline
from repro.runtime.errors import InvariantViolation
from repro.testing.cases import ConformanceCase
from repro.testing.oracle import run_case


@contextlib.contextmanager
def _slice_lost_bytes():
    """Drop half the served bytes from the slice's ledger.

    The timeline still carries the full occupancy, so
    ``busy_time * rate`` explains more bytes than ``bytes_served``
    claims — the classic one-sided accounting edit.
    """
    original = DRAMSlice.request

    def patched(self, now, nbytes, priority=False):
        done = original(self, now, nbytes, priority=priority)
        self.bytes_served -= 0.5 * nbytes
        return done

    DRAMSlice.request = patched
    try:
        yield
    finally:
        DRAMSlice.request = original


@contextlib.contextmanager
def _timeline_free_bandwidth():
    """Grant every DRAM window without recording any occupancy.

    The timeline stays empty forever (nothing is ever inserted, so
    every inlined fast path keeps falling through to ``backfill``),
    while ``bytes_served`` keeps growing: infinite free bandwidth.
    """
    original = Timeline.backfill

    def patched(self, arrival, duration):
        return arrival, arrival + duration

    Timeline.backfill = patched
    try:
        yield
    finally:
        Timeline.backfill = original


@contextlib.contextmanager
def _pipeline_time_travel():
    """Make pipeline reservations complete in the distant past."""
    original = FluidResource.reserve

    def patched(self, now, amount, extra_time=0.0):
        start, end = original(self, now, amount, extra_time=extra_time)
        return start, end - 1.0e6

    FluidResource.reserve = patched
    try:
        yield
    finally:
        FluidResource.reserve = original


@contextlib.contextmanager
def _busy_time_leak():
    """Under-account fluid busy time by half the service just charged."""
    original = FluidResource.reserve

    def patched(self, now, amount, extra_time=0.0):
        start, end = original(self, now, amount, extra_time=extra_time)
        self.busy_time -= 0.5 * (amount / self.rate + extra_time)
        return start, end

    FluidResource.reserve = patched
    try:
        yield
    finally:
        FluidResource.reserve = original


@contextlib.contextmanager
def _dma_lost_bytes():
    """Leak a quarter of every DMA payload from the engine's ledger.

    The hot DMA handler is a closure inlined against the resources, so
    the accounting line itself cannot be patched; instead the dispatch
    entry is wrapped post-construction (the checker reads the dispatch
    dict live, so the wrapper is on-path for both engine loops).
    """
    original_init = Simulator.__init__

    def patched_init(self, config):
        original_init(self, config)
        handler = self._dispatch[DMAOp]
        engines = self.dma_engines

        def lossy(op, now, core, mtp):
            result = handler(op, now, core, mtp)
            if op.nbytes:
                engines[core].bytes_moved -= 0.25 * op.nbytes
            return result

        self._dispatch[DMAOp] = lossy

    Simulator.__init__ = patched_init
    try:
        yield
    finally:
        Simulator.__init__ = original_init


@contextlib.contextmanager
def _stats_drift():
    """Inflate per-tag byte stats by 64 B per accounted op."""
    original = Simulator._account

    def patched(self, tag, nbytes, wait_ns):
        original(self, tag, nbytes + 64, wait_ns)

    Simulator._account = patched
    try:
        yield
    finally:
        Simulator._account = original


@contextlib.contextmanager
def _timeline_overlap():
    """Leave an out-of-order (zero-extent) interval on the timeline.

    Zero extent keeps every occupancy sum intact — only the structural
    ordering is corrupted, so precisely the level-2 timeline scan can
    see it.  Hooked into ``compact`` (the periodic history retirement)
    rather than the allocation path, so the corruption is refreshed
    after every retirement and is still present when the post-run scan
    walks the lists.
    """
    original = Timeline.compact

    def patched(self, cutoff):
        original(self, cutoff)
        starts = self._starts
        if starts:
            bad = starts[-1] - 5.0
            starts.append(bad)
            self._ends.append(bad)

    Timeline.compact = patched
    try:
        yield
    finally:
        Timeline.compact = original


@dataclass(frozen=True)
class Mutation:
    """One seeded accounting perturbation and what must catch it.

    ``invariant`` is the name (``repro.piuma.invariants.INVARIANTS``)
    that must fire; ``level`` is the minimum ``check_level`` at which
    it is guaranteed to.  ``kernel`` picks a workload that exercises
    the perturbed line (e.g. only the dma kernel issues ``DMAOp``).
    """

    name: str
    invariant: str
    level: int
    kernel: str
    description: str
    patch: object = field(repr=False)


MUTATIONS = {
    m.name: m
    for m in (
        Mutation(
            name="slice_lost_bytes",
            invariant="slice-byte-conservation",
            level=1,
            kernel="loop",
            description="DRAMSlice.request drops half of bytes_served",
            patch=_slice_lost_bytes,
        ),
        Mutation(
            name="timeline_free_bandwidth",
            invariant="slice-byte-conservation",
            level=1,
            kernel="dma",
            description="Timeline.backfill grants windows without "
                        "recording occupancy",
            patch=_timeline_free_bandwidth,
        ),
        Mutation(
            name="pipeline_time_travel",
            invariant="thread-legality",
            level=1,
            kernel="loop",
            description="FluidResource.reserve completes 1 ms in the past",
            patch=_pipeline_time_travel,
        ),
        Mutation(
            name="busy_time_leak",
            invariant="pipeline-busy-floor",
            level=1,
            kernel="loop",
            description="FluidResource.reserve under-accounts busy_time "
                        "by half",
            patch=_busy_time_leak,
        ),
        Mutation(
            name="dma_lost_bytes",
            invariant="engine-byte-conservation",
            level=1,
            kernel="dma",
            description="DMA dispatch leaks a quarter of bytes_moved",
            patch=_dma_lost_bytes,
        ),
        Mutation(
            name="stats_drift",
            invariant="stats-recompute",
            level=2,
            kernel="loop",
            description="Simulator._account inflates tag bytes by 64 B/op",
            patch=_stats_drift,
        ),
        Mutation(
            name="timeline_overlap",
            invariant="timeline-order",
            level=2,
            kernel="dma",
            description="Timeline.backfill appends one out-of-order "
                        "interval",
            patch=_timeline_overlap,
        ),
    )
}

#: Small fixed workload the smoke-check runs mutations on; the kernel
#: field is overridden per mutation.
SMOKE_CASE = ConformanceCase(
    name="mutation-smoke",
    scale=7,
    edge_factor=8,
    graph_seed=13,
    symmetric=True,
    kernel="dma",
    embedding_dim=64,
    n_cores=4,
    threads_per_mtp=8,
    dram_latency_ns=45.0,
    dram_bandwidth_scale=1.0,
    window_edges=1024,
)


def run_mutation(name, check_level=None, engine_fast_path=None, case=None,
                 scheduler=None, engine=None):
    """Run the smoke case under one mutation.

    Returns the :class:`InvariantViolation` the sanitizer raised, or
    ``None`` if the perturbed run completed silently (which the
    conformance harness treats as a failure of the safety net).
    ``check_level`` defaults to the mutation's guaranteed level.
    ``engine`` names a backend from
    :data:`repro.testing.oracle.ENGINE_BACKENDS`; the legacy
    ``engine_fast_path``/``scheduler`` knobs are still honored, as in
    :func:`repro.testing.oracle.run_case`.
    """
    mutation = MUTATIONS[name]
    if case is None:
        case = SMOKE_CASE
    case = replace(case, kernel=mutation.kernel)
    level = mutation.level if check_level is None else check_level
    with mutation.patch():
        try:
            run_case(case, check_level=level,
                     engine_fast_path=engine_fast_path,
                     scheduler=scheduler, engine=engine)
        except InvariantViolation as error:
            return error
    return None
