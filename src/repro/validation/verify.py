"""Simulator invariant checks.

Three families, matching DESIGN.md's validation strategy:

* **Conservation** — the DES must move the bytes Equations 1-3
  prescribe for the window it simulated (no silently dropped work).
* **Monotonicity** — more bandwidth never slower, more latency never
  faster (beyond measurement noise from the finite window).
* **Determinism** — identical configuration, identical result.

Each check returns an :class:`InvariantReport`; :func:`run_all_checks`
aggregates them into a user-facing self-test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.piuma import simulate_spmm
from repro.piuma.analytical import element_bytes
from repro.piuma.config import PIUMAConfig
from repro.sparse.spmm import spmm_traffic


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of one invariant check."""

    name: str
    passed: bool
    detail: str


def check_conservation(adj, embedding_dim=64, config=None, tolerance=0.35):
    """DES window bytes vs the pro-rated Equations 1-3 volume.

    The tolerance absorbs boundary effects: the window covers a
    fraction of edges but whole-row writes and grouped NNZ lines do not
    scale perfectly linearly.
    """
    config = config or PIUMAConfig(n_cores=2)
    result = simulate_spmm(adj, embedding_dim, config)
    moved = sum(s.bytes for s in result.tag_stats.values())
    expected = spmm_traffic(
        adj.n_rows, adj.nnz, embedding_dim, element_bytes(config)
    ).total_bytes * (result.window_edges / result.total_edges)
    ratio = moved / expected if expected else 0.0
    passed = abs(ratio - 1.0) <= tolerance
    return InvariantReport(
        name="conservation",
        passed=passed,
        detail=f"moved/expected = {ratio:.2f} (tolerance {tolerance:.0%})",
    )


def check_monotonicity(adj, embedding_dim=64, config=None, slack=1.25):
    """Resource monotonicity of the DES.

    ``slack`` bounds how much a *worse* configuration may appear
    *better* purely from window-measurement noise.
    """
    config = config or PIUMAConfig(n_cores=2)
    nominal = simulate_spmm(adj, embedding_dim, config).gflops
    half_bw = simulate_spmm(
        adj, embedding_dim, config.with_(dram_bandwidth_scale=0.5)
    ).gflops
    high_lat = simulate_spmm(
        adj, embedding_dim, config.with_(dram_latency_ns=720.0)
    ).gflops
    violations = []
    if half_bw > nominal * slack:
        violations.append(f"half bandwidth faster ({half_bw:.1f} vs {nominal:.1f})")
    if high_lat > nominal * slack:
        violations.append(f"16x latency faster ({high_lat:.1f} vs {nominal:.1f})")
    return InvariantReport(
        name="monotonicity",
        passed=not violations,
        detail="; ".join(violations) or
               f"nominal={nominal:.1f}, half-bw={half_bw:.1f}, "
               f"720ns={high_lat:.1f} GFLOP/s",
    )


def check_determinism(adj, embedding_dim=64, config=None):
    """Two identical runs must agree bit-for-bit."""
    config = config or PIUMAConfig(n_cores=2)
    first = simulate_spmm(adj, embedding_dim, config)
    second = simulate_spmm(adj, embedding_dim, config)
    passed = (
        first.gflops == second.gflops
        and first.sim_time_ns == second.sim_time_ns
    )
    return InvariantReport(
        name="determinism",
        passed=passed,
        detail=f"run1={first.gflops:.6f}, run2={second.gflops:.6f} GFLOP/s",
    )


def run_all_checks(adj, embedding_dim=64, config=None):
    """Run every invariant check; returns a list of reports."""
    return [
        check_conservation(adj, embedding_dim, config),
        check_monotonicity(adj, embedding_dim, config),
        check_determinism(adj, embedding_dim, config),
    ]
