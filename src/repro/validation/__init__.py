"""Validation and calibration of the simulator against the models.

The paper's methodology rests on two kinds of agreement: the DES must
track the bandwidth-bound analytical model where the model's
assumptions hold (calibration — Fig 5's "within 10-20%"), and the
simulator must conserve work and respond monotonically to resources
(verification).  This package automates both.
"""

from repro.validation.calibrate import (
    CalibrationPoint,
    CalibrationResult,
    calibrate_spmm_efficiency,
    calibration_from_records,
    calibration_tasks,
)
from repro.validation.verify import (
    InvariantReport,
    check_conservation,
    check_monotonicity,
    run_all_checks,
)

__all__ = [
    "CalibrationPoint",
    "CalibrationResult",
    "InvariantReport",
    "calibrate_spmm_efficiency",
    "calibration_from_records",
    "calibration_tasks",
    "check_conservation",
    "check_monotonicity",
    "run_all_checks",
]
