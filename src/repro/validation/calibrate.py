"""Calibrate the node-projection SpMM efficiency from DES runs.

``repro.piuma.gcn`` projects node-level GCN time as the Equation 5
model divided by an achieved-efficiency factor.  Rather than trusting
the 0.88 default, this module measures it: run the DMA kernel across a
(cores x embedding-dim) grid, record efficiency versus the analytical
model at matching configuration, and summarize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.piuma import simulate_spmm, spmm_model
from repro.piuma.config import PIUMAConfig


@dataclass(frozen=True)
class CalibrationPoint:
    """One (cores, K) measurement."""

    n_cores: int
    embedding_dim: int
    des_gflops: float
    model_gflops: float

    @property
    def efficiency(self):
        return self.des_gflops / self.model_gflops


@dataclass(frozen=True)
class CalibrationResult:
    """Summary of a calibration sweep."""

    points: tuple

    @property
    def mean_efficiency(self):
        return sum(p.efficiency for p in self.points) / len(self.points)

    @property
    def min_efficiency(self):
        return min(p.efficiency for p in self.points)

    @property
    def max_efficiency(self):
        return max(p.efficiency for p in self.points)

    @property
    def recommended(self):
        """Efficiency to use for node projections: the mean, clamped to
        1.0 (window noise can nudge single points above the roof)."""
        return min(1.0, self.mean_efficiency)

    def table_rows(self):
        """Rows for :func:`repro.report.format_table`."""
        return [
            [p.n_cores, p.embedding_dim, f"{p.des_gflops:.1f}",
             f"{p.model_gflops:.1f}", f"{p.efficiency:.2f}"]
            for p in self.points
        ]


def calibration_tasks(dataset, core_counts=(1, 2, 4, 8),
                      embedding_dims=(8, 64, 256), max_vertices=8192,
                      seed=0, kernel="dma", **config_overrides):
    """Build the calibration grid as runner tasks.

    The runner-facing twin of :func:`calibrate_spmm_efficiency`: the
    same (cores x K) grid expressed as picklable
    :class:`repro.runtime.SpMMTask` points, so the CLI can fan it over
    the process pool and memoize it through the result cache.
    """
    from repro.runtime import spmm_task

    return [
        spmm_task(
            dataset, k, kernel=kernel, max_vertices=max_vertices,
            seed=seed, n_cores=cores, **config_overrides,
        )
        for cores in core_counts
        for k in embedding_dims
    ]


def calibration_from_records(tasks, records):
    """Assemble a :class:`CalibrationResult` from sweep-runner records.

    Records carry both the DES throughput and the matching Equation 5
    model throughput, so no re-simulation is needed.
    """
    if not records:
        raise ValueError("empty calibration grid")
    points = tuple(
        CalibrationPoint(
            n_cores=dict(task.overrides)["n_cores"],
            embedding_dim=task.embedding_dim,
            des_gflops=record["gflops"],
            model_gflops=record["model_gflops"],
        )
        for task, record in zip(tasks, records)
    )
    return CalibrationResult(points=points)


def calibrate_spmm_efficiency(adj, core_counts=(1, 2, 4, 8),
                              embedding_dims=(8, 64, 256),
                              base_config=None, kernel="dma"):
    """Sweep the DES and return a :class:`CalibrationResult`.

    Parameters
    ----------
    adj:
        Reference CSR graph (a down-scaled `products` works well).
    core_counts, embedding_dims:
        The grid.
    base_config:
        Template :class:`PIUMAConfig`; ``n_cores`` is overridden per
        point.
    kernel:
        Kernel to calibrate (the node projection uses ``"dma"``).
    """
    base = base_config or PIUMAConfig()
    points = []
    for cores in core_counts:
        config = base.with_(n_cores=cores)
        for k in embedding_dims:
            des = simulate_spmm(adj, k, config, kernel=kernel)
            model = spmm_model(adj.n_rows, adj.nnz, k, config)
            points.append(
                CalibrationPoint(
                    n_cores=cores,
                    embedding_dim=k,
                    des_gflops=des.gflops,
                    model_gflops=model.gflops,
                )
            )
    if not points:
        raise ValueError("empty calibration grid")
    return CalibrationResult(points=tuple(points))
