"""Calibrate the node-projection SpMM efficiency from DES runs.

``repro.piuma.gcn`` projects node-level GCN time as the Equation 5
model divided by an achieved-efficiency factor.  Rather than trusting
the 0.88 default, this module measures it: run the DMA kernel across a
(cores x embedding-dim) grid, record efficiency versus the analytical
model at matching configuration, and summarize.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.piuma import simulate_spmm, spmm_model
from repro.piuma.config import PIUMAConfig


@dataclass(frozen=True)
class CalibrationPoint:
    """One (cores, K) measurement."""

    n_cores: int
    embedding_dim: int
    des_gflops: float
    model_gflops: float

    @property
    def efficiency(self):
        return self.des_gflops / self.model_gflops


@dataclass(frozen=True)
class CalibrationResult:
    """Summary of a calibration sweep."""

    points: tuple

    @property
    def mean_efficiency(self):
        return sum(p.efficiency for p in self.points) / len(self.points)

    @property
    def min_efficiency(self):
        return min(p.efficiency for p in self.points)

    @property
    def max_efficiency(self):
        return max(p.efficiency for p in self.points)

    @property
    def recommended(self):
        """Efficiency to use for node projections: the mean, clamped to
        1.0 (window noise can nudge single points above the roof)."""
        return min(1.0, self.mean_efficiency)

    def table_rows(self):
        """Rows for :func:`repro.report.format_table`."""
        return [
            [p.n_cores, p.embedding_dim, f"{p.des_gflops:.1f}",
             f"{p.model_gflops:.1f}", f"{p.efficiency:.2f}"]
            for p in self.points
        ]


def calibrate_spmm_efficiency(adj, core_counts=(1, 2, 4, 8),
                              embedding_dims=(8, 64, 256),
                              base_config=None, kernel="dma"):
    """Sweep the DES and return a :class:`CalibrationResult`.

    Parameters
    ----------
    adj:
        Reference CSR graph (a down-scaled `products` works well).
    core_counts, embedding_dims:
        The grid.
    base_config:
        Template :class:`PIUMAConfig`; ``n_cores`` is overridden per
        point.
    kernel:
        Kernel to calibrate (the node projection uses ``"dma"``).
    """
    base = base_config or PIUMAConfig()
    points = []
    for cores in core_counts:
        config = base.with_(n_cores=cores)
        for k in embedding_dims:
            des = simulate_spmm(adj, k, config, kernel=kernel)
            model = spmm_model(adj.n_rows, adj.nnz, k, config)
            points.append(
                CalibrationPoint(
                    n_cores=cores,
                    embedding_dim=k,
                    des_gflops=des.gflops,
                    model_gflops=model.gflops,
                )
            )
    if not points:
        raise ValueError("empty calibration grid")
    return CalibrationResult(points=tuple(points))
