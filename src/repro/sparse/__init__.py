"""Sparse-matrix substrate.

From-scratch (numpy-backed) COO and CSR matrices, the functional SpMM
kernels used by the GCN aggregation phase, GCN adjacency normalization,
and exact traffic accounting matching Equations 1-4 of the paper.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.normalize import add_self_loops, gcn_normalize, row_normalize
from repro.sparse.reorder import (
    apply_permutation,
    bandwidth,
    bfs_order,
    degree_order,
    random_order,
    rcm_order,
)
from repro.sparse.spmm import (
    SpMMTraffic,
    spmm,
    spmm_edge_parallel,
    spmm_traffic,
    spmm_vertex_parallel,
)

__all__ = [
    "COOMatrix",
    "CSCMatrix",
    "CSRMatrix",
    "SpMMTraffic",
    "add_self_loops",
    "apply_permutation",
    "bandwidth",
    "bfs_order",
    "degree_order",
    "gcn_normalize",
    "random_order",
    "rcm_order",
    "row_normalize",
    "spmm",
    "spmm_edge_parallel",
    "spmm_traffic",
    "spmm_vertex_parallel",
]
