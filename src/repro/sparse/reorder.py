"""Vertex reordering for locality.

Section V-A attributes the CPU's surprising strength on `products` to
cache reuse — OGB ships its graphs with community-preserving vertex
orders, which is a *reordering* effect.  This module implements the
standard orderings (BFS/reverse-Cuthill-McKee flavor, degree sort) plus
permutation application, so the locality knob of the timing models can
be *measured* on real structures instead of assumed: reordering a graph
measurably moves `repro.graphs.degree.reuse_distance_proxy`.
"""

from __future__ import annotations

import collections

import numpy as np

from repro.sparse.coo import COOMatrix


def apply_permutation(adj, perm):
    """Relabel vertices: new id of old vertex ``v`` is ``perm[v]``.

    Returns a new CSR with both rows and columns permuted (graph
    isomorphism — degrees and connectivity are preserved).
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.shape != (adj.n_rows,):
        raise ValueError("perm must assign a new id to every vertex")
    if np.unique(perm).shape[0] != adj.n_rows:
        raise ValueError("perm must be a permutation (no duplicates)")
    if adj.n_rows != adj.n_cols:
        raise ValueError("reordering expects a square adjacency")
    coo = adj.to_coo()
    return COOMatrix(
        perm[coo.rows], perm[coo.cols], coo.vals, adj.shape
    ).to_csr()


def bfs_order(adj, start=None):
    """BFS (Cuthill-McKee flavor) permutation.

    Vertices are numbered in breadth-first discovery order, neighbors
    visited lowest-degree-first; disconnected components are seeded from
    their lowest-degree unvisited vertex.  Returns ``perm`` with
    ``perm[old] = new``.
    """
    n = adj.n_rows
    degrees = adj.row_degrees()
    visited = np.zeros(n, dtype=bool)
    perm = np.empty(n, dtype=np.int64)
    counter = 0
    order_by_degree = np.argsort(degrees, kind="stable")
    seed_cursor = 0

    def next_seed():
        nonlocal seed_cursor
        while seed_cursor < n and visited[order_by_degree[seed_cursor]]:
            seed_cursor += 1
        return int(order_by_degree[seed_cursor]) if seed_cursor < n else None

    if start is not None:
        if not 0 <= start < n:
            raise ValueError("start vertex out of range")
        seeds = [int(start)]
    else:
        seeds = []
    queue = collections.deque()
    while counter < n:
        if not queue:
            seed = seeds.pop(0) if seeds else next_seed()
            if seed is None or visited[seed]:
                continue
            visited[seed] = True
            queue.append(seed)
        u = queue.popleft()
        perm[u] = counter
        counter += 1
        neighbors, _vals = adj.row(u)
        fresh = [int(v) for v in neighbors if not visited[v]]
        for v in sorted(fresh, key=lambda x: degrees[x]):
            visited[v] = True
            queue.append(v)
    return perm


def rcm_order(adj, start=None):
    """Reverse Cuthill-McKee: BFS order reversed (bandwidth reducer)."""
    perm = bfs_order(adj, start)
    return (adj.n_rows - 1) - perm


def degree_order(adj, descending=True):
    """Sort vertices by degree (hubs first by default).

    Hub-first numbering packs the hottest feature rows into the lowest
    addresses — the ordering that maximizes what a small cache retains.
    """
    degrees = adj.row_degrees()
    keys = -degrees if descending else degrees
    ranked = np.argsort(keys, kind="stable")
    perm = np.empty(adj.n_rows, dtype=np.int64)
    perm[ranked] = np.arange(adj.n_rows, dtype=np.int64)
    return perm


def random_order(adj, seed=0):
    """Random permutation — the locality-destroying baseline."""
    rng = np.random.default_rng(seed)
    return rng.permutation(adj.n_rows).astype(np.int64)


def bandwidth(adj):
    """Matrix bandwidth: max |row - col| over stored entries.

    The classic objective of RCM; smaller bandwidth means neighbor
    accesses land closer in memory.
    """
    if adj.nnz == 0:
        return 0
    rows = np.repeat(
        np.arange(adj.n_rows, dtype=np.int64), adj.row_degrees()
    )
    return int(np.abs(rows - adj.indices).max())
