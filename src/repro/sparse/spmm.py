"""Functional SpMM kernels and exact traffic accounting.

SpMM (``H_out = A_tilde @ H_in``) is the aggregation phase of a GCN layer
and the paper's central kernel (Algorithm 1).  Three functional variants
are provided:

* :func:`spmm` — the vectorized numpy reference.
* :func:`spmm_vertex_parallel` — rows partitioned across simulated
  threads (the CPU-optimized strategy of Section V-A).  Exposes the
  per-thread edge counts so the load-imbalance trade-off discussed in
  Section IV-B is observable.
* :func:`spmm_edge_parallel` — edges partitioned evenly (Algorithm 2),
  with the binary search for the starting row and counting of the atomic
  write-backs that make this strategy expensive on CPUs but cheap on
  PIUMA.

:func:`spmm_traffic` evaluates Equations 1-4 of the paper exactly; the
PIUMA analytical model (``repro.piuma.analytical``) and every platform
timing model consume it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

#: Default element sizes in bytes (int64 row/col indices, float64 values),
#: matching the numpy-backed functional kernels.  Timing models may pass
#: their own sizes (the paper's hardware uses 4-byte indices/floats).
DEFAULT_BYTES = {"row": 8, "col": 8, "nnz": 8, "feature": 8}


@dataclass(frozen=True)
class SpMMTraffic:
    """Byte and FLOP counts of one SpMM invocation (Equations 1-4).

    Attributes
    ----------
    csr_bytes:
        Reads of the CSR structure: ``(|V|+1) * B_R + |E| * (B_C + B_N)``.
    feature_bytes:
        Reads of the dense input features: ``K * |E| * B_F``.
    write_bytes:
        Writes of the dense output: ``K * |V| * B_F`` (each output row
        written exactly once, the model's optimal-caching assumption).
    flops:
        ``2 * |E| * K`` (one multiply and one add per edge per feature).
    """

    csr_bytes: int
    feature_bytes: int
    write_bytes: int
    flops: int

    @property
    def read_bytes(self):
        """Total bytes read (CSR structure plus features)."""
        return self.csr_bytes + self.feature_bytes

    @property
    def total_bytes(self):
        """Total bytes moved in either direction."""
        return self.read_bytes + self.write_bytes

    @property
    def arithmetic_intensity(self):
        """FLOPs per byte moved; low for SpMM, hence bandwidth-bound."""
        return self.flops / self.total_bytes if self.total_bytes else 0.0


def spmm_traffic(n_vertices, n_edges, embedding_dim, element_bytes=None):
    """Evaluate Equations 1-4 for a graph of given size.

    Parameters
    ----------
    n_vertices, n_edges:
        ``|V|`` and ``|E|`` of the (normalized) adjacency matrix.
    embedding_dim:
        Feature dimension ``K``.
    element_bytes:
        Mapping with keys ``row``, ``col``, ``nnz``, ``feature`` giving
        per-element sizes in bytes; defaults to :data:`DEFAULT_BYTES`.
    """
    sizes = dict(DEFAULT_BYTES)
    if element_bytes:
        sizes.update(element_bytes)
    csr_bytes = (n_vertices + 1) * sizes["row"] + n_edges * (
        sizes["col"] + sizes["nnz"]
    )
    feature_bytes = embedding_dim * n_edges * sizes["feature"]
    write_bytes = embedding_dim * n_vertices * sizes["feature"]
    flops = 2 * n_edges * embedding_dim
    return SpMMTraffic(
        csr_bytes=int(csr_bytes),
        feature_bytes=int(feature_bytes),
        write_bytes=int(write_bytes),
        flops=int(flops),
    )


def spmm(adj, features):
    """Reference SpMM: ``out = adj @ features`` (Algorithm 1), vectorized.

    Parameters
    ----------
    adj:
        :class:`CSRMatrix` of shape ``(n, m)``.
    features:
        Dense array of shape ``(m, K)``.
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[0] != adj.n_cols:
        raise ValueError(
            f"features must be ({adj.n_cols}, K), got {features.shape}"
        )
    scaled = adj.data[:, None] * features[adj.indices]
    out = np.zeros((adj.n_rows, features.shape[1]), dtype=np.float64)
    segment = np.repeat(np.arange(adj.n_rows, dtype=np.int64), adj.row_degrees())
    np.add.at(out, segment, scaled)
    return out


def partition_rows(adj, n_threads):
    """Split rows into ``n_threads`` contiguous chunks of near-equal count.

    Returns a list of ``(row_start, row_end)`` half-open ranges.  This is
    the vertex-parallel work division; chunks hold equal *vertices*, not
    equal *edges*, which is exactly the load-imbalance hazard the paper
    describes in Section IV-B.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    bounds = np.linspace(0, adj.n_rows, n_threads + 1).astype(np.int64)
    return [(int(bounds[t]), int(bounds[t + 1])) for t in range(n_threads)]


def partition_edges(adj, n_threads):
    """Split edges into ``n_threads`` near-equal chunks (Algorithm 2 line 3).

    Returns a list of ``(edge_start, edge_end, first_row)`` where
    ``first_row`` is the row owning ``edge_start``, found by binary search
    over ``indptr`` (Algorithm 2 line 4).
    """
    if n_threads < 1:
        raise ValueError("n_threads must be positive")
    bounds = np.linspace(0, adj.nnz, n_threads + 1).astype(np.int64)
    chunks = []
    for t in range(n_threads):
        start, end = int(bounds[t]), int(bounds[t + 1])
        # First row whose slice contains edge `start`.
        first_row = int(np.searchsorted(adj.indptr, start, side="right") - 1)
        chunks.append((start, end, first_row))
    return chunks


@dataclass(frozen=True)
class ParallelSpMMResult:
    """Output of a simulated-parallel SpMM run.

    Attributes
    ----------
    output:
        The dense result matrix.
    edges_per_thread:
        Edges processed by each simulated thread (load-balance metric).
    atomic_writes:
        Row write-backs requiring atomicity (0 for vertex-parallel; for
        edge-parallel, rows whose edges straddle a chunk boundary are
        written by more than one thread and every write-back is atomic).
    binary_searches:
        Binary searches performed to locate starting rows (edge-parallel
        only).
    """

    output: np.ndarray
    edges_per_thread: np.ndarray
    atomic_writes: int
    binary_searches: int


def spmm_vertex_parallel(adj, features, n_threads):
    """Vertex-parallel SpMM: each thread owns a contiguous row range.

    No atomics are needed because each output row has a single writer;
    the cost is potential load imbalance, reported via
    ``edges_per_thread``.
    """
    features = np.asarray(features, dtype=np.float64)
    out = np.zeros((adj.n_rows, features.shape[1]), dtype=np.float64)
    edges_per_thread = np.zeros(n_threads, dtype=np.int64)
    for t, (row_start, row_end) in enumerate(partition_rows(adj, n_threads)):
        lo = adj.indptr[row_start]
        hi = adj.indptr[row_end]
        edges_per_thread[t] = hi - lo
        if hi == lo:
            continue
        scaled = adj.data[lo:hi, None] * features[adj.indices[lo:hi]]
        segment = (
            np.repeat(
                np.arange(row_start, row_end, dtype=np.int64),
                np.diff(adj.indptr[row_start : row_end + 1]),
            )
            - row_start
        )
        chunk_out = np.zeros((row_end - row_start, features.shape[1]))
        np.add.at(chunk_out, segment, scaled)
        out[row_start:row_end] = chunk_out
    return ParallelSpMMResult(
        output=out,
        edges_per_thread=edges_per_thread,
        atomic_writes=0,
        binary_searches=0,
    )


def spmm_edge_parallel(adj, features, n_threads):
    """Edge-parallel SpMM (Algorithm 2): each thread owns an edge range.

    Perfect edge balance by construction; rows straddling chunk
    boundaries receive partial sums from multiple threads, so every
    write-back of such rows must be atomic.  The returned
    ``atomic_writes`` counts them, which the CPU model charges for and
    the PIUMA model absorbs with its remote-atomics engines.
    """
    features = np.asarray(features, dtype=np.float64)
    out = np.zeros((adj.n_rows, features.shape[1]), dtype=np.float64)
    chunks = partition_edges(adj, n_threads)
    edges_per_thread = np.zeros(n_threads, dtype=np.int64)
    writer_count = np.zeros(adj.n_rows, dtype=np.int64)
    for t, (start, end, first_row) in enumerate(chunks):
        edges_per_thread[t] = end - start
        if end == start:
            continue
        scaled = adj.data[start:end, None] * features[adj.indices[start:end]]
        # Row owning each edge in [start, end): walk indptr from first_row.
        rows = (
            np.searchsorted(
                adj.indptr, np.arange(start, end, dtype=np.int64), side="right"
            )
            - 1
        )
        np.add.at(out, rows, scaled)
        touched = np.unique(rows)
        writer_count[touched] += 1
    atomic_writes = int(np.count_nonzero(writer_count > 1))
    return ParallelSpMMResult(
        output=out,
        edges_per_thread=edges_per_thread,
        atomic_writes=atomic_writes,
        binary_searches=len(chunks),
    )
