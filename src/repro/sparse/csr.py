"""Compressed-sparse-row matrix.

CSR is the storage format assumed by the paper's analytical model
(Equation 1: a row-offset array, a column-index array and a non-zero
value array) and by both PIUMA SpMM kernels.  This implementation is
numpy-backed but self-contained — scipy is used only in the test suite
as an independent oracle.
"""

from __future__ import annotations

import numpy as np


class CSRMatrix:
    """A sparse matrix in compressed-sparse-row format.

    Parameters
    ----------
    indptr:
        Row-offset array of length ``n_rows + 1``; row ``u`` owns the
        half-open slice ``[indptr[u], indptr[u + 1])`` of ``indices``/``data``.
    indices:
        Column indices of stored entries, row-major.
    data:
        Values of stored entries.
    shape:
        ``(n_rows, n_cols)``.
    """

    def __init__(self, indptr, indices, data, shape):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.shape[0] != n_rows + 1:
            raise ValueError(
                f"indptr must have length n_rows + 1 = {n_rows + 1}, got {indptr.shape}"
            )
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if indptr[-1] != indices.shape[0]:
            raise ValueError("indptr[-1] must equal len(indices)")
        if indices.shape != data.shape:
            raise ValueError("indices and data must have equal length")
        if indices.size and (indices.min() < 0 or indices.max() >= n_cols):
            raise ValueError("column index out of range")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = (n_rows, n_cols)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(cls, src, dst, vals=None, shape=None):
        """Build a CSR matrix from an edge list (src -> dst)."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix(src, dst, vals, shape).to_csr()

    @classmethod
    def identity(cls, n):
        """The n-by-n identity matrix."""
        indptr = np.arange(n + 1, dtype=np.int64)
        indices = np.arange(n, dtype=np.int64)
        data = np.ones(n, dtype=np.float64)
        return cls(indptr, indices, data, (n, n))

    # -- basic properties --------------------------------------------------

    @property
    def nnz(self):
        """Number of stored entries."""
        return int(self.indices.shape[0])

    @property
    def n_rows(self):
        return self.shape[0]

    @property
    def n_cols(self):
        return self.shape[1]

    @property
    def density(self):
        """nnz / (n_rows * n_cols); 0.0 for an empty shape."""
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    def row_degrees(self):
        """Out-degree (stored entries per row) as an int64 array."""
        return np.diff(self.indptr)

    def row(self, u):
        """Return (column indices, values) of row ``u``."""
        lo, hi = self.indptr[u], self.indptr[u + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    # -- transformations ---------------------------------------------------

    def transpose(self):
        """Return the transpose as a new CSR matrix."""
        return self.to_coo().transpose().to_csr()

    def to_coo(self):
        """Convert to :class:`repro.sparse.COOMatrix`."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        return COOMatrix(rows, self.indices.copy(), self.data.copy(), self.shape)

    def to_dense(self):
        """Materialize as a dense numpy array (tests and small graphs only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(
            np.arange(self.n_rows, dtype=np.int64), self.row_degrees()
        )
        dense[rows, self.indices] = self.data
        return dense

    def scale_rows(self, factors):
        """Return a new CSR with row ``u`` multiplied by ``factors[u]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.n_rows,):
            raise ValueError("factors must have one entry per row")
        data = self.data * np.repeat(factors, self.row_degrees())
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    def scale_cols(self, factors):
        """Return a new CSR with column ``v`` multiplied by ``factors[v]``."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.n_cols,):
            raise ValueError("factors must have one entry per column")
        data = self.data * factors[self.indices]
        return CSRMatrix(self.indptr.copy(), self.indices.copy(), data, self.shape)

    # -- products ----------------------------------------------------------

    def matvec(self, x):
        """Sparse matrix - dense vector product."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (self.n_cols,):
            raise ValueError(f"vector of length {self.n_cols} expected")
        products = self.data * x[self.indices]
        out = np.zeros(self.n_rows, dtype=np.float64)
        segment = np.repeat(np.arange(self.n_rows, dtype=np.int64), self.row_degrees())
        np.add.at(out, segment, products)
        return out

    def matmat(self, dense):
        """Sparse matrix - dense matrix product (the SpMM reference)."""
        from repro.sparse.spmm import spmm

        return spmm(self, dense)

    def __repr__(self):
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
