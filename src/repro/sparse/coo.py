"""Coordinate-format sparse matrix.

COO is the natural output format of graph generators (an edge list with
optional weights); :class:`COOMatrix` provides validation, duplicate
handling and conversion to CSR, which every kernel in this repository
consumes.
"""

from __future__ import annotations

import numpy as np


class COOMatrix:
    """A sparse matrix in coordinate (edge-list) format.

    Parameters
    ----------
    rows, cols:
        Integer arrays of equal length giving the coordinates of each
        stored entry.
    vals:
        Optional float array of entry values.  When omitted every entry
        has value 1.0 (an unweighted graph).
    shape:
        ``(n_rows, n_cols)``.  When omitted it is inferred as the tightest
        shape containing all coordinates.
    """

    def __init__(self, rows, cols, vals=None, shape=None):
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.ndim != 1 or cols.ndim != 1:
            raise ValueError("rows and cols must be one-dimensional")
        if rows.shape[0] != cols.shape[0]:
            raise ValueError(
                f"rows ({rows.shape[0]}) and cols ({cols.shape[0]}) differ in length"
            )
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=np.float64)
        else:
            vals = np.asarray(vals, dtype=np.float64)
            if vals.shape != rows.shape:
                raise ValueError("vals must have the same length as rows/cols")
        if shape is None:
            n_rows = int(rows.max()) + 1 if rows.size else 0
            n_cols = int(cols.max()) + 1 if cols.size else 0
            shape = (n_rows, n_cols)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if rows.size:
            if rows.min() < 0 or cols.min() < 0:
                raise ValueError("negative coordinates are not allowed")
            if rows.max() >= n_rows or cols.max() >= n_cols:
                raise ValueError("coordinates exceed the declared shape")
        self.rows = rows
        self.cols = cols
        self.vals = vals
        self.shape = (n_rows, n_cols)

    @property
    def nnz(self):
        """Number of stored entries (duplicates counted separately)."""
        return int(self.rows.shape[0])

    def coalesce(self):
        """Return a new :class:`COOMatrix` with duplicate coordinates summed.

        Entries are sorted in row-major order, matching CSR layout.
        """
        if self.nnz == 0:
            return COOMatrix(self.rows, self.cols, self.vals, self.shape)
        keys = self.rows * self.shape[1] + self.cols
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        vals = self.vals[order]
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        summed = np.zeros(unique_keys.shape[0], dtype=np.float64)
        np.add.at(summed, inverse, vals)
        rows = unique_keys // self.shape[1]
        cols = unique_keys % self.shape[1]
        return COOMatrix(rows, cols, summed, self.shape)

    def transpose(self):
        """Return the transpose as a new :class:`COOMatrix`."""
        return COOMatrix(
            self.cols, self.rows, self.vals, (self.shape[1], self.shape[0])
        )

    def to_csr(self):
        """Convert to :class:`repro.sparse.CSRMatrix`, coalescing duplicates."""
        from repro.sparse.csr import CSRMatrix

        coalesced = self.coalesce()
        n_rows = self.shape[0]
        indptr = np.zeros(n_rows + 1, dtype=np.int64)
        np.add.at(indptr, coalesced.rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(indptr, coalesced.cols, coalesced.vals, self.shape)

    def to_dense(self):
        """Materialize as a dense numpy array (tests and small graphs only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(dense, (self.rows, self.cols), self.vals)
        return dense

    def __repr__(self):
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
