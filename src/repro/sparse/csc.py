"""Compressed-sparse-column matrix.

CSC is CSR of the transpose: column slices are contiguous.  The GCN
backward pass propagates gradients through ``A_tilde^T``; for the
symmetric normalized adjacency that equals ``A_tilde``, but the library
supports directed adjacencies too, and a CSC view gives the transpose
product without materializing a second CSR.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


class CSCMatrix:
    """A sparse matrix stored by compressed columns.

    Parameters mirror :class:`CSRMatrix` with roles swapped: ``indptr``
    has one slot per column, ``indices`` holds *row* ids.
    """

    def __init__(self, indptr, indices, data, shape):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        n_rows, n_cols = int(shape[0]), int(shape[1])
        if indptr.ndim != 1 or indptr.shape[0] != n_cols + 1:
            raise ValueError(
                f"indptr must have length n_cols + 1 = {n_cols + 1}"
            )
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing from 0")
        if indptr[-1] != indices.shape[0] or indices.shape != data.shape:
            raise ValueError("indptr/indices/data sizes are inconsistent")
        if indices.size and (indices.min() < 0 or indices.max() >= n_rows):
            raise ValueError("row index out of range")
        self.indptr = indptr
        self.indices = indices
        self.data = data
        self.shape = (n_rows, n_cols)

    @classmethod
    def from_csr(cls, csr):
        """Convert a :class:`CSRMatrix`; O(nnz log nnz)."""
        transposed = csr.transpose()  # CSR of A^T == CSC of A
        return cls(
            transposed.indptr,
            transposed.indices,
            transposed.data,
            csr.shape,
        )

    @property
    def nnz(self):
        return int(self.indices.shape[0])

    @property
    def n_rows(self):
        return self.shape[0]

    @property
    def n_cols(self):
        return self.shape[1]

    def col(self, v):
        """Return (row indices, values) of column ``v``."""
        lo, hi = self.indptr[v], self.indptr[v + 1]
        return self.indices[lo:hi], self.data[lo:hi]

    def col_degrees(self):
        """Stored entries per column."""
        return np.diff(self.indptr)

    def to_csr(self):
        """Convert back to row-compressed storage."""
        as_csr_of_transpose = CSRMatrix(
            self.indptr, self.indices, self.data,
            (self.n_cols, self.n_rows),
        )
        return as_csr_of_transpose.transpose()

    def to_dense(self):
        dense = np.zeros(self.shape, dtype=np.float64)
        cols = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), self.col_degrees()
        )
        dense[self.indices, cols] = self.data
        return dense

    def transpose_matmat(self, dense):
        """Compute ``A^T @ dense`` directly from the CSC view.

        Column slices of ``A`` are row slices of ``A^T``, so this is an
        ordinary SpMM over the CSC arrays — no transpose materialized.
        """
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2 or dense.shape[0] != self.n_rows:
            raise ValueError(f"dense must be ({self.n_rows}, K)")
        scaled = self.data[:, None] * dense[self.indices]
        out = np.zeros((self.n_cols, dense.shape[1]), dtype=np.float64)
        segment = np.repeat(
            np.arange(self.n_cols, dtype=np.int64), self.col_degrees()
        )
        np.add.at(out, segment, scaled)
        return out

    def __repr__(self):
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
