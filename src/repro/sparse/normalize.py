"""GCN adjacency normalization.

Kipf & Welling's GCN propagates features through the renormalized
adjacency ``A_tilde = D^-1/2 (A + I) D^-1/2`` where ``D`` is the degree
matrix of ``A + I``.  The paper's SpMM kernel always multiplies by this
normalized matrix, so every workload in this repository is built through
:func:`gcn_normalize`.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def add_self_loops(adj):
    """Return ``A + I`` as a new CSR matrix.

    An existing self loop is summed with the added one, matching the
    coalescing semantics of torch-sparse.
    """
    if adj.n_rows != adj.n_cols:
        raise ValueError("self loops require a square matrix")
    n = adj.n_rows
    coo = adj.to_coo()
    rows = np.concatenate([coo.rows, np.arange(n, dtype=np.int64)])
    cols = np.concatenate([coo.cols, np.arange(n, dtype=np.int64)])
    vals = np.concatenate([coo.vals, np.ones(n, dtype=np.float64)])
    return COOMatrix(rows, cols, vals, (n, n)).to_csr()


def gcn_normalize(adj, self_loops=True):
    """Symmetrically normalize an adjacency matrix for GCN propagation.

    Parameters
    ----------
    adj:
        Square :class:`CSRMatrix` adjacency.  Values are interpreted as
        edge weights.
    self_loops:
        When true (the GCN default), ``A + I`` is normalized instead of
        ``A`` so every vertex contributes its own features.

    Returns
    -------
    CSRMatrix
        ``D^-1/2 (A [+ I]) D^-1/2`` where ``D`` is the weighted degree of
        the (possibly self-looped) matrix.  Zero-degree vertices produce
        all-zero rows/columns rather than NaNs.
    """
    if adj.n_rows != adj.n_cols:
        raise ValueError("GCN normalization requires a square adjacency")
    work = add_self_loops(adj) if self_loops else adj
    degrees = np.zeros(work.n_rows, dtype=np.float64)
    row_ids = np.repeat(
        np.arange(work.n_rows, dtype=np.int64), work.row_degrees()
    )
    np.add.at(degrees, row_ids, work.data)
    inv_sqrt = np.zeros_like(degrees)
    positive = degrees > 0
    inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
    return work.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


def row_normalize(adj):
    """Row-stochastic normalization ``D^-1 A`` (mean aggregation).

    Provided for the GraphSAGE-style sampling extension (Section VI of
    the paper); GCN itself uses :func:`gcn_normalize`.
    """
    degrees = np.zeros(adj.n_rows, dtype=np.float64)
    row_ids = np.repeat(np.arange(adj.n_rows, dtype=np.int64), adj.row_degrees())
    np.add.at(degrees, row_ids, adj.data)
    inv = np.zeros_like(degrees)
    positive = degrees > 0
    inv[positive] = 1.0 / degrees[positive]
    return adj.scale_rows(inv)
