"""NUMA placement effects on the Xeon model.

The paper notes "the control of threads and memory was maintained using
numactl flags and OpenMP variables" — because on a dual-socket system
the *placement policy* decides how much of the STREAM bandwidth an
SpMM actually sees.  Three policies are modeled:

* ``local``      — memory bound to each thread's socket (numactl
  ``--localalloc`` with pinned threads): full socket bandwidth.
* ``interleave`` — pages round-robin across sockets (numactl
  ``--interleave=all``): half of every socket's traffic crosses the
  UPI links.
* ``remote``     — worst case, all traffic crosses UPI (mis-pinned
  threads): the interconnect is the ceiling.
"""

from __future__ import annotations

from repro.cpu.stream import stream_bandwidth

POLICIES = ("local", "interleave", "remote")

#: Aggregate UPI bandwidth between the two sockets (3 links, Ice Lake).
DEFAULT_UPI_GBPS = 62.4


def numa_bandwidth(n_threads, config, policy="local",
                   upi_gbps=DEFAULT_UPI_GBPS):
    """Effective bandwidth (GB/s) under a NUMA placement policy.

    ``local`` returns the STREAM curve unchanged.  ``interleave``
    serves half the traffic locally and half across UPI, so the
    effective rate is harmonic in the two paths.  ``remote`` is
    UPI-capped.
    """
    if policy not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}")
    if upi_gbps <= 0:
        raise ValueError("upi_gbps must be positive")
    local = stream_bandwidth(n_threads, config)
    if local == 0.0:
        return 0.0
    if policy == "local" or config.n_sockets == 1:
        return local
    if policy == "remote":
        return min(local, upi_gbps)
    # Interleave: for each byte, 1/2 local + 1/2 remote (UPI-capped).
    remote_rate = min(local, upi_gbps)
    return 2.0 / (1.0 / local + 1.0 / remote_rate)


def numa_penalty(n_threads, config, policy, upi_gbps=DEFAULT_UPI_GBPS):
    """Slowdown factor of ``policy`` versus local allocation (>= 1)."""
    local = numa_bandwidth(n_threads, config, "local")
    chosen = numa_bandwidth(n_threads, config, policy, upi_gbps)
    return local / chosen if chosen > 0 else float("inf")


def spmm_time_with_numa(n_vertices, n_edges, embedding_dim, config,
                        n_cores=None, skew=None, policy="local",
                        upi_gbps=DEFAULT_UPI_GBPS):
    """CPU SpMM estimate under a NUMA policy.

    Same structure as :func:`repro.cpu.spmm.spmm_time`, with the DRAM
    term served at the policy's effective bandwidth (cache hits are
    socket-local under every policy).
    """
    from repro.cpu.cache import DEFAULT_SKEW, feature_hit_rate
    from repro.cpu.spmm import CPU_ELEMENT_BYTES, CPUSpMMEstimate
    from repro.sparse.spmm import spmm_traffic

    if skew is None:
        skew = DEFAULT_SKEW
    n_cores = n_cores or config.physical_cores
    traffic = spmm_traffic(
        n_vertices, n_edges, embedding_dim, CPU_ELEMENT_BYTES
    )
    hit = feature_hit_rate(n_vertices, embedding_dim, config, skew)
    dram_bytes = (
        traffic.csr_bytes
        + (1.0 - hit) * traffic.feature_bytes
        + traffic.write_bytes
    )
    cache_bytes = hit * traffic.feature_bytes
    dram_bw = (
        numa_bandwidth(n_cores, config, policy, upi_gbps)
        * config.spmm_stream_efficiency
    )
    cache_bw = config.cache_bandwidth_gbps_per_core * min(
        n_cores, config.physical_cores
    )
    memory_ns = dram_bytes / dram_bw + cache_bytes / cache_bw
    compute_ns = traffic.flops / (
        config.peak_gflops(n_cores) * config.spmm_compute_efficiency
    )
    time_ns = max(memory_ns, compute_ns)
    return CPUSpMMEstimate(
        time_ns=time_ns,
        gflops=traffic.flops / time_ns,
        hit_rate=hit,
        dram_bytes=dram_bytes,
        cache_bytes=cache_bytes,
        bound="memory" if memory_ns >= compute_ns else "compute",
    )
