"""Analytical timing model of the dual-socket Xeon 8380 testbed."""

from repro.cpu.cache import (
    feature_hit_rate,
    feature_working_set,
    measured_locality,
)
from repro.cpu.config import XeonConfig
from repro.cpu.densemm import CPUDenseMMEstimate
from repro.cpu.densemm import dense_mm_time as cpu_dense_mm_time
from repro.cpu.gcn import gcn_breakdown as cpu_gcn_breakdown
from repro.cpu.numa import numa_bandwidth, numa_penalty, spmm_time_with_numa
from repro.cpu.spmm import (
    CPUSpMMEstimate,
    spmm_time,
    spmm_time_edge_parallel,
)
from repro.cpu.stream import socket_bandwidth, stream_bandwidth

__all__ = [
    "CPUDenseMMEstimate",
    "CPUSpMMEstimate",
    "XeonConfig",
    "cpu_dense_mm_time",
    "cpu_gcn_breakdown",
    "feature_hit_rate",
    "feature_working_set",
    "measured_locality",
    "numa_bandwidth",
    "numa_penalty",
    "socket_bandwidth",
    "spmm_time",
    "spmm_time_edge_parallel",
    "spmm_time_with_numa",
    "stream_bandwidth",
]
