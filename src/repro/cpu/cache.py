"""Feature-vector reuse (cache-hit) model.

SpMM's irregular reads of the dense feature matrix are the traffic the
Xeon cache hierarchy can absorb: when the feature matrix fits on chip,
nearly every gather hits; when it is far larger, only the hub vertices'
rows stay resident.  The hit rate therefore depends on the ratio of
cache capacity to the feature working set, sharpened by the degree skew
of the graph (hubs concentrate reuse).  This is the mechanism behind
three observations in the paper: small graphs are cache-resident at low
K (Fig 3), caching benefits shrink as K grows (Key Takeaway 1 of
Section III), and `products` on 16 CPU cores edges out PIUMA (Fig 8
middle).
"""

from __future__ import annotations

#: Degree skew of the OGB graphs (hub-dominated, power-law-ish); RMAT
#: sweeps with uniform degrees use 0.0.
DEFAULT_SKEW = 0.35

#: Hit-rate ceiling: cold misses and conflict misses never vanish.
MAX_HIT_RATE = 0.98


def feature_working_set(n_vertices, embedding_dim, feature_bytes=4):
    """Bytes of the dense feature matrix read by one SpMM."""
    return n_vertices * embedding_dim * feature_bytes


def measured_locality(adj, window=8192, samples=40, seed=0):
    """Estimate the locality/skew knob from a materialized graph.

    Combines the two measurable reuse drivers: hub concentration
    (exact-repeat reuse of hot feature rows) and ordering quality (the
    window-span fraction — how much of the feature matrix each temporal
    window touches).  Returns a value in [0, 0.95] usable directly as
    the ``skew`` argument of :func:`feature_hit_rate` — closing the
    loop between `repro.sparse.reorder` measurements and the timing
    model.
    """
    from repro.graphs.degree import (
        reuse_distance_proxy,
        window_span_fraction,
    )

    reuse = reuse_distance_proxy(adj, window=window)
    span = window_span_fraction(adj, window=window, samples=samples,
                                seed=seed)
    # Either mechanism alone suffices to keep hot rows resident.
    return float(min(0.95, max(reuse, 1.0 - span)))


def feature_hit_rate(n_vertices, embedding_dim, config, skew=DEFAULT_SKEW):
    """Expected cache-hit fraction for SpMM feature gathers.

    With capacity ``c`` and working set ``w``, a uniform-degree graph
    hits with probability ``c / w`` (a random row is resident that
    often).  Degree skew raises this: caching the hottest rows captures
    disproportionally many edges, modeled as ``(c / w) ** (1 - skew)``.
    """
    if not 0 <= skew < 1:
        raise ValueError("skew must be in [0, 1)")
    working_set = feature_working_set(n_vertices, embedding_dim)
    if working_set <= 0:
        return MAX_HIT_RATE
    ratio = min(1.0, config.cache_bytes() / working_set)
    return min(MAX_HIT_RATE, ratio ** (1.0 - skew))
