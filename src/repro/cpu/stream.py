"""STREAM-style memory-bandwidth curve for the Xeon model.

The paper measures effective bandwidth with a STREAM benchmark under
``numactl``/OpenMP control (Fig 8 left): bandwidth rises with thread
count, saturates per socket, doubles when the second socket fills, and
*decreases* past 80 threads because hyperthread pairs contend for the
same load/store resources.  This module reproduces that curve with a
saturating per-socket model plus an SMT-contention term.
"""

from __future__ import annotations


def socket_bandwidth(n_cores, config):
    """Achievable bandwidth (GB/s) of ``n_cores`` threads on one socket.

    A saturating hyperbola anchored at the measured single-core
    bandwidth and the socket's STREAM plateau.
    """
    if n_cores <= 0:
        return 0.0
    peak = config.stream_socket_gbps
    single = config.single_core_gbps
    # bw(n) = peak * n / (n + k); k chosen so bw(1) == single.
    k = peak / single - 1.0
    return peak * n_cores / (n_cores + k)


def stream_bandwidth(n_threads, config):
    """System bandwidth (GB/s) with ``n_threads`` STREAM threads.

    Threads fill socket 0's physical cores first, then socket 1, then
    hyperthreads.  Hyperthreading beyond the physical core count causes
    contention that *reduces* total bandwidth — the Fig 8 (left) dip.
    """
    if n_threads <= 0:
        return 0.0
    per_socket = config.cores_per_socket
    physical = config.physical_cores
    n_threads = min(n_threads, config.max_threads)

    total = 0.0
    remaining = min(n_threads, physical)
    for _socket in range(config.n_sockets):
        on_this = min(remaining, per_socket)
        total += socket_bandwidth(on_this, config)
        remaining -= on_this
        if remaining <= 0:
            break

    if n_threads > physical:
        # Each hyperthread pair contends on load/store queues; at full
        # SMT the system loses `ht_contention` of its plateau.
        extra = n_threads - physical
        overcommit = extra / (config.max_threads - physical)
        total *= 1.0 - config.ht_contention * overcommit
    return total
