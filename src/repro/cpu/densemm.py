"""Dense MM timing on the Xeon model.

A classic roofline: AVX-512 FMA peak scaled by framework-SGEMM
efficiency, crossed with streaming the activations through DRAM (the
weight matrix stays cache-resident).  CPUs are strong here — which is
exactly why the GCN bottleneck on Xeon is SpMM, not the update.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.stream import stream_bandwidth


@dataclass(frozen=True)
class CPUDenseMMEstimate:
    """Prediction for one dense update on the Xeon model."""

    time_ns: float
    flops: int
    gflops: float
    bound: str  # "compute" or "bandwidth"


def dense_mm_time(n_rows, in_dim, out_dim, config, n_cores=None):
    """Estimate ``(n_rows x in_dim) @ (in_dim x out_dim)`` on Xeon."""
    if min(n_rows, in_dim, out_dim) < 1:
        raise ValueError("matrix dimensions must be positive")
    n_cores = n_cores or config.physical_cores
    flops = 2 * n_rows * in_dim * out_dim
    compute_ns = flops / (config.peak_gflops(n_cores) * config.gemm_efficiency)
    streamed = n_rows * (in_dim + out_dim) * 4
    bandwidth_ns = streamed / stream_bandwidth(n_cores, config)
    time_ns = max(compute_ns, bandwidth_ns)
    return CPUDenseMMEstimate(
        time_ns=time_ns,
        flops=flops,
        gflops=flops / time_ns,
        bound="compute" if compute_ns >= bandwidth_ns else "bandwidth",
    )
