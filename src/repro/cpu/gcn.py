"""Full-GCN timing on the Xeon model (Fig 3).

Per layer: SpMM (vertex-parallel, cache-aware), Dense MM (SGEMM
roofline) and Glue Code — the paper's third category comprising
activation functions, kernel initialization and PyTorch wrapper
overhead.  Glue is modeled as element-wise streaming passes over the
layer's activations plus a fixed per-layer framework overhead; for
graphs whose activations blow out the cache (``papers``), the streaming
term grows and Glue gains share, exactly as Section III-C observes.
"""

from __future__ import annotations

from repro.core.breakdown import ExecutionBreakdown, combine
from repro.cpu.cache import DEFAULT_SKEW
from repro.cpu.densemm import dense_mm_time
from repro.cpu.spmm import spmm_time
from repro.cpu.stream import stream_bandwidth


def layer_breakdown(shape, config, n_cores=None, skew=DEFAULT_SKEW):
    """Per-phase time of one GCN layer on Xeon, in nanoseconds."""
    n_cores = n_cores or config.physical_cores
    spmm_ns = spmm_time(
        shape.n_vertices, shape.n_edges, shape.in_dim, config, n_cores, skew
    ).time_ns
    return _assemble(shape, config, n_cores, spmm_ns)


def _assemble(shape, config, n_cores, spmm_ns):
    dense_ns = dense_mm_time(
        shape.n_vertices, shape.update_in_dim, shape.out_dim, config,
        n_cores,
    ).time_ns
    # Glue: bias add (read+write) and, if present, the activation
    # (read+write) over the output activations, plus framework dispatch.
    passes = 2 if shape.has_activation else 1
    glue_bytes = passes * 2 * shape.n_vertices * shape.out_dim * 4
    glue_ns = glue_bytes / stream_bandwidth(n_cores, config) + (
        config.glue_overhead_ns
    )
    return ExecutionBreakdown(spmm=spmm_ns, dense=dense_ns, glue=glue_ns)


def gcn_breakdown(workload, config, n_cores=None, skew=None):
    """Whole-model Xeon :class:`ExecutionBreakdown` (ns) for a workload.

    The cache-skew parameter defaults to the dataset's ``locality``
    (how strongly its access pattern concentrates reuse).
    """
    if skew is None:
        skew = workload.dataset.locality
    return combine(
        layer_breakdown(shape, config, n_cores, skew)
        for shape in workload.layer_shapes()
    )
