"""Xeon CPU configuration.

Parameters of the paper's CPU testbed: a dual-socket Intel Xeon
Platinum 8380 (Ice Lake SP) — 40 cores per socket, AVX-512 with two FMA
units per core, 8 channels of DDR4-3200 per socket, 512 GB of main
memory.  Efficiency factors calibrate what PyTorch-Geometric +
torch-sparse achieve relative to hardware peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class XeonConfig:
    """Dual-socket Xeon 8380 model parameters."""

    # Topology.
    cores_per_socket: int = 40
    n_sockets: int = 2
    smt_per_core: int = 2

    # Compute: AVX-512, 2 FMA units, 16 fp32 lanes each.
    clock_ghz: float = 2.3
    fma_units: int = 2
    simd_lanes: int = 16

    # Cache hierarchy (fp32 working sets).
    l2_kb_per_core: int = 1280
    l3_mb_per_socket: int = 60
    #: Per-core on-chip bandwidth serving cache-resident SpMM gathers
    #: (L2/L3 hit service; scales with active cores).
    cache_bandwidth_gbps_per_core: float = 40.0

    # Memory system (STREAM-like achievable, not theoretical).
    stream_socket_gbps: float = 165.0
    single_core_gbps: float = 16.0
    #: Fractional bandwidth lost per fully hyperthreaded socket pair
    #: (Fig 8 left: bandwidth *decreases* past 80 threads).
    ht_contention: float = 0.15
    memory_gb: int = 512

    # Achievable-efficiency calibration.
    #: Fraction of STREAM bandwidth an irregular SpMM gather sustains.
    spmm_stream_efficiency: float = 0.55
    #: Fraction of AVX-512 peak a framework SGEMM sustains at scale.
    gemm_efficiency: float = 0.50
    #: Fraction of peak that vectorized SpMM arithmetic sustains.
    spmm_compute_efficiency: float = 0.25

    # Framework glue (kernel dispatch, tensor bookkeeping) per layer.
    glue_overhead_ns: float = 5.0e4
    #: Cost of one atomic read-modify-write cache line (edge-parallel).
    atomic_ns: float = 20.0

    def __post_init__(self):
        if self.cores_per_socket < 1 or self.n_sockets < 1:
            raise ValueError("core/socket counts must be positive")
        if not 0 <= self.ht_contention < 1:
            raise ValueError("ht_contention must be in [0, 1)")

    @property
    def physical_cores(self):
        return self.cores_per_socket * self.n_sockets

    @property
    def max_threads(self):
        return self.physical_cores * self.smt_per_core

    def peak_gflops(self, n_cores=None):
        """AVX-512 fp32 peak: 2 FMA x 16 lanes x 2 flops per cycle."""
        cores = min(
            self.physical_cores, n_cores if n_cores else self.physical_cores
        )
        per_core = self.clock_ghz * self.fma_units * self.simd_lanes * 2
        return cores * per_core

    def cache_bytes(self):
        """Effective on-chip capacity for feature-vector reuse."""
        l2 = self.physical_cores * self.l2_kb_per_core * 1024
        l3 = self.n_sockets * self.l3_mb_per_socket * (1024**2)
        return l2 + l3

    def with_(self, **changes):
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
