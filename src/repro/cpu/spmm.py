"""SpMM timing on the Xeon model.

The production strategy is vertex-parallel with dynamic OpenMP load
balancing (Section V-A); the edge-parallel variant is provided as the
baseline the paper rejects on CPU because of atomic-operation overhead.
Time is the maximum of a memory term (DRAM misses at SpMM-effective
STREAM bandwidth, cache hits at on-chip bandwidth) and a compute term
(vectorized MACs at a fraction of AVX-512 peak).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cpu.cache import DEFAULT_SKEW, feature_hit_rate
from repro.cpu.stream import stream_bandwidth
from repro.sparse.spmm import spmm_traffic

#: Element sizes of the fp32 CPU kernels.
CPU_ELEMENT_BYTES = {"row": 4, "col": 4, "nnz": 4, "feature": 4}


@dataclass(frozen=True)
class CPUSpMMEstimate:
    """Prediction for one SpMM on the Xeon model."""

    time_ns: float
    gflops: float
    hit_rate: float
    dram_bytes: float
    cache_bytes: float
    bound: str  # "memory" or "compute"


def spmm_time(n_vertices, n_edges, embedding_dim, config, n_cores=None,
              skew=DEFAULT_SKEW):
    """Vertex-parallel SpMM estimate.

    Parameters
    ----------
    n_vertices, n_edges, embedding_dim:
        Kernel size (|V|, |E|, K) of the normalized adjacency.
    config:
        :class:`XeonConfig`.
    n_cores:
        Thread count (defaults to all physical cores).
    skew:
        Degree-skew parameter of the cache model.
    """
    n_cores = n_cores or config.physical_cores
    traffic = spmm_traffic(
        n_vertices, n_edges, embedding_dim, CPU_ELEMENT_BYTES
    )
    hit = feature_hit_rate(n_vertices, embedding_dim, config, skew)
    dram_bytes = (
        traffic.csr_bytes
        + (1.0 - hit) * traffic.feature_bytes
        + traffic.write_bytes
    )
    cache_bytes = hit * traffic.feature_bytes
    dram_bw = stream_bandwidth(n_cores, config) * config.spmm_stream_efficiency
    cache_bw = config.cache_bandwidth_gbps_per_core * min(
        n_cores, config.physical_cores
    )
    memory_ns = dram_bytes / dram_bw + cache_bytes / cache_bw
    compute_ns = traffic.flops / (
        config.peak_gflops(n_cores) * config.spmm_compute_efficiency
    )
    time_ns = max(memory_ns, compute_ns)
    return CPUSpMMEstimate(
        time_ns=time_ns,
        gflops=traffic.flops / time_ns,
        hit_rate=hit,
        dram_bytes=dram_bytes,
        cache_bytes=cache_bytes,
        bound="memory" if memory_ns >= compute_ns else "compute",
    )


def spmm_time_edge_parallel(n_vertices, n_edges, embedding_dim, config,
                            n_cores=None, skew=DEFAULT_SKEW):
    """Edge-parallel SpMM on CPU: the atomics-burdened baseline.

    Every output-row write-back must be atomic; each K-element row costs
    one atomic RMW per cache line.  The paper found this strictly slower
    than vertex-parallel on Xeon — the opposite of PIUMA, whose remote
    atomics make edge-parallel the kernel of choice.
    """
    n_cores = n_cores or config.physical_cores
    base = spmm_time(
        n_vertices, n_edges, embedding_dim, config, n_cores, skew
    )
    lines_per_row = max(1, math.ceil(embedding_dim * 4 / 64))
    atomic_ns = n_vertices * lines_per_row * config.atomic_ns / n_cores
    time_ns = base.time_ns + atomic_ns
    return CPUSpMMEstimate(
        time_ns=time_ns,
        gflops=base.gflops * base.time_ns / time_ns,
        hit_rate=base.hit_rate,
        dram_bytes=base.dram_bytes,
        cache_bytes=base.cache_bytes,
        bound=base.bound,
    )
