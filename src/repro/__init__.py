"""repro — reproduction of "Characterizing the Scalability of Graph
Convolutional Networks on Intel PIUMA" (ISPASS 2023).

Top-level convenience imports; see the subpackages for the full API:

* :mod:`repro.sparse`, :mod:`repro.graphs` — functional substrates.
* :mod:`repro.core` — GCN models, training, characterization.
* :mod:`repro.piuma`, :mod:`repro.cpu`, :mod:`repro.gpu` — platforms.
* :mod:`repro.validation`, :mod:`repro.experiments` — self-tests and
  the table/figure registry.
* :mod:`repro.ext` — the paper's Section VI extensions.
"""

__version__ = "1.0.0"

from repro.core.gcn import GCNConfig, GCNModel
from repro.cpu.config import XeonConfig
from repro.gpu.config import A100Config
from repro.piuma.config import PIUMAConfig
from repro.workloads.gcn_workload import workload_for

__all__ = [
    "A100Config",
    "GCNConfig",
    "GCNModel",
    "PIUMAConfig",
    "XeonConfig",
    "__version__",
    "workload_for",
]
