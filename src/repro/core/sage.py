"""GraphSAGE (mean aggregator) — the sampling-friendly GNN of Section VI.

The paper's Section VI points at graphSAGE/pinSAGE as the
neighbor-sampling family PIUMA could serve well.  This module provides
the functional mean-aggregator SAGE layer and model: unlike GCN, the
aggregation is row-stochastic (``D^-1 A``) over *neighbors only*, and
the update concatenates the vertex's own features with the aggregate
before the dense transform.  The memory-system shape is the same —
an SpMM followed by a (wider) dense multiply — so every timing insight
of the paper carries over with ``in_dim`` doubled on the dense side.
"""

from __future__ import annotations

import numpy as np

from repro.core.layers import ACTIVATIONS, glorot_uniform
from repro.sparse.normalize import row_normalize
from repro.sparse.spmm import spmm


class SAGELayer:
    """One GraphSAGE-mean layer: ``h' = act([h || mean_agg(h)] @ W + b)``."""

    def __init__(self, weight, bias=None, activation="relu"):
        self.weight = np.asarray(weight, dtype=np.float64)
        if self.weight.ndim != 2 or self.weight.shape[0] % 2 != 0:
            raise ValueError("weight must be (2 * in_dim, out_dim)")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.weight.shape[1],):
                raise ValueError("bias must match the output dimension")
        self.bias = bias
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    @classmethod
    def initialize(cls, in_dim, out_dim, activation="relu", seed=0):
        rng = np.random.default_rng(seed)
        weight = glorot_uniform(rng, 2 * in_dim, out_dim)
        return cls(weight, np.zeros(out_dim), activation)

    @property
    def in_dim(self):
        return self.weight.shape[0] // 2

    @property
    def out_dim(self):
        return self.weight.shape[1]

    def forward(self, mean_adj, h):
        """Apply the layer given the row-normalized adjacency."""
        aggregated = spmm(mean_adj, h)
        combined = np.concatenate([h, aggregated], axis=1)
        out = combined @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return ACTIVATIONS[self.activation](out)


class SAGEModel:
    """A stack of SAGE layers over a graph.

    Parameters mirror :class:`repro.core.GCNModel`; aggregation uses the
    row-stochastic neighbor mean (no self loops — the self contribution
    arrives through the concatenation).
    """

    def __init__(self, adj, config, seed=0):
        self.mean_adj = row_normalize(adj)
        self.config = config
        pairs = config.layer_dims()
        self.layers = []
        for i, (d_in, d_out) in enumerate(pairs):
            activation = "relu" if i < len(pairs) - 1 else "identity"
            self.layers.append(
                SAGELayer.initialize(d_in, d_out, activation, seed=seed + i)
            )

    @property
    def n_layers(self):
        return len(self.layers)

    def forward(self, features):
        h = np.asarray(features, dtype=np.float64)
        if h.shape != (self.mean_adj.n_rows, self.config.in_dim):
            raise ValueError(
                f"features must be ({self.mean_adj.n_rows}, "
                f"{self.config.in_dim})"
            )
        for layer in self.layers:
            h = layer.forward(self.mean_adj, h)
        return h

    def random_features(self, seed=0):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(self.mean_adj.n_rows, self.config.in_dim))

    def dense_flops(self):
        """Update-phase FLOPs per inference — 2x a GCN's for the same
        dims (the concatenated input), which would *worsen* the Fig 10
        dense bottleneck on PIUMA."""
        n = self.mean_adj.n_rows
        return sum(
            2 * n * 2 * layer.in_dim * layer.out_dim for layer in self.layers
        )
