"""Fig 2 methodology: predicting the SpMM fraction from scale and density.

The paper's Fig 2 draws contour lines of equal SpMM-time fraction for a
GCN layer (K=256 in/out) over the (number of vertices, adjacency
density) plane, discovered "through extensive experiments using RMAT
graphs of uniform degree distributions".  Here the same map is computed
from the CPU timing model: for a given (|V|, density) the layer's
|E| = density * |V|^2 follows, and the SpMM share of the layer time is
evaluated directly.  Graphs with a high SpMM fraction are the ones a
graph accelerator like PIUMA helps most — the annotated OGB points give
the per-dataset prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gcn import LayerShape
from repro.graphs.datasets import OGB_TABLE_I

#: Uniform-degree RMAT sweeps have no hub-driven cache reuse.
UNIFORM_SKEW = 0.0


def spmm_fraction(n_vertices, density, config, embedding_dim=256,
                  skew=UNIFORM_SKEW, n_cores=None):
    """SpMM share of one GCN layer's CPU time at a (scale, density) point.

    Parameters
    ----------
    n_vertices:
        Graph scale |V|.
    density:
        |E| / |V|^2 of the adjacency (the paper's y-axis).
    config:
        :class:`XeonConfig`.
    embedding_dim:
        Input and output embedding dimension of the layer (paper: 256).
    """
    # Imported here: repro.cpu.gcn consumes repro.core.breakdown, so a
    # module-level import would be circular through the package inits.
    from repro.cpu.gcn import layer_breakdown

    if n_vertices < 1:
        raise ValueError("n_vertices must be positive")
    if not 0 < density <= 1:
        raise ValueError("density must be in (0, 1]")
    n_edges = max(1, int(round(density * n_vertices**2)))
    shape = LayerShape(
        n_vertices=n_vertices,
        n_edges=n_edges,
        in_dim=embedding_dim,
        out_dim=embedding_dim,
        has_activation=True,
    )
    breakdown = layer_breakdown(shape, config, n_cores=n_cores, skew=skew)
    return breakdown.fraction("spmm")


def contour_grid(vertex_counts, densities, config, embedding_dim=256,
                 skew=UNIFORM_SKEW):
    """SpMM-fraction matrix over a (vertices x densities) grid.

    Returns an array of shape ``(len(densities), len(vertex_counts))``
    — rows are densities, columns are scales, values in [0, 1].
    """
    grid = np.zeros((len(densities), len(vertex_counts)))
    for i, density in enumerate(densities):
        for j, n_vertices in enumerate(vertex_counts):
            grid[i, j] = spmm_fraction(
                n_vertices, density, config, embedding_dim, skew
            )
    return grid


def find_contour_density(n_vertices, level, config, embedding_dim=256,
                         skew=UNIFORM_SKEW, lo=1e-9, hi=1.0, iterations=60):
    """Density at which the SpMM fraction crosses ``level`` for a scale.

    Bisection over density; returns None when the level is never
    reached inside (lo, hi].  Stringing these points across scales
    draws one of Fig 2's dotted contour lines.
    """
    if not 0 < level < 1:
        raise ValueError("level must be in (0, 1)")
    f_lo = spmm_fraction(n_vertices, lo, config, embedding_dim, skew)
    f_hi = spmm_fraction(n_vertices, hi, config, embedding_dim, skew)
    if (f_lo - level) * (f_hi - level) > 0:
        return None
    for _ in range(iterations):
        mid = (lo * hi) ** 0.5  # geometric: densities span decades
        if (spmm_fraction(n_vertices, mid, config, embedding_dim, skew)
                - level) * (f_lo - level) > 0:
            lo = mid
        else:
            hi = mid
    return (lo * hi) ** 0.5


@dataclass(frozen=True)
class DatasetPoint:
    """One OGB dataset placed on the Fig 2 plane."""

    name: str
    n_vertices: int
    density: float
    spmm_fraction: float


def annotate_datasets(config, embedding_dim=256):
    """Place every Table I dataset on the contour map.

    The fraction uses each dataset's own locality (unlike the uniform
    RMAT contours), matching how the paper overlays real graphs on the
    RMAT-derived map.
    """
    points = []
    for spec in OGB_TABLE_I:
        fraction = spmm_fraction(
            spec.n_vertices,
            spec.density,
            config,
            embedding_dim,
            skew=spec.locality,
        )
        points.append(
            DatasetPoint(
                name=spec.name,
                n_vertices=spec.n_vertices,
                density=spec.density,
                spmm_fraction=fraction,
            )
        )
    return points
