"""Execution-time breakdown records.

The paper reports GCN time in the categories SpMM / Dense MM / Glue Code
(CPU and PIUMA, Figs 3 and 10) plus Offload and Sampling (GPU, Fig 4).
:class:`ExecutionBreakdown` is the single record type every platform
model produces, so the cross-platform comparison (Fig 9) and the figure
renderers operate on one shape of data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Category names in presentation order.
CATEGORIES = ("spmm", "dense", "glue", "offload", "sampling")


@dataclass(frozen=True)
class ExecutionBreakdown:
    """Seconds spent per category during one GCN inference.

    Categories absent on a platform stay 0.0 (e.g. ``offload`` on CPU).
    """

    spmm: float = 0.0
    dense: float = 0.0
    glue: float = 0.0
    offload: float = 0.0
    sampling: float = 0.0

    @property
    def total(self):
        return self.spmm + self.dense + self.glue + self.offload + self.sampling

    def fraction(self, category):
        """Fraction of total time in ``category`` (0.0 if total is 0)."""
        if category not in CATEGORIES:
            raise KeyError(f"unknown category {category!r}")
        total = self.total
        return getattr(self, category) / total if total > 0 else 0.0

    def percentages(self):
        """Mapping category -> percent of total, the bar-chart view."""
        return {c: 100.0 * self.fraction(c) for c in CATEGORIES}

    def __add__(self, other):
        if not isinstance(other, ExecutionBreakdown):
            return NotImplemented
        return ExecutionBreakdown(
            spmm=self.spmm + other.spmm,
            dense=self.dense + other.dense,
            glue=self.glue + other.glue,
            offload=self.offload + other.offload,
            sampling=self.sampling + other.sampling,
        )

    def scaled(self, factor):
        """Uniformly scale every category (used by projection)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return ExecutionBreakdown(
            spmm=self.spmm * factor,
            dense=self.dense * factor,
            glue=self.glue * factor,
            offload=self.offload * factor,
            sampling=self.sampling * factor,
        )


def combine(breakdowns):
    """Sum an iterable of breakdowns (e.g. per-layer records)."""
    total = ExecutionBreakdown()
    for b in breakdowns:
        total = total + b
    return total
