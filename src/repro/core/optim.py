"""Optimizers for GCN training, from scratch.

Plain SGD (with optional momentum) and Adam, operating on flat lists of
parameter arrays updated in place.
"""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate=0.1, momentum=0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity = None

    def step(self, params, grads):
        """Update ``params`` in place from matching ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam:
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, learning_rate=0.01, beta1=0.9, beta2=0.999,
                 epsilon=1e-8):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params, grads):
        """Update ``params`` in place from matching ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        correction1 = 1.0 - self.beta1**self._t
        correction2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            m_hat = m / correction1
            v_hat = v / correction2
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
