"""GCN core: model, instrumented inference, breakdowns, characterization.

This package holds the paper's primary contribution surface: the GCN
model whose phases are characterized, the execution-breakdown records
shared by every platform model, the Fig 2 contour methodology and the
Fig 9 cross-platform speedup computation.
"""

from repro.core.breakdown import CATEGORIES, ExecutionBreakdown, combine
from repro.core.contour import (
    DatasetPoint,
    annotate_datasets,
    contour_grid,
    find_contour_density,
    spmm_fraction,
)
from repro.core.gcn import GCNConfig, GCNModel, LayerShape
from repro.core.inference import InferenceProfile, LayerProfile, profile_inference
from repro.core.layers import ACTIVATIONS, GCNLayer, relu
from repro.core.loss import accuracy, cross_entropy, softmax
from repro.core.optim import SGD, Adam
from repro.core.speedup import PlatformComparison, compare_platforms
from repro.core.training import GCNTrainer, TrainResult

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "CATEGORIES",
    "DatasetPoint",
    "ExecutionBreakdown",
    "GCNConfig",
    "GCNLayer",
    "GCNModel",
    "GCNTrainer",
    "InferenceProfile",
    "LayerProfile",
    "LayerShape",
    "PlatformComparison",
    "SGD",
    "TrainResult",
    "accuracy",
    "annotate_datasets",
    "combine",
    "compare_platforms",
    "contour_grid",
    "cross_entropy",
    "find_contour_density",
    "profile_inference",
    "relu",
    "softmax",
    "spmm_fraction",
]
