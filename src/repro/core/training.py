"""Full-batch GCN training: forward, backward, fit loop.

The paper characterizes inference and flags training as future work
(Section VI); this module closes that gap functionally.  The backward
pass mirrors the forward phase structure — the gradient flows through a
*second* SpMM per layer (with ``A_tilde^T``, served by the CSC view),
which is exactly why the paper's SpMM findings matter doubly for
training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.loss import accuracy, cross_entropy
from repro.core.optim import Adam
from repro.sparse.csc import CSCMatrix
from repro.sparse.spmm import spmm


@dataclass
class LayerTape:
    """Forward activations one layer needs for its backward pass."""

    aggregated: np.ndarray    # M = A_tilde @ H_in
    pre_activation: np.ndarray  # Z = M @ W + b
    had_activation: bool


@dataclass
class TrainResult:
    """History of one :meth:`GCNTrainer.fit` run."""

    losses: list = field(default_factory=list)
    train_accuracies: list = field(default_factory=list)

    @property
    def final_loss(self):
        return self.losses[-1] if self.losses else None


class GCNTrainer:
    """Trains a :class:`repro.core.GCNModel` with full-batch gradients.

    Parameters
    ----------
    model:
        The model; its layers' ``weight``/``bias`` arrays are updated
        in place.
    optimizer:
        Object with ``step(params, grads)``; default Adam(0.01).
    """

    def __init__(self, model, optimizer=None):
        self.model = model
        self.optimizer = optimizer or Adam()
        # CSC view of the normalized adjacency serves A^T products in
        # the backward pass without materializing a transpose per step.
        self._csc = CSCMatrix.from_csr(model.adj)

    # -- forward/backward ---------------------------------------------------

    def forward_with_tape(self, features):
        """Forward pass retaining the per-layer activations."""
        h = np.asarray(features, dtype=np.float64)
        tapes = []
        for layer in self.model.layers:
            aggregated = spmm(self.model.adj, h)
            pre_activation = layer.update(aggregated)
            h = layer.activate(pre_activation)
            tapes.append(
                LayerTape(
                    aggregated=aggregated,
                    pre_activation=pre_activation,
                    had_activation=layer.activation != "identity",
                )
            )
        return h, tapes

    def backward(self, dlogits, tapes):
        """Backpropagate; returns per-layer (dW, db) gradient lists.

        ``dlogits`` is the loss gradient at the output (post final
        activation, which is identity for the classification head).
        """
        grads = [None] * len(self.model.layers)
        dz = np.asarray(dlogits, dtype=np.float64)
        for index in range(len(self.model.layers) - 1, -1, -1):
            layer = self.model.layers[index]
            tape = tapes[index]
            if tape.had_activation:
                dz = dz * (tape.pre_activation > 0)
            dw = tape.aggregated.T @ dz
            db = dz.sum(axis=0) if layer.bias is not None else None
            grads[index] = (dw, db)
            if index > 0:
                dh = self._csc.transpose_matmat(dz @ layer.weight.T)
                dz = dh
        return grads

    # -- optimization ---------------------------------------------------------

    def _flatten(self, grads):
        params, flat = [], []
        for layer, (dw, db) in zip(self.model.layers, grads):
            params.append(layer.weight)
            flat.append(dw)
            if layer.bias is not None:
                params.append(layer.bias)
                flat.append(db)
        return params, flat

    def train_step(self, features, labels, mask=None):
        """One full-batch step; returns (loss, train accuracy)."""
        logits, tapes = self.forward_with_tape(features)
        loss, dlogits = cross_entropy(logits, labels, mask)
        grads = self.backward(dlogits, tapes)
        params, flat = self._flatten(grads)
        self.optimizer.step(params, flat)
        return loss, accuracy(logits, labels, mask)

    def fit(self, features, labels, mask=None, epochs=50):
        """Train for ``epochs`` full-batch steps."""
        if epochs < 1:
            raise ValueError("epochs must be positive")
        result = TrainResult()
        for _ in range(epochs):
            loss, acc = self.train_step(features, labels, mask)
            result.losses.append(loss)
            result.train_accuracies.append(acc)
        return result

    # -- verification ---------------------------------------------------------

    def numerical_gradient(self, features, labels, mask, layer_index,
                           position, epsilon=1e-6):
        """Central-difference gradient of one weight entry (test oracle)."""
        layer = self.model.layers[layer_index]
        original = layer.weight[position]

        def loss_at(value):
            layer.weight[position] = value
            logits = self.model.forward(features)
            loss, _ = cross_entropy(logits, labels, mask)
            return loss

        plus = loss_at(original + epsilon)
        minus = loss_at(original - epsilon)
        layer.weight[position] = original
        return (plus - minus) / (2 * epsilon)
