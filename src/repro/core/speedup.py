"""Cross-platform comparison (Fig 9).

For one workload, evaluates the GCN execution-time breakdown on all
three platform models and derives the paper's two headline series: GCN
speedup versus the dual-socket Xeon baseline (the bars) and SpMM-kernel
speedup versus the Xeon SpMM (the diamonds).
"""

from __future__ import annotations

from dataclasses import dataclass

PLATFORMS = ("cpu", "gpu", "piuma")


@dataclass(frozen=True)
class PlatformComparison:
    """Breakdown and speedups of one workload across the platforms.

    Attributes
    ----------
    workload:
        The compared :class:`GCNWorkload`.
    breakdowns:
        ``{"cpu": ..., "gpu": ..., "piuma": ...}`` in nanoseconds.
    """

    workload: object
    breakdowns: dict

    def gcn_speedup(self, platform):
        """Whole-GCN speedup of ``platform`` over the CPU baseline."""
        self._check(platform)
        return self.breakdowns["cpu"].total / self.breakdowns[platform].total

    def spmm_speedup(self, platform):
        """SpMM-kernel speedup of ``platform`` over the CPU SpMM."""
        self._check(platform)
        return self.breakdowns["cpu"].spmm / self.breakdowns[platform].spmm

    def _check(self, platform):
        if platform not in self.breakdowns:
            raise KeyError(
                f"unknown platform {platform!r}; have {sorted(self.breakdowns)}"
            )


def compare_platforms(workload, cpu_config, gpu_config, piuma_config,
                      spmm_efficiency=None):
    """Evaluate one workload on all three platform models.

    Parameters
    ----------
    workload:
        :class:`GCNWorkload`.
    cpu_config, gpu_config, piuma_config:
        :class:`XeonConfig`, :class:`A100Config`, :class:`PIUMAConfig`
        (typically :meth:`PIUMAConfig.node` for Fig 9's single-node
        comparison).
    spmm_efficiency:
        Achieved fraction of the PIUMA analytical SpMM model; defaults
        to ``repro.piuma.gcn.DEFAULT_SPMM_EFFICIENCY``.
    """
    # Imported here: the platform gcn modules consume
    # repro.core.breakdown, so module-level imports would be circular
    # through the package inits.
    from repro.cpu.gcn import gcn_breakdown as cpu_gcn_breakdown
    from repro.gpu.gcn import gcn_breakdown as gpu_gcn_breakdown
    from repro.piuma.gcn import DEFAULT_SPMM_EFFICIENCY
    from repro.piuma.gcn import gcn_breakdown as piuma_gcn_breakdown

    if spmm_efficiency is None:
        spmm_efficiency = DEFAULT_SPMM_EFFICIENCY
    breakdowns = {
        "cpu": cpu_gcn_breakdown(workload, cpu_config),
        "gpu": gpu_gcn_breakdown(workload, gpu_config),
        "piuma": piuma_gcn_breakdown(
            workload, piuma_config, spmm_efficiency
        ),
    }
    return PlatformComparison(workload=workload, breakdowns=breakdowns)
