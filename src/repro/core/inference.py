"""Instrumented functional inference.

Runs the numpy GCN while recording, per layer, the operation counts of
each phase (SpMM traffic per Equations 1-4, Dense MM FLOPs, element-wise
glue operations) plus host wall-clock time per phase.  The counts let
unit tests verify that the analytical traffic models agree exactly with
what the functional kernels do; the wall-clock numbers power the
pytest-benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.breakdown import ExecutionBreakdown
from repro.sparse.spmm import SpMMTraffic, spmm_traffic


@dataclass(frozen=True)
class LayerProfile:
    """Counts and host timings of one executed layer.

    Attributes
    ----------
    spmm_traffic:
        Exact Equations 1-4 evaluation for this layer's aggregation.
    dense_flops:
        ``2 * |V| * in_dim * out_dim`` multiply-adds of the update.
    glue_ops:
        Element-wise operations (bias add + activation) executed.
    wall:
        Host wall-clock :class:`ExecutionBreakdown` for this layer.
    """

    spmm_traffic: SpMMTraffic
    dense_flops: int
    glue_ops: int
    wall: ExecutionBreakdown


@dataclass(frozen=True)
class InferenceProfile:
    """Full-model inference result plus per-layer profiles."""

    output: np.ndarray
    layers: tuple

    @property
    def wall(self):
        """Whole-model host wall-clock breakdown."""
        total = ExecutionBreakdown()
        for layer in self.layers:
            total = total + layer.wall
        return total

    @property
    def total_flops(self):
        return sum(
            p.spmm_traffic.flops + p.dense_flops for p in self.layers
        )


def profile_inference(model, features):
    """Run ``model.forward`` with per-phase instrumentation.

    Semantically identical to :meth:`GCNModel.forward` (asserted by the
    test suite); additionally returns counts and timings.
    """
    h = np.asarray(features, dtype=np.float64)
    profiles = []
    for layer in model.layers:
        t0 = time.perf_counter()
        aggregated = layer.aggregate(model.adj, h)
        t1 = time.perf_counter()
        updated = layer.update(aggregated)
        t2 = time.perf_counter()
        h = layer.activate(updated)
        t3 = time.perf_counter()

        traffic = spmm_traffic(
            model.adj.n_rows, model.adj.nnz, layer.in_dim
        )
        dense_flops = 2 * model.adj.n_rows * layer.in_dim * layer.out_dim
        glue_ops = model.adj.n_rows * layer.out_dim * (
            (1 if layer.bias is not None else 0)
            + (1 if layer.activation != "identity" else 0)
        )
        profiles.append(
            LayerProfile(
                spmm_traffic=traffic,
                dense_flops=dense_flops,
                glue_ops=glue_ops,
                wall=ExecutionBreakdown(
                    spmm=t1 - t0, dense=t2 - t1, glue=t3 - t2
                ),
            )
        )
    return InferenceProfile(output=h, layers=tuple(profiles))
