"""GCN layer primitives.

A GCN layer computes ``H' = sigma(A_tilde @ H @ W)`` — a sparse
aggregation (SpMM), a dense update (Dense MM) and an element-wise
activation.  The paper characterizes exactly these three phases, so the
functional layer exposes them as separately-invokable steps that the
instrumented inference driver (``repro.core.inference``) times and
counts independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.spmm import spmm


def relu(x):
    """Rectified linear activation, the paper's sigma."""
    return np.maximum(x, 0.0)


def identity(x):
    """No-op activation for the final layer (logits)."""
    return x


ACTIVATIONS = {"relu": relu, "identity": identity}


def glorot_uniform(rng, fan_in, fan_out):
    """Glorot/Xavier uniform initialization, as in Kipf & Welling."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


@dataclass
class GCNLayer:
    """One graph-convolution layer.

    Attributes
    ----------
    weight:
        Dense update matrix of shape ``(in_dim, out_dim)``.
    bias:
        Optional bias of shape ``(out_dim,)``.
    activation:
        Name of the activation applied after the update
        (key of :data:`ACTIVATIONS`).
    """

    weight: np.ndarray
    bias: np.ndarray | None = None
    activation: str = "relu"

    def __post_init__(self):
        self.weight = np.asarray(self.weight, dtype=np.float64)
        if self.weight.ndim != 2:
            raise ValueError("weight must be 2-D")
        if self.bias is not None:
            self.bias = np.asarray(self.bias, dtype=np.float64)
            if self.bias.shape != (self.weight.shape[1],):
                raise ValueError("bias must match the output dimension")
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; "
                f"choose from {sorted(ACTIVATIONS)}"
            )

    @classmethod
    def initialize(cls, in_dim, out_dim, activation="relu", bias=True, seed=0):
        """Glorot-initialized layer."""
        rng = np.random.default_rng(seed)
        weight = glorot_uniform(rng, in_dim, out_dim)
        b = np.zeros(out_dim) if bias else None
        return cls(weight=weight, bias=b, activation=activation)

    @property
    def in_dim(self):
        return self.weight.shape[0]

    @property
    def out_dim(self):
        return self.weight.shape[1]

    # -- the three phases, individually callable ---------------------------

    def aggregate(self, adj, features):
        """Sparse phase: ``A_tilde @ H`` (SpMM)."""
        return spmm(adj, features)

    def update(self, aggregated):
        """Dense phase: ``(.) @ W [+ b]`` (Dense MM)."""
        out = aggregated @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def activate(self, updated):
        """Element-wise phase (part of the paper's Glue Code category)."""
        return ACTIVATIONS[self.activation](updated)

    def forward(self, adj, features):
        """Full layer: activate(update(aggregate(features)))."""
        return self.activate(self.update(self.aggregate(adj, features)))
