"""Losses for GCN training (Section VI: training is the natural
extension of the paper's inference characterization).

Node classification uses masked softmax cross-entropy: only labeled
vertices (the train mask) contribute, matching the semi-supervised
setting of Kipf & Welling.
"""

from __future__ import annotations

import numpy as np


def softmax(logits):
    """Numerically stable row-wise softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(logits, labels, mask=None):
    """Masked mean cross-entropy and its gradient w.r.t. the logits.

    Parameters
    ----------
    logits:
        ``(n, classes)`` scores.
    labels:
        Integer class per vertex.
    mask:
        Boolean array selecting the supervised vertices (default: all).

    Returns
    -------
    (loss, dlogits):
        Scalar mean loss over the mask and the gradient array (zero on
        unmasked rows).
    """
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (logits.shape[0],):
        raise ValueError("labels must give one class per row")
    if labels.size and (
        labels.min() < 0 or labels.max() >= logits.shape[1]
    ):
        raise ValueError("label out of range")
    if mask is None:
        mask = np.ones(logits.shape[0], dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (logits.shape[0],):
            raise ValueError("mask must cover every row")
    count = int(mask.sum())
    if count == 0:
        raise ValueError("mask selects no vertices")
    probabilities = softmax(logits)
    picked = probabilities[np.arange(logits.shape[0]), labels]
    loss = float(-np.log(np.clip(picked[mask], 1e-300, None)).mean())
    dlogits = probabilities.copy()
    dlogits[np.arange(logits.shape[0]), labels] -= 1.0
    dlogits[~mask] = 0.0
    dlogits /= count
    return loss, dlogits


def accuracy(logits, labels, mask=None):
    """Fraction of (masked) vertices whose argmax matches the label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels, dtype=np.int64)
    predictions = logits.argmax(axis=1)
    correct = predictions == labels
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            raise ValueError("mask selects no vertices")
        correct = correct[mask]
    return float(correct.mean())
