"""GCN model: configuration and the functional forward pass.

The paper's characterization uses a three-layer GCN whose hidden
embedding dimension is the swept architectural parameter.
:class:`GCNConfig` captures that shape independent of any weights so the
platform timing models can consume it analytically, while
:class:`GCNModel` binds a config to a normalized adjacency and actual
weights for functional (numerical) execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.layers import GCNLayer
from repro.sparse.normalize import gcn_normalize


@dataclass(frozen=True)
class LayerShape:
    """The size parameters of one GCN layer on one graph.

    All platform timing models consume these numbers (plus whether an
    activation follows), which is exactly the information the paper's
    analytical reasoning uses.  ``dense_in_dim`` lets variants whose
    update input differs from the aggregation width (GraphSAGE's
    concatenation) charge the dense phase correctly; None means "same
    as ``in_dim``" (plain GCN).
    """

    n_vertices: int
    n_edges: int
    in_dim: int
    out_dim: int
    has_activation: bool = True
    dense_in_dim: int | None = None

    @property
    def update_in_dim(self):
        """Input width of the dense update phase."""
        return self.dense_in_dim if self.dense_in_dim else self.in_dim


@dataclass(frozen=True)
class GCNConfig:
    """Architecture of a GCN model.

    Attributes
    ----------
    in_dim:
        Input feature dimension (dataset specific).
    hidden_dim:
        Hidden embedding dimension — the paper's swept parameter.
    out_dim:
        Output dimension (dataset specific, e.g. number of classes).
    n_layers:
        Total layers; the paper uses 3 (one input, one hidden, one
        output transformation).
    """

    in_dim: int
    hidden_dim: int
    out_dim: int
    n_layers: int = 3

    def __post_init__(self):
        if self.n_layers < 1:
            raise ValueError("n_layers must be at least 1")
        for name in ("in_dim", "hidden_dim", "out_dim"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")

    def layer_dims(self):
        """Per-layer (in, out) dimension pairs.

        A 3-layer config (I, H, O) yields [(I, H), (H, H), (H, O)].
        """
        dims = [self.in_dim] + [self.hidden_dim] * (self.n_layers - 1) + [self.out_dim]
        return list(zip(dims[:-1], dims[1:]))

    def layer_shapes(self, n_vertices, n_edges):
        """Materialize :class:`LayerShape` records for a graph size.

        The final layer has no activation (logits), matching the model
        the paper profiles; everything upstream uses ReLU.
        """
        pairs = self.layer_dims()
        shapes = []
        for i, (d_in, d_out) in enumerate(pairs):
            shapes.append(
                LayerShape(
                    n_vertices=n_vertices,
                    n_edges=n_edges,
                    in_dim=d_in,
                    out_dim=d_out,
                    has_activation=i < len(pairs) - 1,
                )
            )
        return shapes


class GCNModel:
    """A functional GCN bound to a graph.

    Parameters
    ----------
    adj:
        Raw adjacency (CSR).  It is GCN-normalized on construction
        unless ``normalized`` is true.
    config:
        :class:`GCNConfig` architecture.
    seed:
        Weight initialization seed.
    normalized:
        Set when ``adj`` is already ``D^-1/2 (A+I) D^-1/2``.
    """

    def __init__(self, adj, config, seed=0, normalized=False):
        self.adj = adj if normalized else gcn_normalize(adj)
        self.config = config
        self.layers = []
        pairs = config.layer_dims()
        for i, (d_in, d_out) in enumerate(pairs):
            activation = "relu" if i < len(pairs) - 1 else "identity"
            self.layers.append(
                GCNLayer.initialize(
                    d_in, d_out, activation=activation, seed=seed + i
                )
            )

    @property
    def n_layers(self):
        return len(self.layers)

    def forward(self, features):
        """Run inference, returning the output logits."""
        h = np.asarray(features, dtype=np.float64)
        if h.shape != (self.adj.n_rows, self.config.in_dim):
            raise ValueError(
                f"features must be ({self.adj.n_rows}, {self.config.in_dim}),"
                f" got {h.shape}"
            )
        for layer in self.layers:
            h = layer.forward(self.adj, h)
        return h

    def random_features(self, seed=0):
        """Convenience: random input features of the right shape."""
        rng = np.random.default_rng(seed)
        return rng.normal(size=(self.adj.n_rows, self.config.in_dim))
