"""Degree-distribution utilities.

The paper's characterization hinges on graph *scale* (|V|) and
*sparsity* (|E|), but the CPU cache model and the load-balance analysis
additionally need degree skew: a skewed graph concentrates feature-vector
reuse on hub vertices (better cacheability per byte) and unbalances the
vertex-parallel partition.  These statistics quantify that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of a degree distribution.

    Attributes
    ----------
    n_vertices, n_edges:
        Graph size (edges = stored adjacency entries).
    mean, maximum:
        Average and maximum degree.
    gini:
        Gini coefficient of the degree distribution in [0, 1];
        0 is perfectly uniform, values near 1 are hub-dominated.
    top1pct_share:
        Fraction of all edges incident (out-bound) to the top 1% of
        vertices by degree — a direct measure of hub concentration.
    """

    n_vertices: int
    n_edges: int
    mean: float
    maximum: int
    gini: float
    top1pct_share: float


def gini_coefficient(values):
    """Gini coefficient of a non-negative sample, 0 for uniform."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    n = values.shape[0]
    if n == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    # Standard rank-weighted formula.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * (ranks * values).sum()) / (n * total) - (n + 1) / n)


def degree_stats(adj):
    """Compute :class:`DegreeStats` from a CSR adjacency matrix."""
    degrees = adj.row_degrees().astype(np.float64)
    n = adj.n_rows
    nnz = adj.nnz
    if n == 0:
        return DegreeStats(0, 0, 0.0, 0, 0.0, 0.0)
    top_k = max(1, n // 100)
    top_share = (
        float(np.sort(degrees)[-top_k:].sum() / nnz) if nnz else 0.0
    )
    return DegreeStats(
        n_vertices=n,
        n_edges=nnz,
        mean=float(degrees.mean()),
        maximum=int(degrees.max()) if n else 0,
        gini=gini_coefficient(degrees),
        top1pct_share=top_share,
    )


def window_span_fraction(adj, window=8192, samples=40, seed=0):
    """How much of the vertex range a temporal window of edges touches.

    For random windows of ``window`` consecutive edges, measures the
    5th-95th percentile span of referenced vertex ids as a fraction of
    |V| (median over samples).  This is the locality metric *vertex
    ordering* moves: RCM-ordered graphs confine each window to a narrow
    id band whose feature rows fit in cache, while a shuffled graph
    touches the whole feature matrix from every window.  (Exact-repeat
    reuse — :func:`reuse_distance_proxy` — is ordering-invariant.)
    """
    if adj.nnz == 0:
        return 0.0
    rng = np.random.default_rng(seed)
    cols = adj.indices
    take = min(window, cols.shape[0])
    spans = []
    for _ in range(max(1, samples)):
        start = rng.integers(0, max(1, cols.shape[0] - take + 1))
        chunk = cols[start:start + take]
        spans.append(
            np.percentile(chunk, 95) - np.percentile(chunk, 5)
        )
    return float(np.median(spans) / max(adj.n_cols, 1))


def reuse_distance_proxy(adj, window=4096):
    """Fraction of feature reads likely served by a recently-used window.

    A cheap locality proxy for the CPU cache model: for edges in CSR
    order, counts how often a destination vertex repeats within the last
    ``window`` distinct destinations.  Hub-heavy graphs score high; near
    1.0 means feature vectors are effectively cache-resident.
    """
    if adj.nnz == 0:
        return 0.0
    cols = adj.indices
    # Vectorized approximation: a feature read at edge position i hits if
    # the same column index appeared within the previous `window` edges.
    position = np.arange(cols.shape[0], dtype=np.int64)
    order = np.lexsort((position, cols))
    sorted_cols = cols[order]
    sorted_pos = position[order]
    same_col = sorted_cols[1:] == sorted_cols[:-1]
    gaps = sorted_pos[1:] - sorted_pos[:-1]
    hits = int(np.count_nonzero(same_col & (gaps <= window)))
    return hits / adj.nnz
