"""Graph substrate.

An RMAT generator (replacing the SNAP generator the paper uses), degree
utilities, a synthetic OGB catalog matched to Table I, and partitioning
utilities used by the distributed-baseline extension.
"""

from repro.graphs.datasets import (
    OGB_TABLE_I,
    DatasetSpec,
    get_dataset,
    list_datasets,
    power_graph_spec,
)
from repro.graphs.degree import (
    DegreeStats,
    degree_stats,
    reuse_distance_proxy,
    window_span_fraction,
)
from repro.graphs.generators import (
    barabasi_albert,
    community_features,
    erdos_renyi,
    stochastic_block_model,
)
from repro.graphs.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graphs.partition import (
    PARTITION_STRATEGIES,
    PartitionReport,
    block_vertex_partition,
    degree_aware_partition,
    degree_balance_bound,
    edge_cut_matrix,
    evaluate_partition,
    partition_bounds,
    partition_graph,
)
from repro.graphs.rmat import RMATParams, rmat_edges, rmat_graph
from repro.graphs.stats import (
    clustering_coefficient,
    connected_components,
    largest_component_fraction,
)

__all__ = [
    "OGB_TABLE_I",
    "PARTITION_STRATEGIES",
    "DatasetSpec",
    "DegreeStats",
    "PartitionReport",
    "RMATParams",
    "barabasi_albert",
    "block_vertex_partition",
    "clustering_coefficient",
    "community_features",
    "connected_components",
    "degree_aware_partition",
    "degree_balance_bound",
    "degree_stats",
    "edge_cut_matrix",
    "erdos_renyi",
    "evaluate_partition",
    "get_dataset",
    "largest_component_fraction",
    "list_datasets",
    "load_edge_list",
    "load_npz",
    "partition_bounds",
    "partition_graph",
    "power_graph_spec",
    "reuse_distance_proxy",
    "rmat_edges",
    "rmat_graph",
    "save_edge_list",
    "save_npz",
    "stochastic_block_model",
    "window_span_fraction",
]
