"""Structural graph statistics beyond degrees.

Connected components and local clustering complete the picture the
characterization models consume: components bound how far BFS orderings
can help, and clustering is the structural driver of the ``locality``
knob (triangle-rich neighborhoods mean repeated feature reuse).
"""

from __future__ import annotations

import collections

import numpy as np


def connected_components(adj):
    """Component label per vertex (treating edges as undirected).

    Returns ``(labels, n_components)``; labels are 0-based and
    contiguous in discovery order.
    """
    n = adj.n_rows
    # Build an undirected view once: out-neighbors plus in-neighbors.
    reverse = adj.transpose()
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for seed in range(n):
        if labels[seed] != -1:
            continue
        queue = collections.deque([seed])
        labels[seed] = current
        while queue:
            u = queue.popleft()
            for view in (adj, reverse):
                neighbors, _ = view.row(u)
                for v in neighbors:
                    if labels[v] == -1:
                        labels[v] = current
                        queue.append(int(v))
        current += 1
    return labels, current


def largest_component_fraction(adj):
    """|largest component| / |V|."""
    labels, n_components = connected_components(adj)
    if adj.n_rows == 0:
        return 0.0
    counts = np.bincount(labels, minlength=n_components)
    return float(counts.max() / adj.n_rows)


def clustering_coefficient(adj, sample=None, seed=0):
    """Mean local clustering coefficient (triangle density).

    ``sample`` limits the computation to a random vertex subset for
    large graphs.  Treats the adjacency as undirected and unweighted.
    """
    n = adj.n_rows
    if n == 0:
        return 0.0
    neighbor_sets = None
    if sample is not None and sample < n:
        rng = np.random.default_rng(seed)
        vertices = rng.choice(n, size=sample, replace=False)
    else:
        vertices = np.arange(n)
    # Undirected neighbor sets (excluding self loops).
    reverse = adj.transpose()

    def neighbors_of(u):
        out, _ = adj.row(u)
        inc, _ = reverse.row(u)
        merged = set(int(v) for v in out) | set(int(v) for v in inc)
        merged.discard(int(u))
        return merged

    total = 0.0
    for u in vertices:
        hood = neighbors_of(int(u))
        k = len(hood)
        if k < 2:
            continue
        links = 0
        for v in hood:
            links += len(neighbors_of(v) & hood)
        total += links / (k * (k - 1))
    return float(total / len(vertices))
