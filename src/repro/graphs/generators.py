"""Additional graph generators beyond RMAT.

RMAT covers the paper's sweeps; downstream users characterizing their
own workloads need the other standard families: Erdos-Renyi (the
uniform null model), Barabasi-Albert (preferential attachment,
power-law by construction) and the stochastic block model (communities
— the structure Cluster-GCN-style methods exploit and the locality knob
abstracts).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def erdos_renyi(n_vertices, avg_degree, seed=0, symmetric=True):
    """G(n, m)-style uniform random graph with ``avg_degree * n`` edges."""
    if n_vertices < 1 or avg_degree <= 0:
        raise ValueError("need positive size and degree")
    rng = np.random.default_rng(seed)
    n_edges = int(round(avg_degree * n_vertices))
    src = rng.integers(0, n_vertices, n_edges)
    dst = rng.integers(0, n_vertices, n_edges)
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return CSRMatrix.from_edges(src, dst, shape=(n_vertices, n_vertices))


def barabasi_albert(n_vertices, attach=4, seed=0):
    """Preferential attachment: each new vertex links to ``attach``
    existing vertices chosen proportionally to degree.

    Produces the heavy-tailed degree distribution analytically (gamma
    ~ 3); the generated graph is undirected (symmetric adjacency).
    """
    if n_vertices < 2 or attach < 1:
        raise ValueError("need at least 2 vertices and attach >= 1")
    rng = np.random.default_rng(seed)
    # Repeated-endpoint list trick: sampling uniformly from the list of
    # all edge endpoints is sampling proportionally to degree.
    endpoints = [0, 1, 1, 0]  # seed edge 0-1, both directions
    src, dst = [0], [1]
    for v in range(2, n_vertices):
        k = min(attach, v)
        picks = set()
        while len(picks) < k:
            picks.add(int(endpoints[rng.integers(len(endpoints))]))
        for u in picks:
            src.append(v)
            dst.append(u)
            endpoints.extend((v, u))
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    both = np.concatenate([src, dst]), np.concatenate([dst, src])
    return CSRMatrix.from_edges(*both, shape=(n_vertices, n_vertices))


def stochastic_block_model(n_vertices, n_blocks, avg_degree, p_in=0.9,
                           seed=0):
    """Community-structured random graph.

    Each vertex draws ``avg_degree`` edges; with probability ``p_in``
    the endpoint stays inside the vertex's block, otherwise it is
    uniform over the graph.  Returns ``(adjacency, block_labels)``.
    """
    if n_blocks < 1 or n_vertices < n_blocks:
        raise ValueError("need 1 <= n_blocks <= n_vertices")
    if not 0 <= p_in <= 1:
        raise ValueError("p_in must be a probability")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_blocks, n_vertices)
    members = [np.flatnonzero(labels == b) for b in range(n_blocks)]
    # Guarantee non-empty blocks by reassigning if needed.
    for b, m in enumerate(members):
        if m.size == 0:
            labels[rng.integers(n_vertices)] = b
    members = [np.flatnonzero(labels == b) for b in range(n_blocks)]
    src = np.repeat(np.arange(n_vertices), int(round(avg_degree)))
    stay = rng.random(src.shape[0]) < p_in
    uniform = rng.integers(0, n_vertices, src.shape[0])
    same_block = np.empty(src.shape[0], dtype=np.int64)
    for i, u in enumerate(src):
        block = members[labels[u]]
        same_block[i] = block[rng.integers(block.size)]
    dst = np.where(stay, same_block, uniform)
    both = np.concatenate([src, dst]), np.concatenate([dst, src])
    adj = CSRMatrix.from_edges(*both, shape=(n_vertices, n_vertices))
    return adj, labels


def community_features(labels, feature_dim, noise=1.0, seed=0):
    """Features correlated with community labels (training tasks).

    Each community gets a random center; vertices get the center plus
    Gaussian noise.  Returns a ``(n, feature_dim)`` float array.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if feature_dim < 1:
        raise ValueError("feature_dim must be positive")
    rng = np.random.default_rng(seed)
    n_blocks = int(labels.max()) + 1 if labels.size else 0
    centers = rng.normal(size=(n_blocks, feature_dim))
    return centers[labels] + noise * rng.normal(
        size=(labels.shape[0], feature_dim)
    )
