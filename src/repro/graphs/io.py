"""Graph persistence.

Two formats: a compact ``.npz`` (the CSR arrays, lossless and fast) and
a plain edge-list text format for interchange with SNAP-style tools.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.sparse.csr import CSRMatrix


def save_npz(adj, path):
    """Write a CSR matrix to ``path`` (.npz)."""
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        indptr=adj.indptr,
        indices=adj.indices,
        data=adj.data,
        shape=np.asarray(adj.shape, dtype=np.int64),
    )


def load_npz(path):
    """Read a CSR matrix written by :func:`save_npz`."""
    with np.load(pathlib.Path(path)) as archive:
        required = {"indptr", "indices", "data", "shape"}
        missing = required - set(archive.files)
        if missing:
            raise ValueError(f"not a graph archive; missing {sorted(missing)}")
        return CSRMatrix(
            archive["indptr"],
            archive["indices"],
            archive["data"],
            tuple(archive["shape"]),
        )


def save_edge_list(adj, path, weights=False):
    """Write ``src dst [weight]`` lines (SNAP interchange format)."""
    path = pathlib.Path(path)
    rows = np.repeat(
        np.arange(adj.n_rows, dtype=np.int64), adj.row_degrees()
    )
    with open(path, "w") as handle:
        handle.write(f"# {adj.n_rows} {adj.n_cols} {adj.nnz}\n")
        if weights:
            for u, v, w in zip(rows, adj.indices, adj.data):
                handle.write(f"{u} {v} {w:g}\n")
        else:
            for u, v in zip(rows, adj.indices):
                handle.write(f"{u} {v}\n")


def load_edge_list(path):
    """Read an edge list written by :func:`save_edge_list`.

    Also accepts headerless files (shape inferred, weights optional).
    """
    path = pathlib.Path(path)
    shape = None
    src, dst, vals = [], [], []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                fields = line[1:].split()
                if len(fields) >= 2:
                    shape = (int(fields[0]), int(fields[1]))
                continue
            fields = line.split()
            if len(fields) < 2:
                raise ValueError(f"bad edge line: {line!r}")
            src.append(int(fields[0]))
            dst.append(int(fields[1]))
            vals.append(float(fields[2]) if len(fields) > 2 else 1.0)
    return CSRMatrix.from_edges(src, dst, vals, shape=shape)
