"""Recursive-MATrix (RMAT) graph generator.

The paper uses the SNAP RMAT generator for its linear sweeps (Fig 2) and
for the ``power-16``/``power-22`` graphs in Fig 9.  This is a
from-scratch, vectorized implementation of the standard RMAT scheme: a
``2^scale x 2^scale`` adjacency matrix is subdivided recursively into
quadrants, and each edge independently descends ``scale`` levels choosing
a quadrant with probabilities ``(a, b, c, d)``.

``(0.25, 0.25, 0.25, 0.25)`` yields an Erdos-Renyi-like uniform degree
distribution (what Fig 2's "uniform degree" sweep needs);
``(0.57, 0.19, 0.19, 0.05)`` is the Graph500 power-law setting used for
the ``power-*`` graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

#: Graph500 quadrant probabilities (skewed, power-law-like degrees).
GRAPH500 = (0.57, 0.19, 0.19, 0.05)

#: Uniform quadrant probabilities (Erdos-Renyi-like degrees).
UNIFORM = (0.25, 0.25, 0.25, 0.25)


@dataclass(frozen=True)
class RMATParams:
    """Parameters of one RMAT generation run.

    Attributes
    ----------
    scale:
        ``log2`` of the number of vertices.
    edge_factor:
        Average edges per vertex; ``n_edges = edge_factor * 2**scale``.
    abcd:
        Quadrant probabilities; must sum to 1.
    """

    scale: int
    edge_factor: float
    abcd: tuple = GRAPH500

    def __post_init__(self):
        if self.scale < 0:
            raise ValueError("scale must be non-negative")
        if self.edge_factor <= 0:
            raise ValueError("edge_factor must be positive")
        if len(self.abcd) != 4 or abs(sum(self.abcd) - 1.0) > 1e-9:
            raise ValueError("abcd must be four probabilities summing to 1")

    @property
    def n_vertices(self):
        return 1 << self.scale

    @property
    def n_edges(self):
        return int(round(self.edge_factor * self.n_vertices))


def rmat_edges(params, seed=0):
    """Generate RMAT edge endpoints.

    Returns ``(src, dst)`` int64 arrays of length ``params.n_edges``.
    Duplicate edges and self loops are kept (coalescing, if wanted, is
    the caller's choice via CSR conversion), matching SNAP behaviour.
    """
    rng = np.random.default_rng(seed)
    n_edges = params.n_edges
    a, b, c, _ = params.abcd
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for _ in range(params.scale):
        draws = rng.random(n_edges)
        # Quadrants in row-major order: a=(0,0), b=(0,1), c=(1,0), d=(1,1).
        go_right = ((draws >= a) & (draws < a + b)) | (draws >= a + b + c)
        go_down = draws >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    return src, dst


def rmat_graph(params, seed=0, symmetric=False, coalesce=True):
    """Generate an RMAT graph as a CSR adjacency matrix.

    Parameters
    ----------
    params:
        :class:`RMATParams`.
    seed:
        Deterministic generator seed.
    symmetric:
        When true, every edge is mirrored so the adjacency is symmetric
        (undirected graph), as GCN normalization expects.
    coalesce:
        Duplicate edges are always summed by CSR conversion; this flag is
        kept for signature clarity and must be true.
    """
    if not coalesce:
        raise ValueError("CSR storage always coalesces duplicates")
    src, dst = rmat_edges(params, seed)
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    n = params.n_vertices
    return CSRMatrix.from_edges(src, dst, shape=(n, n))


def rmat_for_size(n_vertices, n_edges, abcd=GRAPH500, seed=0, symmetric=False):
    """Generate an RMAT-like graph matched to a vertex/edge budget.

    The smallest scale with ``2**scale >= n_vertices`` is generated and
    vertex ids are folded onto ``[0, n_vertices)`` so arbitrary (non
    power-of-two) sizes can be matched — this is how the synthetic OGB
    catalog materializes Table I shapes.
    """
    if n_vertices < 1:
        raise ValueError("n_vertices must be positive")
    scale = max(1, int(np.ceil(np.log2(n_vertices))))
    directed_edges = n_edges if symmetric is False else max(1, n_edges // 2)
    params = RMATParams(
        scale=scale,
        edge_factor=max(directed_edges / (1 << scale), 1e-9),
        abcd=abcd,
    )
    src, dst = rmat_edges(params, seed)
    src, dst = src % n_vertices, dst % n_vertices
    if symmetric:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
    return CSRMatrix.from_edges(src, dst, shape=(n_vertices, n_vertices))
