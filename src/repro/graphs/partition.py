"""Graph-partitioning utilities.

Section VI of the paper argues PIUMA's distributed global address space
avoids the vertex-cut / edge-cut partitioning that distributed GNN
systems need.  To make that argument quantitative, this module provides
block partitioners plus cut-cost metrics; the distributed-CPU
extension (``repro.ext.distributed``) charges MPI communication
proportional to these cut sizes, and the sharded multi-node simulation
(``repro.piuma.multinode``) derives per-link halo volumes from them.

Two strategies are offered, both producing *contiguous* vertex blocks
(what a range-partitioned DGAS and the CSR layouts imply):

* ``"block"`` — equal *vertex* counts per part (the historical
  baseline; load-imbalanced on skewed graphs, where a hub-heavy block
  owns far more edges than its siblings);
* ``"degree"`` — equal *edge* loads per part, in the block-level
  degree-aware lineage of Accel-GCN (arXiv:2308.11825): block
  boundaries are placed on the cumulative-degree curve, so every part
  owns ~|E|/P edges regardless of skew.  The edge-load balance is
  provably bounded (see :func:`degree_balance_bound`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PartitionReport:
    """Quality metrics of a partition into ``n_parts`` pieces.

    Attributes
    ----------
    n_parts:
        Number of partitions.
    edge_cut:
        Edges whose endpoints live in different partitions; each one
        costs a feature-vector transfer per GCN layer in a
        distributed-memory system.
    replication_factor:
        Average number of partitions in which a vertex appears (>= 1);
        relevant for vertex-cut schemes.
    balance:
        Max partition load divided by mean load (1.0 is perfect).
    """

    n_parts: int
    edge_cut: int
    replication_factor: float
    balance: float


def block_vertex_partition(n_vertices, n_parts):
    """Assign vertices to partitions in contiguous equal blocks.

    Returns an int array ``part[v]``.  Contiguous blocks are what a
    range-partitioned DGAS (and the paper's CSR layouts) imply.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    bounds = np.linspace(0, n_vertices, n_parts + 1).astype(np.int64)
    part = np.zeros(n_vertices, dtype=np.int64)
    for p in range(n_parts):
        part[bounds[p] : bounds[p + 1]] = p
    return part


def degree_aware_partition(adj, n_parts):
    """Assign vertices to contiguous blocks of near-equal *edge* load.

    Block-level degree-aware partitioning (Accel-GCN lineage): the
    boundary of part ``p`` is the first vertex whose cumulative degree
    reaches ``p * |E| / n_parts``, found by binary search over the CSR
    row offsets.  Parts stay contiguous (range-partitioned DGAS), but
    a hub-heavy prefix is given fewer vertices so its edge load matches
    the rest — the balance never exceeds
    :func:`degree_balance_bound`.

    Returns an int array ``part[v]``; empty parts are possible when a
    single hub row exceeds the ideal load.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    n_vertices = adj.n_rows
    if adj.nnz == 0:
        return block_vertex_partition(n_vertices, n_parts)
    targets = adj.nnz * np.arange(1, n_parts, dtype=np.float64) / n_parts
    # First vertex v with indptr[v] >= target: edges before the cut
    # fall short of the target by < degree of the boundary row.
    cuts = np.searchsorted(adj.indptr, targets, side="left")
    bounds = np.concatenate(
        ([0], np.minimum(cuts, n_vertices), [n_vertices])
    ).astype(np.int64)
    # Boundaries are non-decreasing by construction (indptr is sorted);
    # repeated boundaries yield empty middle parts, never lost vertices.
    return np.repeat(
        np.arange(n_parts, dtype=np.int64), np.diff(bounds)
    )


def degree_balance_bound(adj, n_parts):
    """Advertised edge-load balance bound of :func:`degree_aware_partition`.

    Each part's edge load is below ``|E|/P + d_max`` (the boundary
    search overshoots the ideal cut by less than one row's degree), so
    ``max_load / mean_load <= 1 + d_max * P / |E|``.  Exact equality is
    unreachable, but the bound is what the partitioner *guarantees* —
    the property suite holds it to this number.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    if adj.nnz == 0:
        return 1.0
    d_max = int(adj.row_degrees().max())
    return 1.0 + d_max * n_parts / adj.nnz


#: Named partitioning strategies understood by :func:`partition_graph`
#: (and everything layered on it: ``measure_cut_fraction``, the sharded
#: multi-node runner, ``repro multinode --strategy``).
PARTITION_STRATEGIES = ("block", "degree")


def partition_graph(adj, n_parts, strategy="block"):
    """Partition ``adj``'s vertices with a named strategy.

    ``"block"`` is equal-vertex contiguous blocks; ``"degree"`` the
    degree-aware equal-edge-load blocks.  Returns the ``part[v]`` label
    array.
    """
    if strategy == "block":
        return block_vertex_partition(adj.n_rows, n_parts)
    if strategy == "degree":
        return degree_aware_partition(adj, n_parts)
    raise ValueError(
        f"strategy must be one of {PARTITION_STRATEGIES}, got {strategy!r}"
    )


def partition_bounds(part, n_parts):
    """Row-range ``bounds`` of a contiguous partition label array.

    Returns an int64 array of length ``n_parts + 1``; part ``p`` owns
    rows ``[bounds[p], bounds[p+1])``.  Raises if the labels are not
    non-decreasing (both shipped strategies are contiguous by
    construction; anything else cannot be expressed as row ranges).
    """
    part = np.asarray(part, dtype=np.int64)
    if part.size and np.any(np.diff(part) < 0):
        raise ValueError("partition labels must be contiguous blocks")
    return np.searchsorted(part, np.arange(n_parts + 1), side="left").astype(
        np.int64
    )


def edge_cut_matrix(adj, part):
    """Per-pair cut volumes: ``M[p, q]`` = edges owned by ``p`` whose
    destination vertex lives in ``q``.

    The diagonal holds each part's local edges; off-diagonal entries
    are the per-link halo volumes the multi-node simulation charges to
    the inter-node network.  ``M.sum() == adj.nnz`` always (every edge
    lands in exactly one cell).
    """
    part = np.asarray(part, dtype=np.int64)
    if part.shape[0] != adj.n_rows:
        raise ValueError("partition must label every vertex")
    n_parts = int(part.max()) + 1 if part.size else 1
    src_part = np.repeat(part, adj.row_degrees())
    dst_part = part[adj.indices]
    pairs = src_part * n_parts + dst_part
    counts = np.bincount(pairs, minlength=n_parts * n_parts)
    return counts.reshape(n_parts, n_parts)


def evaluate_partition(adj, part):
    """Compute :class:`PartitionReport` for a vertex partition of ``adj``."""
    part = np.asarray(part, dtype=np.int64)
    if part.shape[0] != adj.n_rows:
        raise ValueError("partition must label every vertex")
    n_parts = int(part.max()) + 1 if part.size else 1
    src_part = np.repeat(part, adj.row_degrees())
    dst_part = part[adj.indices]
    edge_cut = int(np.count_nonzero(src_part != dst_part))
    # Replication: a vertex is replicated into every remote partition
    # that reads its features (one ghost copy per distinct reader).
    remote = src_part != dst_part
    if np.any(remote):
        pairs = adj.indices[remote] * n_parts + src_part[remote]
        ghost_copies = np.unique(pairs).shape[0]
    else:
        ghost_copies = 0
    replication = 1.0 + ghost_copies / adj.n_rows if adj.n_rows else 1.0
    loads = np.bincount(src_part, minlength=n_parts).astype(np.float64)
    balance = float(loads.max() / loads.mean()) if loads.mean() > 0 else 1.0
    return PartitionReport(
        n_parts=n_parts,
        edge_cut=edge_cut,
        replication_factor=replication,
        balance=balance,
    )
