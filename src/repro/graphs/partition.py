"""Graph-partitioning utilities.

Section VI of the paper argues PIUMA's distributed global address space
avoids the vertex-cut / edge-cut partitioning that distributed GNN
systems need.  To make that argument quantitative, this module provides
simple block partitioners plus cut-cost metrics; the distributed-CPU
extension (``repro.ext.distributed``) charges MPI communication
proportional to these cut sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PartitionReport:
    """Quality metrics of a partition into ``n_parts`` pieces.

    Attributes
    ----------
    n_parts:
        Number of partitions.
    edge_cut:
        Edges whose endpoints live in different partitions; each one
        costs a feature-vector transfer per GCN layer in a
        distributed-memory system.
    replication_factor:
        Average number of partitions in which a vertex appears (>= 1);
        relevant for vertex-cut schemes.
    balance:
        Max partition load divided by mean load (1.0 is perfect).
    """

    n_parts: int
    edge_cut: int
    replication_factor: float
    balance: float


def block_vertex_partition(n_vertices, n_parts):
    """Assign vertices to partitions in contiguous equal blocks.

    Returns an int array ``part[v]``.  Contiguous blocks are what a
    range-partitioned DGAS (and the paper's CSR layouts) imply.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be positive")
    bounds = np.linspace(0, n_vertices, n_parts + 1).astype(np.int64)
    part = np.zeros(n_vertices, dtype=np.int64)
    for p in range(n_parts):
        part[bounds[p] : bounds[p + 1]] = p
    return part


def evaluate_partition(adj, part):
    """Compute :class:`PartitionReport` for a vertex partition of ``adj``."""
    part = np.asarray(part, dtype=np.int64)
    if part.shape[0] != adj.n_rows:
        raise ValueError("partition must label every vertex")
    n_parts = int(part.max()) + 1 if part.size else 1
    src_part = np.repeat(part, adj.row_degrees())
    dst_part = part[adj.indices]
    edge_cut = int(np.count_nonzero(src_part != dst_part))
    # Replication: a vertex is replicated into every remote partition
    # that reads its features (one ghost copy per distinct reader).
    remote = src_part != dst_part
    if np.any(remote):
        pairs = adj.indices[remote] * n_parts + src_part[remote]
        ghost_copies = np.unique(pairs).shape[0]
    else:
        ghost_copies = 0
    replication = 1.0 + ghost_copies / adj.n_rows if adj.n_rows else 1.0
    loads = np.bincount(src_part, minlength=n_parts).astype(np.float64)
    balance = float(loads.max() / loads.mean()) if loads.mean() > 0 else 1.0
    return PartitionReport(
        n_parts=n_parts,
        edge_cut=edge_cut,
        replication_factor=replication,
        balance=balance,
    )
