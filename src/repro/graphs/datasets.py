"""Dataset catalog: synthetic stand-ins for the OGB graphs of Table I.

The paper evaluates on nine Open Graph Benchmark datasets.  OGB data is
not redistributable inside this offline environment, so each dataset is
represented by a :class:`DatasetSpec` carrying the *exact* |V| and |E|
from Table I (the only graph properties the paper's timing analysis
consumes) plus an input feature dimension.  For functional runs the spec
materializes an RMAT graph degree-matched to those counts, optionally
down-scaled: all timing models accept the full-size spec analytically,
while the discrete-event PIUMA simulator runs on a materialized
down-scaled instance and projects (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.rmat import GRAPH500, UNIFORM, rmat_for_size


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata of one benchmark graph.

    Attributes
    ----------
    name:
        Short OGB-style name (``products``, ``papers``, ...).
    n_vertices, n_edges:
        Exact counts from Table I of the paper.
    feature_dim:
        Input feature dimension used when materializing features.  OGB
        datasets without native node features (e.g. ``ddi``) use the
        learned-embedding width common in OGB baselines.
    task:
        ``"node"`` or ``"link"`` classification (Table I groups).
    skewed:
        Whether degrees are hub-dominated; selects the RMAT quadrant
        probabilities when materializing.
    locality:
        Cache-friendliness of the graph's access pattern in [0, 1):
        how strongly feature reuse concentrates (community structure,
        vertex ordering, hubs).  Fig 9's caption distinguishes graphs
        by exactly this: `products` "can make use of the CPU caches"
        while `power-16`/`power-22` are called out as low-locality.
    """

    name: str
    n_vertices: int
    n_edges: int
    feature_dim: int
    task: str
    skewed: bool = True
    locality: float = 0.5

    @property
    def density(self):
        """|E| / |V|^2, the x-axis of the paper's Fig 2."""
        return self.n_edges / (self.n_vertices**2)

    @property
    def avg_degree(self):
        return self.n_edges / self.n_vertices

    def materialize(self, max_vertices=None, seed=0):
        """Generate a CSR adjacency for this dataset.

        Parameters
        ----------
        max_vertices:
            When given and smaller than ``n_vertices``, the graph is
            down-scaled to this vertex count with the average degree
            preserved (the down-scaled-simulation strategy of the
            paper's ref [18]).
        seed:
            Deterministic generator seed.

        Returns
        -------
        CSRMatrix
            The (unnormalized) adjacency.
        """
        n_v = self.n_vertices
        n_e = self.n_edges
        if max_vertices is not None and max_vertices < n_v:
            ratio = max_vertices / n_v
            n_v = int(max_vertices)
            n_e = max(n_v, int(round(self.n_edges * ratio)))
        abcd = GRAPH500 if self.skewed else UNIFORM
        return rmat_for_size(n_v, n_e, abcd=abcd, seed=seed)


#: Table I of the paper, in presentation order.
OGB_TABLE_I = (
    DatasetSpec("ddi", 4_267, 1_334_889, 256, "link", skewed=False,
                locality=0.7),
    DatasetSpec("proteins", 132_534, 39_561_252, 8, "node", locality=0.6),
    DatasetSpec("arxiv", 169_343, 1_166_243, 128, "node", locality=0.5),
    DatasetSpec("collab", 235_868, 1_285_465, 128, "link", locality=0.5),
    DatasetSpec("ppa", 576_289, 30_326_273, 58, "link", locality=0.55),
    DatasetSpec("mag", 1_939_743, 21_111_007, 128, "node", locality=0.5),
    DatasetSpec("products", 2_449_029, 61_859_140, 100, "node",
                locality=0.55),
    DatasetSpec("citation2", 2_927_963, 30_561_187, 128, "link",
                locality=0.5),
    DatasetSpec("papers", 111_059_956, 1_615_685_872, 128, "node",
                locality=0.3),
)

_REGISTRY = {spec.name: spec for spec in OGB_TABLE_I}


def power_graph_spec(scale, edge_factor=16):
    """RMAT ``power-<scale>`` graph spec, as used in the paper's Fig 9.

    ``power-16`` and ``power-22`` are Graph500-style skewed RMAT graphs
    with ``2**scale`` vertices; the paper uses them as low-locality SpMM
    stress tests where PIUMA's advantage over the GPU is largest.
    """
    n_vertices = 1 << scale
    return DatasetSpec(
        name=f"power-{scale}",
        n_vertices=n_vertices,
        n_edges=edge_factor * n_vertices,
        feature_dim=128,
        task="node",
        skewed=True,
        locality=0.05,
    )


def list_datasets(include_power=False):
    """Names of all catalogued datasets, Table I order."""
    names = [spec.name for spec in OGB_TABLE_I]
    if include_power:
        names += ["power-16", "power-22"]
    return names


def get_dataset(name):
    """Look up a :class:`DatasetSpec` by name (OGB or ``power-<k>``)."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    if name.startswith("power-"):
        try:
            scale = int(name.split("-", 1)[1])
        except ValueError:
            raise KeyError(f"unknown dataset {name!r}") from None
        return power_graph_spec(scale)
    raise KeyError(
        f"unknown dataset {name!r}; available: {', '.join(list_datasets(True))}"
    )
