"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations


def format_table(headers, rows, title=None):
    """Render an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells are ``str()``-ed.
    title:
        Optional heading printed above the table.
    """
    rows = [[str(cell) for cell in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rows)) if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_number(value, digits=2):
    """Human-friendly numeric formatting with thousands separators."""
    if isinstance(value, int):
        return f"{value:,}"
    return f"{value:,.{digits}f}"


def format_time_ns(nanoseconds):
    """Scale a nanosecond quantity to a readable unit."""
    value = float(nanoseconds)
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}"
    return f"{value:.0f} ns"
