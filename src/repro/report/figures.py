"""ASCII renderers for the paper's figures.

The benchmark harness regenerates every figure as a *series* (the
numbers the paper plots); these helpers print them in a terminal —
stacked-percentage bars for the breakdown figures, aligned series for
the sweeps and a coarse character map for the Fig 2 contours.
"""

from __future__ import annotations

from repro.core.breakdown import CATEGORIES

#: Fill characters per breakdown category, presentation order.
CATEGORY_CHARS = {
    "spmm": "#",
    "dense": "=",
    "glue": ".",
    "offload": "o",
    "sampling": "s",
}


def stacked_bar(breakdown, width=50):
    """One stacked-percentage bar for an :class:`ExecutionBreakdown`."""
    if width < 10:
        raise ValueError("width must be at least 10")
    fractions = [(c, breakdown.fraction(c)) for c in CATEGORIES]
    spans = {c: int(round(f * width)) for c, f in fractions}
    if breakdown.total > 0:
        # Rounding drift goes to the largest category, never to an
        # empty one.
        largest = max(fractions, key=lambda cf: cf[1])[0]
        spans[largest] += width - sum(spans.values())
    cells = []
    used = 0
    for category, _fraction in fractions:
        span = max(0, min(spans[category], width - used))
        cells.append(CATEGORY_CHARS[category] * span)
        used += span
    return "|" + "".join(cells).ljust(width) + "|"


def breakdown_chart(labeled_breakdowns, width=50):
    """Render labeled stacked bars plus a legend (Figs 3, 4, 10)."""
    labels = [label for label, _ in labeled_breakdowns]
    pad = max((len(l) for l in labels), default=0)
    lines = [
        f"{label.ljust(pad)} {stacked_bar(b, width)} "
        f"spmm={100 * b.fraction('spmm'):5.1f}% "
        f"dense={100 * b.fraction('dense'):5.1f}%"
        for label, b in labeled_breakdowns
    ]
    legend = "  ".join(
        f"{char}={category}" for category, char in CATEGORY_CHARS.items()
    )
    return "\n".join(lines + [legend])


def series_chart(x_values, labeled_series, x_label="x", value_format="{:.2f}"):
    """Aligned multi-series table (the sweep figures 5-8)."""
    headers = [x_label] + [label for label, _ in labeled_series]
    lines = ["  ".join(f"{h:>12s}" for h in headers)]
    for i, x in enumerate(x_values):
        cells = [f"{x!s:>12s}"]
        for _label, values in labeled_series:
            cells.append(f"{value_format.format(values[i]):>12s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def contour_map(grid, vertex_counts, densities, levels=(0.4, 0.6, 0.8)):
    """Character map of the Fig 2 SpMM-fraction surface.

    Cells show the highest crossed level: ' ' below all levels, then
    '-', '+', '#' as the SpMM fraction rises.
    """
    symbols = [" ", "-", "+", "#"]
    if len(levels) + 1 > len(symbols):
        raise ValueError("at most three contour levels supported")
    lines = []
    for i in range(len(densities) - 1, -1, -1):  # high density on top
        row = []
        for j in range(len(vertex_counts)):
            value = grid[i, j]
            rank = sum(value >= level for level in levels)
            row.append(symbols[rank])
        lines.append(f"{densities[i]:9.2e} |" + "".join(row))
    footer = " " * 11 + "+" + "-" * len(vertex_counts)
    scale = (
        " " * 12
        + f"|V|: {vertex_counts[0]:.0e} .. {vertex_counts[-1]:.0e}"
    )
    legend = " " * 12 + "levels: " + ", ".join(
        f"{symbols[k + 1]}>={levels[k]:.0%}" for k in range(len(levels))
    )
    return "\n".join(lines + [footer, scale, legend])
