"""One-shot markdown report of every reproduced experiment.

``generate_report`` runs the whole experiment registry and assembles a
single markdown document (code-fenced figures, one section per
table/figure) — the artifact to attach to a reproduction writeup.
Available from the CLI as ``python -m repro report``.
"""

from __future__ import annotations

EXPERIMENT_TITLES = {
    "table1": "Table I — OGB dataset descriptions",
    "fig2": "Fig 2 — SpMM-share contours (CPU, K=256)",
    "fig3": "Fig 3 — CPU execution-time breakdown",
    "fig4": "Fig 4 — GPU execution-time breakdown",
    "fig5": "Fig 5 — PIUMA SpMM strong scaling (DES)",
    "fig6": "Fig 6 — bandwidth and latency sensitivity (DES)",
    "fig7": "Fig 7 — threads/MTP vs latency tolerance (DES)",
    "fig8": "Fig 8 — PIUMA vs Xeon bandwidth",
    "fig9": "Fig 9 — speedups over the Xeon baseline",
    "fig10": "Fig 10 — PIUMA execution-time breakdown",
}


def generate_report(context=None, experiments=None, heading=None):
    """Run experiments and return one markdown document.

    Parameters
    ----------
    context:
        :class:`repro.experiments.ExperimentContext` (default sizes).
    experiments:
        Iterable of experiment ids; default: all, in paper order.
    heading:
        Optional first line (default describes the run).
    """
    from repro.experiments import EXPERIMENTS, ExperimentContext, run_experiment

    context = context or ExperimentContext()
    names = list(experiments) if experiments else list(EXPERIMENT_TITLES)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    lines = [
        heading
        or "# Reproduction report — GCN scalability on Intel PIUMA "
           "(ISPASS 2023)",
        "",
        f"DES graphs down-scaled to <= {context.max_vertices:,} vertices; "
        "analytical results use full Table I sizes.",
        "",
    ]
    for name in names:
        lines.append(f"## {EXPERIMENT_TITLES.get(name, name)}")
        lines.append("")
        lines.append("```")
        lines.append(run_experiment(name, context))
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
