"""Roofline analysis and rendering.

The paper's platform arguments are roofline arguments: SpMM sits far
left (low arithmetic intensity, bandwidth-bound everywhere), Dense MM
far right (compute-bound on CPU/GPU, *pipeline*-bound on PIUMA).  This
module makes that quantitative per platform and renders a text roofline
so users can place their own kernels.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Roofline:
    """A machine roofline: compute peak and memory bandwidth."""

    name: str
    peak_gflops: float
    bandwidth_gbps: float

    def __post_init__(self):
        if self.peak_gflops <= 0 or self.bandwidth_gbps <= 0:
            raise ValueError("peaks must be positive")

    @property
    def ridge_intensity(self):
        """FLOP/byte where the machine turns compute-bound."""
        return self.peak_gflops / self.bandwidth_gbps

    def attainable(self, intensity):
        """Attainable GFLOP/s at a given arithmetic intensity."""
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        return min(self.peak_gflops, self.bandwidth_gbps * intensity)

    def bound(self, intensity):
        """``"memory"`` or ``"compute"`` at this intensity."""
        return "memory" if intensity < self.ridge_intensity else "compute"


@dataclass(frozen=True)
class KernelPoint:
    """A kernel placed on a roofline."""

    name: str
    intensity: float       # FLOP per byte
    achieved_gflops: float

    def efficiency_on(self, roofline):
        """Fraction of the attainable performance achieved."""
        return self.achieved_gflops / roofline.attainable(self.intensity)


def cpu_roofline(config, n_cores=None):
    """Xeon roofline from a :class:`XeonConfig`."""
    from repro.cpu.stream import stream_bandwidth

    cores = n_cores or config.physical_cores
    return Roofline(
        name=f"Xeon x{cores}",
        peak_gflops=config.peak_gflops(cores),
        bandwidth_gbps=stream_bandwidth(cores, config),
    )


def gpu_roofline(config):
    """A100 roofline from an :class:`A100Config`."""
    return Roofline(
        name="A100",
        peak_gflops=config.peak_fp32_gflops,
        bandwidth_gbps=config.hbm_gbps,
    )


def piuma_roofline(config):
    """PIUMA roofline from a :class:`PIUMAConfig` (scalar MAC peak)."""
    from repro.piuma.densemm import peak_mac_gflops

    return Roofline(
        name=f"PIUMA x{config.n_cores}",
        peak_gflops=peak_mac_gflops(config),
        bandwidth_gbps=config.total_bandwidth_gbps,
    )


def render_roofline(roofline, kernels, width=60):
    """Text roofline: a log-log sketch plus a kernel table."""
    lines = [
        f"{roofline.name}: peak {roofline.peak_gflops:.0f} GFLOP/s, "
        f"bandwidth {roofline.bandwidth_gbps:.0f} GB/s, "
        f"ridge at {roofline.ridge_intensity:.2f} FLOP/byte"
    ]
    header = (
        f"{'kernel':<16s}{'AI':>8s}{'attainable':>12s}"
        f"{'achieved':>10s}{'eff':>6s}  bound"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for kernel in kernels:
        attainable = roofline.attainable(kernel.intensity)
        lines.append(
            f"{kernel.name:<16s}{kernel.intensity:>8.2f}"
            f"{attainable:>12.1f}{kernel.achieved_gflops:>10.1f}"
            f"{kernel.efficiency_on(roofline):>6.0%}"
            f"  {roofline.bound(kernel.intensity)}"
        )
    return "\n".join(lines)


def spmm_kernel_point(n_vertices, n_edges, embedding_dim, achieved_gflops,
                      element_bytes=None):
    """Place an SpMM invocation on a roofline (Eq. 1-4 intensity)."""
    from repro.sparse.spmm import spmm_traffic

    traffic = spmm_traffic(
        n_vertices, n_edges, embedding_dim, element_bytes
    )
    return KernelPoint(
        name=f"spmm K={embedding_dim}",
        intensity=traffic.arithmetic_intensity,
        achieved_gflops=achieved_gflops,
    )
