"""Text rendering of tables and figures for the benchmark harness."""

from repro.report.figures import (
    breakdown_chart,
    contour_map,
    series_chart,
    stacked_bar,
)
from repro.report.markdown import generate_report
from repro.report.roofline import (
    KernelPoint,
    Roofline,
    cpu_roofline,
    gpu_roofline,
    piuma_roofline,
    render_roofline,
    spmm_kernel_point,
)
from repro.report.tables import format_number, format_table, format_time_ns

__all__ = [
    "KernelPoint",
    "Roofline",
    "breakdown_chart",
    "contour_map",
    "cpu_roofline",
    "format_number",
    "format_table",
    "format_time_ns",
    "generate_report",
    "gpu_roofline",
    "piuma_roofline",
    "render_roofline",
    "series_chart",
    "spmm_kernel_point",
    "stacked_bar",
]
