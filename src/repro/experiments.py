"""Experiment registry: every table and figure as a callable.

One place maps the paper's experiment ids to functions that compute and
render the corresponding data.  The benchmark harness asserts on the
same quantities; this registry is the user-facing path
(``python -m repro experiment fig5``) and keeps the per-experiment
index of DESIGN.md executable.

Every experiment function takes an :class:`ExperimentContext` and
returns the rendered text.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentContext:
    """Shared configuration for experiment runs.

    ``scale`` shrinks the DES graphs (vertex cap) so the registry works
    on laptops; the analytical experiments always use full Table I
    sizes.
    """

    max_vertices: int = 16384
    seed: int = 7
    _cache: dict = field(default_factory=dict)

    def graph(self, name="products"):
        from repro.graphs.datasets import get_dataset

        key = ("graph", name)
        if key not in self._cache:
            self._cache[key] = get_dataset(name).materialize(
                max_vertices=self.max_vertices, seed=self.seed
            )
        return self._cache[key]

    @property
    def xeon(self):
        from repro.cpu.config import XeonConfig

        return self._cache.setdefault("xeon", XeonConfig())

    @property
    def a100(self):
        from repro.gpu.config import A100Config

        return self._cache.setdefault("a100", A100Config())

    @property
    def piuma_node(self):
        from repro.piuma.config import PIUMAConfig

        return self._cache.setdefault("node", PIUMAConfig.node())


def table1(context):
    """Table I: dataset descriptions."""
    from repro.graphs.datasets import OGB_TABLE_I
    from repro.report.tables import format_number, format_table

    return format_table(
        ["Name", "|V|", "|E|", "avg deg", "density", "task"],
        [[s.name, format_number(s.n_vertices), format_number(s.n_edges),
          f"{s.avg_degree:.1f}", f"{s.density:.2e}", s.task]
         for s in OGB_TABLE_I],
        title="TABLE I — OGB dataset descriptions",
    )


def fig2(context):
    """Fig 2: SpMM-share contours plus dataset annotations."""
    import numpy as np

    from repro.core.contour import annotate_datasets, contour_grid
    from repro.report.figures import contour_map
    from repro.report.tables import format_table

    vertex_grid = [10**k for k in (4, 5, 6, 7, 8)]
    density_grid = [10.0**e for e in range(-8, -1)]
    grid = contour_grid(vertex_grid, density_grid, context.xeon, 256)
    chart = contour_map(np.asarray(grid), vertex_grid, density_grid)
    points = annotate_datasets(context.xeon)
    table = format_table(
        ["dataset", "SpMM share"],
        [[p.name, f"{p.spmm_fraction:.0%}"] for p in points],
        title="OGB datasets at K=256",
    )
    return chart + "\n\n" + table


def _breakdown_figure(context, platform):
    from repro.report.figures import breakdown_chart
    from repro.workloads.gcn_workload import workload_for

    if platform == "cpu":
        from repro.cpu.gcn import gcn_breakdown

        config = context.xeon
    elif platform == "gpu":
        from repro.gpu.gcn import gcn_breakdown

        config = context.a100
    else:
        from repro.piuma.gcn import gcn_breakdown

        config = context.piuma_node
    from repro.graphs.datasets import list_datasets

    return breakdown_chart(
        [
            (f"{name:10s} K={k:<3d}",
             gcn_breakdown(workload_for(name, k), config))
            for name in list_datasets()
            for k in (8, 64, 256)
        ]
    )


def fig3(context):
    """Fig 3: CPU execution-time breakdown."""
    return _breakdown_figure(context, "cpu")


def fig4(context):
    """Fig 4: GPU execution-time breakdown."""
    return _breakdown_figure(context, "gpu")


def fig5(context):
    """Fig 5: PIUMA SpMM strong scaling (DES)."""
    from repro.piuma import PIUMAConfig, simulate_spmm, spmm_model
    from repro.report.figures import series_chart

    adj = context.graph()
    cores = (1, 2, 4, 8, 16, 32)
    rows = {}
    for c in cores:
        cfg = PIUMAConfig(n_cores=c)
        rows[c] = (
            spmm_model(adj.n_rows, adj.nnz, 256, cfg).gflops,
            simulate_spmm(adj, 256, cfg, "dma").gflops,
            simulate_spmm(adj, 256, cfg, "loop").gflops,
        )
    base = rows[1][1]
    return series_chart(
        cores,
        [("model", [rows[c][0] / base for c in cores]),
         ("dma", [rows[c][1] / base for c in cores]),
         ("loop", [rows[c][2] / base for c in cores])],
        x_label="cores",
    )


def fig6(context):
    """Fig 6: bandwidth (top) and latency (bottom) sweeps (DES)."""
    from repro.piuma import PIUMAConfig, simulate_spmm
    from repro.report.figures import series_chart
    from repro.workloads.sweeps import BANDWIDTH_SWEEP, LATENCY_SWEEP_NS

    adj = context.graph()
    bw = [
        simulate_spmm(adj, 64, PIUMAConfig(dram_bandwidth_scale=s), "dma"
                      ).gflops
        for s in BANDWIDTH_SWEEP
    ]
    lat = [
        simulate_spmm(adj, 64, PIUMAConfig(dram_latency_ns=l), "dma").gflops
        for l in LATENCY_SWEEP_NS
    ]
    top = series_chart(BANDWIDTH_SWEEP, [("GF/s", bw)], x_label="bw scale")
    bottom = series_chart(LATENCY_SWEEP_NS, [("GF/s", lat)],
                          x_label="latency ns")
    return f"bandwidth sweep (8 cores, K=64)\n{top}\n\n" \
           f"latency sweep (8 cores, K=64)\n{bottom}"


def fig7(context):
    """Fig 7: threads/MTP vs latency tolerance (DES)."""
    from repro.piuma import PIUMAConfig, simulate_spmm
    from repro.report.figures import series_chart
    from repro.workloads.sweeps import LATENCY_SWEEP_NS

    adj = context.graph()
    series = []
    for tpm in (1, 4, 16):
        values = [
            simulate_spmm(
                adj, 8,
                PIUMAConfig(threads_per_mtp=tpm, dram_latency_ns=l), "dma",
            ).gflops
            for l in LATENCY_SWEEP_NS
        ]
        series.append((f"{tpm} thr", [v / values[0] for v in values]))
    return "K=8, 8 cores, normalized to 45 ns\n" + series_chart(
        LATENCY_SWEEP_NS, series, x_label="latency ns"
    )


def fig8(context):
    """Fig 8: bandwidth and SpMM scaling, PIUMA vs Xeon."""
    from repro.cpu.stream import stream_bandwidth
    from repro.piuma.config import PIUMAConfig
    from repro.report.figures import series_chart

    threads = (1, 8, 16, 40, 80, 120, 160)
    cpu = [stream_bandwidth(n, context.xeon) for n in threads]
    cores = (1, 2, 4, 8, 16, 32)
    piuma = [PIUMAConfig(n_cores=c).total_bandwidth_gbps for c in cores]
    return (
        "CPU STREAM curve\n"
        + series_chart(threads, [("GB/s", cpu)], x_label="threads")
        + "\n\nPIUMA slice scaling\n"
        + series_chart(cores, [("GB/s", piuma)], x_label="cores")
    )


def fig9(context):
    """Fig 9: speedups over the Xeon baseline."""
    from repro.core.speedup import compare_platforms
    from repro.graphs.datasets import list_datasets
    from repro.report.tables import format_table
    from repro.workloads.gcn_workload import workload_for

    rows = []
    for name in list_datasets(include_power=True):
        for k in (8, 64, 256):
            c = compare_platforms(
                workload_for(name, k), context.xeon, context.a100,
                context.piuma_node,
            )
            rows.append([name, k, f"{c.gcn_speedup('piuma'):.2f}x",
                         f"{c.gcn_speedup('gpu'):.2f}x"])
    return format_table(
        ["dataset", "K", "PIUMA", "GPU"], rows,
        title="GCN speedup vs dual-socket Xeon",
    )


def fig10(context):
    """Fig 10: PIUMA execution-time breakdown."""
    return _breakdown_figure(context, "piuma")


EXPERIMENTS = {
    "table1": table1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}


def run_experiment(name, context=None):
    """Run one experiment by id; returns the rendered text."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: "
            f"{', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[name](context or ExperimentContext())
