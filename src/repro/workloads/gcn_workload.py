"""GCN workload specification.

A workload binds a graph (by :class:`DatasetSpec`, so full-scale sizes
are available even when the graph is never materialized) to a GCN
architecture.  Platform timing models consume workloads; the functional
layer materializes them at a chosen scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gcn import GCNConfig
from repro.graphs.datasets import DatasetSpec, get_dataset


@dataclass(frozen=True)
class GCNWorkload:
    """A dataset plus a GCN architecture.

    Attributes
    ----------
    dataset:
        :class:`DatasetSpec` (synthetic OGB catalog or power graph).
    config:
        :class:`GCNConfig`.  Its ``in_dim`` need not match the dataset's
        native feature dimension — the paper sweeps hidden dims with the
        dataset dims fixed, which :func:`workload_for` arranges.
    """

    dataset: DatasetSpec
    config: GCNConfig

    @property
    def n_vertices(self):
        return self.dataset.n_vertices

    @property
    def n_edges_normalized(self):
        """Edge count of the normalized adjacency (self loops added)."""
        return self.dataset.n_edges + self.dataset.n_vertices

    def layer_shapes(self):
        """Per-layer :class:`LayerShape` records at full dataset scale."""
        return self.config.layer_shapes(
            self.n_vertices, self.n_edges_normalized
        )


#: Output dimension used for every dataset: OGB node tasks have tens of
#: classes; 48 approximates the catalogue average without per-dataset
#: bookkeeping the paper does not describe.
DEFAULT_OUT_DIM = 48


@dataclass(frozen=True)
class SAGEWorkload(GCNWorkload):
    """GraphSAGE-mean workload: same SpMM traffic, doubled dense input.

    The concatenation ``[h || mean_agg(h)]`` doubles every layer's dense
    input dimension while the aggregation traffic is unchanged — so on
    PIUMA the Fig 10 dense bottleneck is strictly worse for SAGE than
    for GCN at the same dims, which the platform models expose through
    ``LayerShape.dense_in_dim``.
    """

    def layer_shapes(self):
        from repro.core.gcn import LayerShape

        return [
            LayerShape(
                n_vertices=s.n_vertices,
                n_edges=s.n_edges,
                in_dim=s.in_dim,
                out_dim=s.out_dim,
                has_activation=s.has_activation,
                dense_in_dim=2 * s.in_dim,
            )
            for s in super().layer_shapes()
        ]


def sage_workload_for(dataset_name, hidden_dim, n_layers=3,
                      out_dim=DEFAULT_OUT_DIM):
    """Build the GraphSAGE counterpart of :func:`workload_for`."""
    spec = get_dataset(dataset_name)
    config = GCNConfig(
        in_dim=spec.feature_dim,
        hidden_dim=hidden_dim,
        out_dim=out_dim,
        n_layers=n_layers,
    )
    return SAGEWorkload(dataset=spec, config=config)


def workload_for(dataset_name, hidden_dim, n_layers=3, out_dim=DEFAULT_OUT_DIM):
    """Build the paper's standard workload for one dataset.

    The model is ``n_layers`` (default 3, as profiled in the paper) with
    the dataset's native input dimension, the given hidden embedding
    dimension and a classification output head.
    """
    spec = get_dataset(dataset_name)
    config = GCNConfig(
        in_dim=spec.feature_dim,
        hidden_dim=hidden_dim,
        out_dim=out_dim,
        n_layers=n_layers,
    )
    return GCNWorkload(dataset=spec, config=config)
