"""Workload specifications and parameter sweeps."""

from repro.workloads.gcn_workload import (
    GCNWorkload,
    SAGEWorkload,
    sage_workload_for,
    workload_for,
)
from repro.workloads.sweeps import EMBEDDING_SWEEP, geometric_sweep

__all__ = [
    "EMBEDDING_SWEEP",
    "GCNWorkload",
    "SAGEWorkload",
    "geometric_sweep",
    "sage_workload_for",
    "workload_for",
]
