"""Parameter-sweep helpers.

The paper's experiments sweep the hidden embedding dimension "from 8 to
256 on orders of 2" (Fig 3), PIUMA core counts in powers of two (Fig 5),
DRAM latency from 45 to 720 ns (Fig 7), and relative DRAM bandwidth
(Fig 6).  These helpers generate exactly those grids.
"""

from __future__ import annotations

import itertools

#: Hidden embedding dimensions of Figs 3, 4, 9, 10.
EMBEDDING_SWEEP = (8, 16, 32, 64, 128, 256)

#: Core counts of the PIUMA strong-scaling studies (Fig 5).
CORE_SWEEP = (1, 2, 4, 8, 16, 32)

#: DRAM latency grid of Figs 6 (bottom) and 7, in nanoseconds.
LATENCY_SWEEP_NS = (45, 90, 180, 360, 720)

#: Relative DRAM-slice bandwidth grid of Fig 6 (top); 1.0 is nominal.
BANDWIDTH_SWEEP = (0.25, 0.5, 1.0, 2.0, 4.0)

#: Threads-per-MTP grid of Fig 7.
THREADS_PER_MTP_SWEEP = (1, 2, 4, 8, 16)


def grid(**axes):
    """Cartesian product of named sweep axes, as a list of dicts.

    ``grid(n_cores=(2, 4), embedding_dim=(8, 256))`` yields the four
    points ``{"n_cores": 2, "embedding_dim": 8}`` ... in row-major
    (last-axis-fastest) order — the deterministic point ordering the
    sweep runner preserves end to end.
    """
    names = list(axes)
    values = [tuple(axes[name]) for name in names]
    return [
        dict(zip(names, combo)) for combo in itertools.product(*values)
    ]


def geometric_sweep(start, stop, factor=2):
    """Inclusive geometric progression ``start, start*factor, ... <= stop``.

    ``geometric_sweep(8, 256)`` is the embedding sweep;
    ``geometric_sweep(45, 720)`` the latency sweep.
    """
    if start <= 0 or stop < start:
        raise ValueError("need 0 < start <= stop")
    if factor <= 1:
        raise ValueError("factor must be > 1")
    values = []
    value = start
    while value <= stop:
        values.append(value)
        value *= factor
    return tuple(values)
