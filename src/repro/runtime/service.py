"""Tiered prediction service: simulate once, serve millions.

The paper's deliverable is a *model* of SpMM/GCN scaling on PIUMA; the
natural production shape of that model is a long-running service that
answers "predicted time for (graph, K, platform, degradation)" at
interactive latency.  Queries over the configuration space are hugely
redundant, which a tier ladder exploits:

* **tier 0 — analytical** (microseconds): the Equation 5 PIUMA model
  (bandwidth-derated under a degraded fabric), or the CPU / GPU
  analytical models for ``platform=cpu|gpu``.  Always available; never
  queued.  Records are flagged ``"source": "model"``.
* **tier 1 — shared cache** (sub-millisecond): the content-addressed
  :class:`~repro.runtime.cache.ResultCache` the batch sweeps already
  populate.  Keys are the same SHA-256 content hashes, so a figure
  sweep run yesterday serves an interactive query today.
* **tier 2 — simulation** (seconds): a DES run scheduled through the
  :class:`~repro.runtime.jobs.JobScheduler` worker pool; the result
  backfills the cache *before* waiters wake, so every later identical
  query is a tier-1 hit.

The robustness layer is the point — an always-on frontend only works
because every overload and failure mode has a structured, bounded
outcome:

* **admission control** — the scheduler's queue is bounded; beyond it
  :meth:`PredictionService.predict` raises
  :class:`~repro.runtime.errors.QueueSaturated` (HTTP 429 with
  ``Retry-After``).  Accepted work is never dropped.
* **coalescing** — identical configs in flight share one DES run; all
  waiters fan in on the same :class:`~repro.runtime.jobs.Job`.
* **deadlines with graceful degradation** — a tier-2 answer that
  misses its deadline degrades to the tier-0 answer flagged
  ``"source": "model_fallback"`` (``"degraded": "deadline"``,
  ``"pending": true``); the simulation keeps running and backfills.
* **circuit breaking** — consecutive worker crashes / timeouts trip a
  :class:`~repro.runtime.breaker.CircuitBreaker`; while open, tier 2
  is refused in O(1) and requests degrade to tier 0
  (``"degraded": "circuit_open"``).  Half-open probes recover it.
  Structured state lives in ``/healthz``.
* **crash-safe shared cache** — entries are atomic per-key files;
  corrupt/truncated entries quarantine to ``*.corrupt`` instead of
  poisoning readers, and a ``max_bytes`` LRU budget keeps the
  directory bounded (see :mod:`repro.runtime.cache`).

The HTTP frontend is a stdlib ``ThreadingHTTPServer`` speaking JSON —
``POST /predict`` (full query document), ``GET /predict?...`` (flat
parameters), ``GET /healthz`` — so ``repro serve`` needs no
dependencies the container lacks.
"""

from __future__ import annotations

import json
import math
import threading
import time
import warnings
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlsplit

from repro.runtime.breaker import CLOSED, CircuitBreaker
from repro.runtime.cache import ResultCache, cache_key
from repro.runtime.errors import CircuitOpen, QueueSaturated
from repro.runtime.faults import ServiceFaultInjector
from repro.runtime.jobs import JobScheduler
from repro.runtime.runner import SpMMTask, _materialized, spmm_task

#: Platforms a query may target; only PIUMA has a DES (tiers 1-2).
PLATFORMS = ("piuma", "cpu", "gpu")

#: Query tiers: ``auto`` climbs the ladder, ``model`` stops at tier 0.
TIER_MODES = ("auto", "model")


def resolve_degradation(value):
    """Query-document degradation -> :class:`DegradationSpec` or ``None``.

    Accepts a preset name (``"moderate"``), a ``{"severity": f,
    "seed": i}`` document, or a full spec field document.  Unlike the
    CLI's ``--degrade``, file paths are *not* accepted — a network
    query must not read the server's filesystem.
    """
    if value is None:
        return None
    from repro.piuma import DEGRADATION_PRESETS
    from repro.piuma.degradation import DegradationSpec

    if isinstance(value, DegradationSpec):
        return value
    if isinstance(value, str):
        preset = DEGRADATION_PRESETS.get(value)
        if preset is None:
            raise ValueError(
                f"unknown degradation preset {value!r}; expected one of "
                f"{', '.join(sorted(DEGRADATION_PRESETS))}"
            )
        return preset
    if isinstance(value, dict):
        if "severity" in value:
            return DegradationSpec.at_severity(
                float(value["severity"]), seed=int(value.get("seed", 0))
            )
        return DegradationSpec.from_json(value)
    raise ValueError(
        f"degradation must be a preset name or a spec document, "
        f"got {type(value).__name__}"
    )


def parse_query(data):
    """Validate a query document into canonical fields.

    Raises ``ValueError`` on anything malformed — the HTTP layer maps
    that to a structured 400, never a stack trace.
    """
    if not isinstance(data, dict):
        raise ValueError("query must be a JSON object")
    known = {
        "dataset", "embedding_dim", "k", "kernel", "platform",
        "max_vertices", "seed", "window_edges", "overrides",
        "degradation", "scheduler", "tier", "deadline_s",
    }
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown query field(s): {', '.join(sorted(unknown))}")
    dataset = data.get("dataset")
    if not dataset or not isinstance(dataset, str):
        raise ValueError("query needs a 'dataset' name")
    if "embedding_dim" in data and "k" in data:
        raise ValueError("give either 'embedding_dim' or 'k', not both")
    k = data.get("embedding_dim", data.get("k"))
    if k is None:
        raise ValueError("query needs an embedding dimension "
                         "('embedding_dim' or 'k')")
    platform = data.get("platform", "piuma")
    if platform not in PLATFORMS:
        raise ValueError(f"platform must be one of {PLATFORMS}, "
                         f"got {platform!r}")
    tier = data.get("tier", "auto")
    if tier not in TIER_MODES:
        raise ValueError(f"tier must be one of {TIER_MODES}, got {tier!r}")
    overrides = data.get("overrides") or {}
    if not isinstance(overrides, dict):
        raise ValueError("'overrides' must be an object of "
                         "PIUMAConfig fields")
    deadline_s = data.get("deadline_s")
    try:
        query = {
            "dataset": dataset,
            "embedding_dim": int(k),
            "kernel": data.get("kernel", "dma"),
            "platform": platform,
            "max_vertices": int(data.get("max_vertices", 16384)),
            "seed": int(data.get("seed", 0)),
            "window_edges": (None if data.get("window_edges") is None
                             else int(data["window_edges"])),
            "overrides": overrides,
            "degradation": resolve_degradation(data.get("degradation")),
            "scheduler": data.get("scheduler"),
            "tier": tier,
            "deadline_s": None if deadline_s is None else float(deadline_s),
        }
    except (TypeError, ValueError) as error:
        raise ValueError(f"malformed query field: {error}")
    if query["embedding_dim"] < 1:
        raise ValueError("embedding dimension must be >= 1")
    if query["max_vertices"] < 1:
        raise ValueError("max_vertices must be >= 1")
    if query["deadline_s"] is not None and query["deadline_s"] < 0:
        raise ValueError("deadline_s must be non-negative")
    return query


def task_from_query(query):
    """Build the canonical :class:`SpMMTask` for a PIUMA query."""
    task = spmm_task(
        query["dataset"], query["embedding_dim"], kernel=query["kernel"],
        max_vertices=query["max_vertices"], seed=query["seed"],
        window_edges=query["window_edges"], **query["overrides"],
    )
    if query["degradation"] is not None:
        task = task.with_degradation(query["degradation"])
    if query["scheduler"] is not None:
        task = task.with_scheduler(query["scheduler"])
    return task


class PredictionService:
    """In-process tier-ladder frontend over the job scheduler.

    Parameters
    ----------
    cache:
        Shared :class:`~repro.runtime.cache.ResultCache` (tier 1 and
        tier-2 backfill); ``None`` disables both, leaving tiers 0/2.
    workers / max_pending / retries / task_timeout_s:
        Tier-2 scheduler shape (see :class:`JobScheduler`): pool width,
        admission bound, per-attempt retry budget and wall-clock cap.
    default_deadline_s:
        How long :meth:`predict` waits for a tier-2 result before
        degrading to tier 0 (per-query ``deadline_s`` overrides; 0
        means "schedule and answer immediately from the model").
    breaker:
        :class:`CircuitBreaker` guarding the pool (default: trip after
        5 consecutive crash/timeout attempts, 30 s cooldown).
    faults:
        :class:`ServiceFaultInjector` consulted at the tier seams
        (tests); the default injector is permanently disarmed.
    """

    def __init__(self, cache=None, *, workers=2, max_pending=32,
                 retries=0, task_timeout_s=None, default_deadline_s=30.0,
                 breaker=None, faults=None):
        self.cache = cache
        self.faults = faults or ServiceFaultInjector()
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, reset_timeout_s=30.0
        )
        self.default_deadline_s = default_deadline_s
        self.scheduler = JobScheduler(
            workers=workers, timeout=task_timeout_s, retries=retries,
            max_pending=max_pending, breaker=self.breaker,
            on_result=self._backfill,
        )
        self.started_at = time.time()
        self._lock = threading.Lock()
        self.counters = {
            "requests": 0, "tier0": 0, "tier1": 0, "tier2": 0,
            "degraded": 0, "rejected": 0, "bad_requests": 0,
        }
        self._backfill_warned = False

    # ------------------------------------------------------------------
    # Tier plumbing

    def _count(self, name, n=1):
        with self._lock:
            self.counters[name] += n

    def _backfill(self, job, record):
        """Scheduler callback: completed DES records land in the cache.

        Runs before waiters wake, so a deadline-expired client that
        retries the same query gets a tier-1 hit.  Only genuine
        simulation records are cached (the same rule as the batch
        runner: degraded answers must be recomputed, not memoized).
        """
        if self.cache is None or job.key is None:
            return
        if record.get("source") != "simulation":
            return
        self.faults.cache_delay()
        try:
            self.cache.put(job.key, record,
                           payload=job.task.key_payload())
        except OSError as error:
            if not self._backfill_warned:
                self._backfill_warned = True
                warnings.warn(
                    f"service cache backfill failed ({error}); "
                    "continuing without persisting records",
                    RuntimeWarning,
                )

    def _tier0_record(self, task, error=None, source="model"):
        """Analytical answer for ``task`` (the tier-0 floor).

        Reuses the task's ``fallback_record`` schema; for a degraded
        PIUMA fabric the Equation 5 numbers are re-evaluated at the
        derated effective bandwidth (the same rule ``repro resilience``
        applies), so tier-0 answers track the hardware the query asked
        about.
        """
        record = dict(task.fallback_record(error))
        record["source"] = source
        if isinstance(task, SpMMTask):
            config = task.config()
            if config.degradation is not None:
                from repro.piuma import effective_total_bandwidth, spmm_model

                bandwidth = effective_total_bandwidth(config)
                model = spmm_model(
                    record["n_vertices"], record["n_edges"],
                    task.embedding_dim, config,
                    read_bandwidth=bandwidth, write_bandwidth=bandwidth,
                )
                record.update(
                    gflops=float(model.gflops),
                    projected_time_ns=float(model.time_ns),
                    model_gflops=float(model.gflops),
                    model_time_ns=float(model.time_ns),
                )
        return record

    def _respond(self, tier, record, key, started, *, degraded=None,
                 pending=False, platform="piuma", extra=None):
        if degraded is not None:
            self._count("degraded")
        self._count(f"tier{tier}")
        response = {
            "tier": tier,
            "source": record.get("source"),
            "platform": platform,
            "key": key,
            "pending": pending,
            "degraded": degraded,
            "latency_ms": (time.perf_counter() - started) * 1e3,
            "record": record,
        }
        if extra:
            response.update(extra)
        return response

    # ------------------------------------------------------------------
    # Public API

    def predict(self, data):
        """Answer one query document (see :func:`parse_query`).

        Raises ``ValueError`` for malformed queries and
        :class:`QueueSaturated` when tier 2 is required but the queue
        is full; every other path returns a structured answer.
        """
        self._count("requests")
        try:
            query = parse_query(data)
        except ValueError:
            self._count("bad_requests")
            raise
        started = time.perf_counter()
        if query["platform"] != "piuma":
            record = self._platform_record(query)
            return self._respond(0, record, None, started,
                                 platform=query["platform"])
        task = task_from_query(query)
        return self.predict_task(
            task, tier=query["tier"], deadline_s=query["deadline_s"],
            _started=started, _counted=True,
        )

    def predict_task(self, task, *, key=None, tier="auto",
                     deadline_s=None, _started=None, _counted=False):
        """Tier ladder for one runner-protocol task.

        The in-process equivalent of ``POST /predict`` for callers that
        already hold a task object (benchmarks, tests, batch tooling).
        """
        if not _counted:
            self._count("requests")
        started = time.perf_counter() if _started is None else _started
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if key is None:
            payload = task.key_payload()
            key = (self.cache.key_for(payload) if self.cache is not None
                   else cache_key(payload))
        if tier == "model":
            return self._respond(0, self._tier0_record(task), key, started)
        # --- tier 1: shared content-addressed cache -------------------
        if self.cache is not None:
            self.faults.cache_delay()
            record = self.cache.get(key)
            if record is not None:
                return self._respond(1, record, key, started)
        # --- tier 2: schedule a DES run -------------------------------
        if self.faults.queue_full():
            self._count("rejected")
            raise QueueSaturated(
                "job queue full (injected fault)", retry_after_s=1.0,
                label=self._task_label(task),
            )
        try:
            job = self.scheduler.submit(self.faults.sabotage(task), key=key)
        except QueueSaturated:
            self._count("rejected")
            raise
        except CircuitOpen as error:
            # Graceful degradation, not an error: the model answers
            # while the pool heals.
            return self._respond(
                0, self._tier0_record(task, source="model_fallback"),
                key, started, degraded="circuit_open",
                extra={"retry_after_s": error.retry_after_s},
            )
        if job.wait(deadline_s):
            if job.error is None:
                return self._respond(2, job.record, key, started)
            # Terminal failure (crash/timeout budget exhausted, or a
            # deterministic divergence): still a structured answer.
            record = self._tier0_record(task, error=job.error,
                                        source="model_fallback")
            return self._respond(
                0, record, key, started,
                degraded=f"failed:{job.error.kind}",
            )
        # Deadline expired; the job keeps running and will backfill the
        # cache, so an identical retry upgrades to tier 1.
        record = self._tier0_record(task, source="model_fallback")
        return self._respond(0, record, key, started,
                             degraded="deadline", pending=True)

    def _task_label(self, task):
        label = getattr(task, "label", None)
        return label() if callable(label) else None

    def _platform_record(self, query):
        """Tier-0 CPU / GPU analytical answer (no DES exists for them)."""
        from repro.graphs.datasets import get_dataset

        adj = _materialized(query["dataset"], query["max_vertices"],
                            query["seed"])
        k = query["embedding_dim"]
        if query["platform"] == "cpu":
            from repro.cpu.config import XeonConfig
            from repro.cpu.spmm import spmm_time

            cores = query["overrides"].get("n_cores")
            estimate = spmm_time(adj.n_rows, adj.nnz, k, XeonConfig(),
                                 n_cores=cores)
            bound = estimate.bound
        else:
            from repro.gpu.config import A100Config
            from repro.gpu.kernels import spmm_time

            locality = get_dataset(query["dataset"]).locality
            estimate = spmm_time(adj.n_rows, adj.nnz, k, A100Config(),
                                 locality=locality)
            bound = estimate.bound
        return {
            "n_vertices": int(adj.n_rows),
            "n_edges": int(adj.nnz),
            "embedding_dim": int(k),
            "kernel": "spmm",
            "platform": query["platform"],
            "gflops": float(estimate.gflops),
            "projected_time_ns": float(estimate.time_ns),
            "model_gflops": float(estimate.gflops),
            "model_time_ns": float(estimate.time_ns),
            "bound": bound,
            "sim_time_ns": 0.0,
            "source": "model",
        }

    def healthz(self):
        """Structured liveness/health document (``GET /healthz``)."""
        breaker = self.breaker.snapshot()
        with self._lock:
            counters = dict(self.counters)
        cache_info = None
        if self.cache is not None:
            cache_info = {
                "enabled": self.cache.enabled,
                "directory": str(self.cache.directory),
                "entries": len(self.cache),
                "bytes": self.cache.total_bytes(),
                "max_bytes": self.cache.max_bytes,
                "quarantined": self.cache.quarantined(),
                "stats": {
                    "hits": self.cache.stats.hits,
                    "misses": self.cache.stats.misses,
                    "writes": self.cache.stats.writes,
                    "corrupt": self.cache.stats.corrupt,
                    "evictions": self.cache.stats.evictions,
                },
            }
        armed = self.faults.armed()
        return {
            "status": "ok" if breaker["state"] == CLOSED else "degraded",
            "uptime_s": time.time() - self.started_at,
            "counters": counters,
            "breaker": breaker,
            "scheduler": self.scheduler.snapshot(),
            "cache": cache_info,
            # Observability for chaos runs: quarantined cache entries
            # (also under "cache") plus, per fault point, both the
            # still-armed value and the lifetime injection count.
            "quarantined_cache_entries": (
                self.cache.quarantined() if self.cache is not None else 0
            ),
            "fault_injections": {
                point: {"armed": armed.get(point, 0),
                        "fired": self.faults.fired(point)}
                for point in ("queue_full", "worker_crash_burst",
                              "slow_cache_io")
            },
        }

    def close(self, drain=False, timeout=30.0):
        """Stop the tier-2 scheduler; returns True on a clean stop.

        ``drain=True`` lets accepted jobs finish (bounded by
        ``timeout`` seconds); see :meth:`JobScheduler.close`.
        """
        return self.scheduler.close(drain=drain, timeout=timeout)


# ----------------------------------------------------------------------
# HTTP frontend (stdlib only)

#: GET /predict parameters parsed as typed scalars; everything else
#: arrives as a string and is coerced by parse_query.
_GET_INT_PARAMS = ("embedding_dim", "k", "max_vertices", "seed",
                   "window_edges")
_GET_FLOAT_PARAMS = ("deadline_s",)


def _query_from_params(params):
    """Flat ``GET /predict`` parameters -> query document."""
    query = {}
    for name, value in params:
        if name in _GET_INT_PARAMS:
            query[name] = int(value)
        elif name in _GET_FLOAT_PARAMS:
            query[name] = float(value)
        elif name in ("overrides", "degradation"):
            # Structured values ride as JSON inside the parameter;
            # plain strings (preset names) pass through.
            try:
                query[name] = json.loads(value)
            except ValueError:
                query[name] = value
        else:
            query[name] = value
    return query


class PredictionHTTPServer(ThreadingHTTPServer):
    """Threaded JSON frontend bound to one :class:`PredictionService`."""

    daemon_threads = True

    def __init__(self, address, service, out=None):
        self.service = service
        self.out = out
        super().__init__(address, PredictionRequestHandler)


class PredictionRequestHandler(BaseHTTPRequestHandler):
    """``POST /predict`` / ``GET /predict`` / ``GET /healthz``.

    Every response is JSON with an accurate ``Content-Length``; the
    contract of the service is that *no* accepted request produces an
    unstructured 5xx — overload is 429 + ``Retry-After``, bad input is
    400 with an error document, and anything unforeseen is a structured
    500 (the never-expected last resort).
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        if self.server.out is not None:
            self.server.out(f"{self.address_string()} {format % args}")

    def _send(self, status, document, headers=None):
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _predict(self, data):
        service = self.server.service
        try:
            result = service.predict(data)
        except QueueSaturated as error:
            retry_after = max(1, int(math.ceil(error.retry_after_s)))
            self._send(429, {"error": error.payload()},
                       headers={"Retry-After": str(retry_after)})
        except (ValueError, KeyError, TypeError) as error:
            self._send(400, {"error": {
                "kind": "bad_request", "message": str(error),
            }})
        except Exception as error:  # pragma: no cover - last resort
            self._send(500, {"error": {
                "kind": "internal", "message": str(error),
                "type": type(error).__name__,
            }})
        else:
            self._send(200, result)

    def do_GET(self):
        url = urlsplit(self.path)
        if url.path == "/healthz":
            self._send(200, self.server.service.healthz())
        elif url.path == "/predict":
            try:
                data = _query_from_params(parse_qsl(url.query))
            except ValueError as error:
                self._send(400, {"error": {
                    "kind": "bad_request", "message": str(error),
                }})
                return
            self._predict(data)
        else:
            self._send(404, {"error": {
                "kind": "not_found",
                "message": f"no such endpoint: {url.path}",
                "endpoints": ["/predict", "/healthz"],
            }})

    def do_POST(self):
        url = urlsplit(self.path)
        if url.path != "/predict":
            self._send(404, {"error": {
                "kind": "not_found",
                "message": f"no such endpoint: {url.path}",
                "endpoints": ["/predict", "/healthz"],
            }})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            data = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, TypeError) as error:
            self._send(400, {"error": {
                "kind": "bad_request",
                "message": f"request body is not valid JSON: {error}",
            }})
            return
        self._predict(data)


def make_server(service, host="127.0.0.1", port=0, out=None):
    """Bind a :class:`PredictionHTTPServer` (``port=0`` = ephemeral)."""
    return PredictionHTTPServer((host, port), service, out=out)


class GracefulShutdown:
    """SIGTERM/SIGINT -> stop accepting, drain, close — never mid-request.

    ``install()`` registers the handler for the given signals (and
    remembers the previous handlers so tests can restore them); the
    handler itself is :meth:`trigger`, callable directly from tests
    without delivering a real signal.  ``server.shutdown()`` must not
    run on the thread executing ``serve_forever`` (it blocks until the
    serve loop exits), so the trigger hands it to a helper thread and
    returns immediately — the blocked ``serve_forever`` call in the
    main thread then returns, and the CLI finishes the drain.
    """

    def __init__(self, server, service, *, drain_timeout_s=30.0, out=None):
        self.server = server
        self.service = service
        self.drain_timeout_s = drain_timeout_s
        self.out = out or (lambda text: None)
        self.requested = threading.Event()
        self.signal_name = None
        self._previous = {}

    def install(self, signals=None):
        """Register for ``signals`` (default SIGTERM + SIGINT)."""
        import signal as signal_module

        if signals is None:
            signals = (signal_module.SIGTERM, signal_module.SIGINT)
        for signum in signals:
            self._previous[signum] = signal_module.signal(
                signum, self.trigger
            )
        return self

    def uninstall(self):
        """Restore the previously registered handlers."""
        import signal as signal_module

        for signum, previous in self._previous.items():
            signal_module.signal(signum, previous)
        self._previous.clear()

    def trigger(self, signum=None, frame=None):
        """Signal handler body: stop the HTTP accept loop (idempotent)."""
        if self.requested.is_set():
            return
        self.requested.set()
        if signum is not None:
            import signal as signal_module

            try:
                self.signal_name = signal_module.Signals(signum).name
            except ValueError:
                self.signal_name = str(signum)
        # shutdown() blocks until serve_forever's loop notices, and the
        # handler may be running *on* the serve_forever thread — hand
        # it off so the handler returns and the loop can exit.
        threading.Thread(
            target=self.server.shutdown, name="serve-shutdown", daemon=True
        ).start()

    def drain(self):
        """Finish in-flight jobs and close the service; True if clean."""
        pending = self.service.scheduler.pending
        if pending:
            self.out(f"draining {pending} in-flight job(s) "
                     f"(timeout {self.drain_timeout_s:.0f}s)...")
        drained = self.service.close(drain=True,
                                     timeout=self.drain_timeout_s)
        if drained:
            self.out("drained cleanly")
        else:
            self.out("drain timeout expired; remaining jobs failed "
                     "with structured shutdown errors")
        return drained
