"""Deterministic fault injection for the sweep runner.

Testing the resilience layer needs workers that fail *on demand and on
schedule*: crash on the first attempt, succeed on the second; hang
until killed; raise a divergence.  A :class:`FaultyTask` scripts that
behavior as a per-attempt ``plan`` — and because attempts execute in
separate worker processes, the attempt counter lives on disk (one
marker file per attempt in a scratch directory), which also makes the
schedule survive pool respawns and even a killed-and-resumed parent.

The task implements the full runner protocol (``run`` / ``label`` /
``key_payload`` / ``fallback_record``), so every ``run_sweep`` path —
cache, checkpoint, retry, policy — can be exercised without touching
the simulator.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass

from repro.runtime.errors import SimulationDiverged

#: Scripted per-attempt behaviors.
BEHAVIORS = ("ok", "raise", "crash", "hang", "diverge")


@dataclass(frozen=True)
class FaultyTask:
    """A picklable sweep task with a scripted failure plan.

    Attributes
    ----------
    name:
        Task identity (also the marker-file prefix; keep it unique per
        scratch directory).
    scratch:
        Directory for cross-process attempt markers.
    plan:
        Behavior per attempt, one of :data:`BEHAVIORS`; the last entry
        repeats for all further attempts.  ``("crash", "ok")`` crashes
        the first attempt and succeeds on retry.
    hang_s:
        How long a ``"hang"`` attempt sleeps (default: effectively
        forever, so only a timeout+kill ends it).
    value:
        Payload echoed into the success record.
    """

    name: str
    scratch: str
    plan: tuple = ("ok",)
    hang_s: float = 3600.0
    value: float = 1.0

    def __post_init__(self):
        for behavior in self.plan:
            if behavior not in BEHAVIORS:
                raise ValueError(f"unknown behavior {behavior!r}")
        if not self.plan:
            raise ValueError("plan must not be empty")

    def label(self):
        return f"fault:{self.name}"

    def key_payload(self):
        return {
            "fault": self.name,
            "plan": list(self.plan),
            "value": self.value,
        }

    def attempts_made(self):
        """How many attempts have started, across all processes."""
        return len(list(pathlib.Path(self.scratch).glob(f"{self.name}.attempt*")))

    def _record_attempt(self):
        directory = pathlib.Path(self.scratch)
        directory.mkdir(parents=True, exist_ok=True)
        attempt = self.attempts_made() + 1
        (directory / f"{self.name}.attempt{attempt}").touch()
        return attempt

    def run(self):
        attempt = self._record_attempt()
        behavior = self.plan[min(attempt - 1, len(self.plan) - 1)]
        if behavior == "raise":
            raise RuntimeError(f"injected exception (attempt {attempt})")
        if behavior == "diverge":
            raise SimulationDiverged(
                f"injected divergence (attempt {attempt})", cause="injected"
            )
        if behavior == "crash":
            # Hard worker death: skips all interpreter cleanup, so the
            # parent sees BrokenProcessPool, exactly like a segfault.
            os._exit(17)
        if behavior == "hang":
            time.sleep(self.hang_s)
        return {
            "source": "simulation",
            "name": self.name,
            "value": self.value,
            "attempt": attempt,
            "sim_time_ns": float(attempt),
        }

    def fallback_record(self, error=None):
        return {
            "source": "model_fallback",
            "name": self.name,
            "value": self.value,
            "sim_time_ns": 0.0,
            "error": None if error is None else error.payload(),
        }
