"""Deterministic fault injection for the sweep runner and the service.

Testing the resilience layer needs workers that fail *on demand and on
schedule*: crash on the first attempt, succeed on the second; hang
until killed; raise a divergence.  A :class:`FaultyTask` scripts that
behavior as a per-attempt ``plan`` — and because attempts execute in
separate worker processes, the attempt counter lives on disk (one
marker file per attempt in a scratch directory), which also makes the
schedule survive pool respawns and even a killed-and-resumed parent.

The task implements the full runner protocol (``run`` / ``label`` /
``key_payload`` / ``fallback_record``), so every ``run_sweep`` path —
cache, checkpoint, retry, policy — can be exercised without touching
the simulator.

The *service-scoped* fault points (:class:`ServiceFaultInjector`,
consumed by :class:`~repro.runtime.service.PredictionService`) inject
failures at the tier boundaries rather than inside one task:

* ``queue_full`` — the next N admissions see a saturated queue
  (backpressure / 429 paths without actually filling the queue);
* ``worker_crash_burst`` — the next N scheduled tasks are replaced by
  hard worker-killers (:class:`CrashTask`), driving consecutive
  :class:`~repro.runtime.errors.WorkerCrash` outcomes into the circuit
  breaker deterministically;
* ``slow_cache_io`` — every shared-cache read/write sleeps for the
  armed duration (deadline and degradation paths around tier 1).

All three are count- or toggle-armed from the test, consumed
atomically, and observable (:meth:`ServiceFaultInjector.fired`), so
breaker trip/recover sequences replay exactly.
"""

from __future__ import annotations

import os
import pathlib
import threading
import time
from dataclasses import dataclass

from repro.runtime.errors import SimulationDiverged

#: Scripted per-attempt behaviors.
BEHAVIORS = ("ok", "raise", "crash", "hang", "diverge")


@dataclass(frozen=True)
class FaultyTask:
    """A picklable sweep task with a scripted failure plan.

    Attributes
    ----------
    name:
        Task identity (also the marker-file prefix; keep it unique per
        scratch directory).
    scratch:
        Directory for cross-process attempt markers.
    plan:
        Behavior per attempt, one of :data:`BEHAVIORS`; the last entry
        repeats for all further attempts.  ``("crash", "ok")`` crashes
        the first attempt and succeeds on retry.
    hang_s:
        How long a ``"hang"`` attempt sleeps (default: effectively
        forever, so only a timeout+kill ends it).
    value:
        Payload echoed into the success record.
    """

    name: str
    scratch: str
    plan: tuple = ("ok",)
    hang_s: float = 3600.0
    value: float = 1.0

    def __post_init__(self):
        for behavior in self.plan:
            if behavior not in BEHAVIORS:
                raise ValueError(f"unknown behavior {behavior!r}")
        if not self.plan:
            raise ValueError("plan must not be empty")

    def label(self):
        return f"fault:{self.name}"

    def key_payload(self):
        return {
            "fault": self.name,
            "plan": list(self.plan),
            "value": self.value,
        }

    def attempts_made(self):
        """How many attempts have started, across all processes."""
        return len(list(pathlib.Path(self.scratch).glob(f"{self.name}.attempt*")))

    def _record_attempt(self):
        directory = pathlib.Path(self.scratch)
        directory.mkdir(parents=True, exist_ok=True)
        attempt = self.attempts_made() + 1
        (directory / f"{self.name}.attempt{attempt}").touch()
        return attempt

    def run(self):
        attempt = self._record_attempt()
        behavior = self.plan[min(attempt - 1, len(self.plan) - 1)]
        if behavior == "raise":
            raise RuntimeError(f"injected exception (attempt {attempt})")
        if behavior == "diverge":
            raise SimulationDiverged(
                f"injected divergence (attempt {attempt})", cause="injected"
            )
        if behavior == "crash":
            # Hard worker death: skips all interpreter cleanup, so the
            # parent sees BrokenProcessPool, exactly like a segfault.
            os._exit(17)
        if behavior == "hang":
            time.sleep(self.hang_s)
        return {
            "source": "simulation",
            "name": self.name,
            "value": self.value,
            "attempt": attempt,
            "sim_time_ns": float(attempt),
        }

    def fallback_record(self, error=None):
        return {
            "source": "model_fallback",
            "name": self.name,
            "value": self.value,
            "sim_time_ns": 0.0,
            "error": None if error is None else error.payload(),
        }


@dataclass(frozen=True)
class CrashTask:
    """A picklable task that kills its worker process immediately.

    Wraps a victim task's identity (label/key payload/fallback pass
    through) so the service's coalescing, cache keying, and tier-0
    degradation all behave exactly as they would for the real task —
    only the worker-side execution is sabotaged.  Used by the
    ``worker_crash_burst`` service fault point.
    """

    victim: object

    def label(self):
        inner = getattr(self.victim, "label", None)
        base = inner() if callable(inner) else "task"
        return f"crash-burst:{base}"

    def key_payload(self):
        return self.victim.key_payload()

    def fallback_record(self, error=None):
        return self.victim.fallback_record(error)

    def run(self):
        # Hard worker death: skips all interpreter cleanup, so the
        # parent sees BrokenProcessPool, exactly like a segfault.
        os._exit(23)


#: Service-scoped fault points (:class:`ServiceFaultInjector.arm`).
SERVICE_FAULT_POINTS = ("queue_full", "worker_crash_burst",
                        "slow_cache_io")


class ServiceFaultInjector:
    """Deterministic fault points at the prediction service's seams.

    Thread-safe: the service consults it from request threads and the
    scheduler pump concurrently.  Disarmed points cost one lock-free
    dictionary miss, so a default (never-armed) injector is free.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._armed = {}
        #: Per-point count of injections actually delivered.
        self._fired = {point: 0 for point in SERVICE_FAULT_POINTS}

    def arm(self, point, value):
        """Arm ``point``.

        ``queue_full`` / ``worker_crash_burst`` take a count (the next
        N events are faulted); ``slow_cache_io`` takes a duration in
        seconds (every cache I/O sleeps that long until disarmed with
        ``0``).
        """
        if point not in SERVICE_FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; "
                f"expected one of {SERVICE_FAULT_POINTS}"
            )
        if value < 0:
            raise ValueError("fault value must be non-negative")
        with self._lock:
            if value:
                self._armed[point] = value
            else:
                self._armed.pop(point, None)

    def fired(self, point):
        """How many times ``point`` actually injected."""
        with self._lock:
            return self._fired[point]

    def armed(self, point=None):
        """Currently armed value(s): still-pending counts / durations.

        With ``point`` returns that point's armed value (0 when
        disarmed); without, a ``{point: value}`` snapshot over every
        fault point — what ``/healthz`` reports so an operator (or the
        chaos orchestrator) can see live injections, not just history.
        """
        with self._lock:
            if point is not None:
                if point not in SERVICE_FAULT_POINTS:
                    raise ValueError(
                        f"unknown fault point {point!r}; "
                        f"expected one of {SERVICE_FAULT_POINTS}"
                    )
                return self._armed.get(point, 0)
            return {p: self._armed.get(p, 0) for p in SERVICE_FAULT_POINTS}

    def _consume(self, point):
        """Consume one count-armed injection; True if it fires."""
        with self._lock:
            remaining = self._armed.get(point, 0)
            if not remaining:
                return False
            remaining -= 1
            if remaining:
                self._armed[point] = remaining
            else:
                del self._armed[point]
            self._fired[point] += 1
            return True

    def queue_full(self):
        """Should this admission be rejected as saturated?"""
        return self._consume("queue_full")

    def sabotage(self, task):
        """Possibly replace ``task`` with a worker-killer (crash burst)."""
        if self._consume("worker_crash_burst"):
            return CrashTask(task)
        return task

    def cache_delay(self):
        """Sleep the armed ``slow_cache_io`` duration (0 when disarmed)."""
        with self._lock:
            delay = self._armed.get("slow_cache_io", 0.0)
            if delay:
                self._fired["slow_cache_io"] += 1
        if delay:
            time.sleep(delay)
        return delay
