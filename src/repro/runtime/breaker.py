"""Circuit breaker around the DES worker pool.

A long-running prediction service cannot afford to keep feeding work
into a pool that is structurally failing — a bad deploy, a poisoned
graph spec, an OOM-ing host — because every doomed submission costs a
worker respawn and a client its deadline.  The breaker watches the
*infrastructure* failure signal (consecutive worker crashes and task
timeouts; deterministic task failures like a diverged simulation say
nothing about pool health and are ignored) and converts sustained
failure into fast, structured refusal:

* **closed** — normal operation; failures are counted, successes reset
  the count.  ``failure_threshold`` consecutive failures trip the
  breaker.
* **open** — every :meth:`allow` is refused until ``reset_timeout_s``
  has elapsed since the trip.  Refusals are O(1) and touch no pool.
* **half-open** — after the cooldown, up to ``half_open_probes``
  callers are let through as probes.  A probe success closes the
  breaker; a probe failure re-opens it and restarts the cooldown.

The clock is injectable so trip/recover sequences are deterministic in
tests, and :meth:`snapshot` exposes the full state machine for the
service's ``/healthz`` endpoint.  All methods are thread-safe.
"""

from __future__ import annotations

import threading
import time

#: Breaker states (the values appear verbatim in ``/healthz``).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing.

    Parameters
    ----------
    failure_threshold:
        Consecutive infrastructure failures that trip the breaker.
    reset_timeout_s:
        Cooldown before an open breaker starts admitting probes.
    half_open_probes:
        Probe slots available while half-open; outcomes settle the
        state (success closes, failure re-opens).
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(self, failure_threshold=5, reset_timeout_s=30.0,
                 half_open_probes=1, clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout_s = float(reset_timeout_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probes_inflight = 0
        # Lifetime counters for /healthz and tests.
        self.trips = 0
        self.successes = 0
        self.failures = 0
        self.rejections = 0

    @property
    def state(self):
        """Current state, advancing open->half-open if the cooldown passed."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self):
        # Caller holds the lock.
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout_s):
            self._state = HALF_OPEN
            self._probes_inflight = 0

    def allow(self):
        """May a new unit of work enter the protected pool right now?

        Consumes a probe slot when half-open, so every ``True`` must be
        settled by exactly one later :meth:`record_success` /
        :meth:`record_failure` (the scheduler guarantees this).
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                if self._probes_inflight < self.half_open_probes:
                    self._probes_inflight += 1
                    return True
            self.rejections += 1
            return False

    def record_success(self):
        """A protected unit of work finished healthy."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            if self._state in (HALF_OPEN, OPEN):
                # A success while nominally open can happen: work
                # admitted before the trip finishing late.  Treat it as
                # evidence of recovery either way.
                self._state = CLOSED
                self._opened_at = None
                self._probes_inflight = 0

    def record_failure(self):
        """A protected unit of work died on infrastructure (crash/timeout)."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: back to a full cooldown.
                self._trip()
            elif (self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._trip()
            elif self._state == OPEN:
                # Stragglers admitted before the trip keep the breaker
                # open but do not extend the cooldown: the cooldown
                # measures time since the *decision*, and late echoes
                # of the same incident should not starve recovery.
                pass

    def _trip(self):
        # Caller holds the lock.
        self._state = OPEN
        self._opened_at = self._clock()
        self._probes_inflight = 0
        self.trips += 1

    def retry_after_s(self):
        """Seconds until the breaker could admit a probe (0 if it can now)."""
        with self._lock:
            self._maybe_half_open()
            if self._state != OPEN:
                return 0.0
            return max(
                0.0,
                self.reset_timeout_s - (self._clock() - self._opened_at),
            )

    def snapshot(self):
        """Structured state for ``/healthz`` (plain JSON)."""
        with self._lock:
            self._maybe_half_open()
            open_for = (None if self._opened_at is None
                        else self._clock() - self._opened_at)
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
                "half_open_probes": self.half_open_probes,
                "probes_inflight": self._probes_inflight,
                "open_for_s": open_for,
                "trips": self.trips,
                "successes": self.successes,
                "failures": self.failures,
                "rejections": self.rejections,
            }
