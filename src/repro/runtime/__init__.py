"""Experiment-execution runtime: sweeps, jobs, cache, serving.

The paper's figures are all sweeps over the (pure, deterministic)
discrete-event simulator.  This package makes experiment execution a
first-class subsystem — batch *and* online:

* :mod:`repro.runtime.runner` — fan independent sweep points across a
  process pool with deterministic result ordering, per-task timeouts,
  bounded retries, pool respawn, and skip/fallback error policies;
* :mod:`repro.runtime.shard` — sharded sweep points for the multi-node
  scale-out scenario: one DES task per graph partition, with exact
  conservation counters and a bit-identity contract at one shard;
* :mod:`repro.runtime.jobs` — the reusable scheduling core under the
  sweep runner: the worker pool (:class:`ExecPool`) and an online
  :class:`JobScheduler` with bounded admission, coalescing, and
  breaker-guarded retries;
* :mod:`repro.runtime.service` — the tiered prediction frontend
  (``repro serve``): analytical tier 0, shared-cache tier 1, DES
  tier 2 with graceful degradation to the model under deadline,
  saturation, and breaker-open conditions;
* :mod:`repro.runtime.breaker` — the circuit breaker state machine
  (closed / open / half-open) guarding the worker pool;
* :mod:`repro.runtime.cache` — content-addressed on-disk JSON records
  keyed by (config fields, dataset spec, kernel, point, code salt),
  with corrupt-entry quarantine and an LRU ``max_bytes`` budget;
* :mod:`repro.runtime.checkpoint` — append-only sweep manifests for
  crash-safe resume of interrupted campaigns;
* :mod:`repro.runtime.errors` — the failure taxonomy (timeouts, worker
  crashes, diverged simulations, saturation, open circuits) with
  picklable structured payloads;
* :mod:`repro.runtime.progress` — per-point wall-clock / simulated-ns /
  cache-hit / degradation instrumentation;
* :mod:`repro.runtime.faults` — deterministic fault injection for
  testing every failure path, batch and service-scoped;
* :mod:`repro.runtime.chaos` — seeded chaos orchestration composing
  those fault points into reproducible schedules driven end-to-end
  through every frontend, with recovery invariants verified
  (``repro chaos``).

Benchmarks, the ``repro sweep``/``simulate``/``calibrate``/``serve``
CLI commands, and future distributed backends all route through
:func:`run_sweep` and :class:`PredictionService`.
"""

from repro.runtime.breaker import CircuitBreaker
from repro.runtime.cache import (
    CODE_VERSION,
    MANIFEST_NAME,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.runtime.checkpoint import SweepCheckpoint, gc_manifests
from repro.runtime.errors import (
    CircuitOpen,
    HardwareExhausted,
    QueueSaturated,
    SimulationDiverged,
    TaskError,
    TaskTimeout,
    WorkerCrash,
    failure_record,
    wrap_failure,
)
from repro.runtime.chaos import (
    CHAOS_FRONTENDS,
    ChaosSchedule,
    ChaoticTask,
    run_chaos,
)
from repro.runtime.faults import CrashTask, FaultyTask, ServiceFaultInjector
from repro.runtime.jobs import (
    ExecPool,
    Job,
    JobScheduler,
    SchedulerStats,
    backoff_delay,
)
from repro.runtime.progress import PointMetrics, ProgressTracker
from repro.runtime.runner import (
    ON_ERROR_POLICIES,
    SpMMTask,
    SweepReport,
    default_workers,
    run_sweep,
    spmm_task,
)
from repro.runtime.shard import (
    ShardRecovery,
    ShardRunReport,
    ShardTask,
    aggregate_conserved,
    conserved_counters,
    run_shards,
    shard_geometry,
    shard_subgraph,
    shard_tasks,
)
from repro.runtime.service import (
    GracefulShutdown,
    PredictionService,
    make_server,
    parse_query,
)

__all__ = [
    "CHAOS_FRONTENDS",
    "CODE_VERSION",
    "CacheStats",
    "ChaosSchedule",
    "ChaoticTask",
    "CircuitBreaker",
    "CircuitOpen",
    "CrashTask",
    "ExecPool",
    "FaultyTask",
    "GracefulShutdown",
    "HardwareExhausted",
    "Job",
    "JobScheduler",
    "MANIFEST_NAME",
    "ON_ERROR_POLICIES",
    "PointMetrics",
    "PredictionService",
    "ProgressTracker",
    "QueueSaturated",
    "ResultCache",
    "SchedulerStats",
    "ServiceFaultInjector",
    "ShardRecovery",
    "ShardRunReport",
    "ShardTask",
    "SimulationDiverged",
    "SpMMTask",
    "SweepCheckpoint",
    "SweepReport",
    "TaskError",
    "TaskTimeout",
    "WorkerCrash",
    "aggregate_conserved",
    "backoff_delay",
    "cache_key",
    "conserved_counters",
    "default_cache_dir",
    "default_workers",
    "failure_record",
    "gc_manifests",
    "make_server",
    "parse_query",
    "run_chaos",
    "run_shards",
    "run_sweep",
    "shard_geometry",
    "shard_subgraph",
    "shard_tasks",
    "spmm_task",
    "wrap_failure",
]
