"""Experiment-execution runtime: sweep runner, result cache, progress.

The paper's figures are all sweeps over the (pure, deterministic)
discrete-event simulator.  This package makes sweep execution a
first-class subsystem:

* :mod:`repro.runtime.runner` — fan independent sweep points across a
  process pool with deterministic result ordering;
* :mod:`repro.runtime.cache` — content-addressed on-disk JSON records
  keyed by (config fields, dataset spec, kernel, point, code salt);
* :mod:`repro.runtime.progress` — per-point wall-clock / simulated-ns /
  cache-hit instrumentation.

Benchmarks, the ``repro sweep``/``simulate``/``calibrate`` CLI
commands, and future distributed backends all route through
:func:`run_sweep`.
"""

from repro.runtime.cache import (
    CODE_VERSION,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.runtime.progress import PointMetrics, ProgressTracker
from repro.runtime.runner import (
    SpMMTask,
    SweepReport,
    default_workers,
    run_sweep,
    spmm_task,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "PointMetrics",
    "ProgressTracker",
    "ResultCache",
    "SpMMTask",
    "SweepReport",
    "cache_key",
    "default_cache_dir",
    "default_workers",
    "run_sweep",
    "spmm_task",
]
