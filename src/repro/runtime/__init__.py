"""Experiment-execution runtime: sweep runner, cache, resilience.

The paper's figures are all sweeps over the (pure, deterministic)
discrete-event simulator.  This package makes sweep execution a
first-class subsystem:

* :mod:`repro.runtime.runner` — fan independent sweep points across a
  process pool with deterministic result ordering, per-task timeouts,
  bounded retries, pool respawn, and skip/fallback error policies;
* :mod:`repro.runtime.cache` — content-addressed on-disk JSON records
  keyed by (config fields, dataset spec, kernel, point, code salt);
* :mod:`repro.runtime.checkpoint` — append-only sweep manifests for
  crash-safe resume of interrupted campaigns;
* :mod:`repro.runtime.errors` — the failure taxonomy (timeouts, worker
  crashes, diverged simulations) with picklable structured payloads;
* :mod:`repro.runtime.progress` — per-point wall-clock / simulated-ns /
  cache-hit / degradation instrumentation;
* :mod:`repro.runtime.faults` — deterministic fault injection for
  testing every failure path.

Benchmarks, the ``repro sweep``/``simulate``/``calibrate`` CLI
commands, and future distributed backends all route through
:func:`run_sweep`.
"""

from repro.runtime.cache import (
    CODE_VERSION,
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.runtime.checkpoint import SweepCheckpoint, gc_manifests
from repro.runtime.errors import (
    HardwareExhausted,
    SimulationDiverged,
    TaskError,
    TaskTimeout,
    WorkerCrash,
    failure_record,
    wrap_failure,
)
from repro.runtime.faults import FaultyTask
from repro.runtime.progress import PointMetrics, ProgressTracker
from repro.runtime.runner import (
    ON_ERROR_POLICIES,
    SpMMTask,
    SweepReport,
    default_workers,
    run_sweep,
    spmm_task,
)

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "FaultyTask",
    "HardwareExhausted",
    "ON_ERROR_POLICIES",
    "PointMetrics",
    "ProgressTracker",
    "ResultCache",
    "SimulationDiverged",
    "SpMMTask",
    "SweepCheckpoint",
    "SweepReport",
    "TaskError",
    "TaskTimeout",
    "WorkerCrash",
    "cache_key",
    "default_cache_dir",
    "default_workers",
    "failure_record",
    "gc_manifests",
    "run_sweep",
    "spmm_task",
    "wrap_failure",
]
