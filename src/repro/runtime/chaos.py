"""Seeded, deterministic chaos orchestration over the full stack.

PRs 2–9 each built a safety net — retries/checkpoints, degraded
fabrics, breaker/coalescing, sharded multi-node — and each is tested
one fault at a time.  This module proves they *compose*: a seeded
:class:`ChaosSchedule` derives a reproducible set of fault events,
drives full end-to-end runs of all three frontends under them —

* **batch** — ``run_sweep`` with scripted worker crashes, injected
  exceptions, hung workers killed by the timeout machinery,
  kill-and-resume against the checkpoint manifest, and corrupt cache
  entries quarantined and recomputed;
* **service** — :class:`~repro.runtime.service.PredictionService`
  under queue saturation, worker-crash bursts tripping the circuit
  breaker, and slow cache I/O;
* **multinode** — :func:`~repro.piuma.multinode.run_multinode` under
  per-shard crashes, permanent shard death, and stragglers, recovered
  by the :class:`~repro.runtime.shard.ShardRecovery` failure model
  (bounded retry, hedged re-execution, partial assembly) —

and then verifies the *recovery invariants* that make the composition
trustworthy:

* **no accepted work lost** — every accepted point/request/shard
  reaches a terminal, structured outcome;
* **bit-identity** — recovered results equal the unfaulted run's on
  every deterministic field (:data:`CHAOS_IDENTITY_FIELDS`; host
  wall-clock excluded);
* **cache / checkpoint consistency** — no torn temp files, every
  surviving manifest line re-reads as the final record, quarantined
  entries are recomputed;
* **breaker returns to closed** — a tripped circuit recovers through
  its half-open probe.

Faults inside tasks ride a :class:`ChaoticTask` wrapper whose cache /
checkpoint identity **is the victim's** (``key_payload`` delegates), so
resume and bit-identity comparisons run against the exact same keys an
unfaulted run would use; per-attempt behavior lives in on-disk markers
(the :class:`~repro.runtime.faults.FaultyTask` mechanism), surviving
pool respawns and killed parents.

Surface: ``repro chaos --seed/--schedule/--frontend/--rounds`` with a
JSON verdict artifact, and ``benchmarks/bench_chaos_recovery.py``.
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import time
from dataclasses import dataclass

from repro.runtime.errors import SimulationDiverged, TaskError

#: Frontends the orchestrator can drive.
CHAOS_FRONTENDS = ("batch", "service", "multinode")

#: Batch fault points (``run_sweep``): composed task/pool/cache faults.
BATCH_CHAOS_POINTS = ("worker_crash", "task_raise", "task_hang",
                      "kill_resume", "corrupt_cache")

#: Service fault points (tier seams; see ServiceFaultInjector).
SERVICE_CHAOS_POINTS = ("queue_full", "worker_crash_burst",
                        "slow_cache_io")

#: Multinode fault points (per-shard failure domains).
MULTINODE_CHAOS_POINTS = ("shard_crash", "shard_dead", "shard_straggle")

#: Deterministic record fields compared for bit-identity (everything
#: except host wall-clock: host_wall_s / events_per_s / latency vary
#: run to run, the simulated observables must not).
CHAOS_IDENTITY_FIELDS = (
    "n_vertices", "n_edges", "embedding_dim", "kernel", "gflops",
    "projected_time_ns", "sim_time_ns", "window_edges", "total_edges",
    "memory_utilization", "achieved_bandwidth", "model_gflops",
    "model_time_ns", "efficiency", "events", "tag_stats", "source",
    "scheduler", "engine",
)


def record_identity(record):
    """The deterministic projection of one record (bit-identity key)."""
    return {name: record.get(name) for name in CHAOS_IDENTITY_FIELDS}


@dataclass(frozen=True)
class ChaoticTask:
    """A victim task with a scripted per-attempt fault plan.

    Unlike :class:`~repro.runtime.faults.FaultyTask` (a synthetic task
    for unit tests), this wraps a *real* task: ``key_payload`` is the
    victim's, so cache keys, checkpoint lines, and coalescing identity
    are exactly what the unfaulted run produces — the property every
    resume-bit-identity invariant rests on.  ``plan`` behaviors are
    :data:`~repro.runtime.faults.BEHAVIORS`; an ``"ok"`` attempt (or a
    ``"hang"`` that survives its sleep) executes the victim for real.
    The cross-process attempt counter is a marker file per attempt
    under ``scratch``, so the script survives pool respawns and killed
    parents.
    """

    victim: object
    name: str
    scratch: str
    plan: tuple = ("ok",)
    hang_s: float = 3600.0

    def __post_init__(self):
        from repro.runtime.faults import BEHAVIORS

        if not self.plan:
            raise ValueError("plan must not be empty")
        for behavior in self.plan:
            if behavior not in BEHAVIORS:
                raise ValueError(f"unknown behavior {behavior!r}")

    def label(self):
        return f"chaos:{self.victim.label()}"

    def key_payload(self):
        return self.victim.key_payload()

    def attempts_made(self):
        return len(list(
            pathlib.Path(self.scratch).glob(f"{self.name}.attempt*")
        ))

    def _record_attempt(self):
        directory = pathlib.Path(self.scratch)
        directory.mkdir(parents=True, exist_ok=True)
        attempt = self.attempts_made() + 1
        (directory / f"{self.name}.attempt{attempt}").touch()
        return attempt

    def run(self):
        attempt = self._record_attempt()
        behavior = self.plan[min(attempt - 1, len(self.plan) - 1)]
        if behavior == "raise":
            raise RuntimeError(
                f"chaos: injected exception (attempt {attempt})"
            )
        if behavior == "diverge":
            raise SimulationDiverged(
                f"chaos: injected divergence (attempt {attempt})",
                cause="chaos",
            )
        if behavior == "crash":
            os._exit(29)
        if behavior == "hang":
            time.sleep(self.hang_s)
        return self.victim.run()

    def fallback_record(self, error=None):
        return self.victim.fallback_record(error)

    def shard_fallback_record(self, error=None):
        maker = getattr(self.victim, "shard_fallback_record", None)
        if maker is not None:
            return maker(error)
        return self.victim.fallback_record(error)


# ----------------------------------------------------------------------
# Fault schedules


@dataclass
class ChaosSchedule:
    """A reproducible list of fault events over (frontend, round).

    Events are plain dicts — ``{"round", "frontend", "point"}`` plus a
    ``"target"`` (task/shard index) or ``"value"`` (count / duration)
    where the point needs one — so a schedule round-trips through JSON
    (``--schedule`` files) byte for byte.
    """

    seed: int
    rounds: int
    frontends: tuple
    events: list

    @classmethod
    def generate(cls, seed, frontends=CHAOS_FRONTENDS, rounds=1):
        """Derive the deterministic schedule of ``seed``.

        Every (frontend, round) cell seeds its own RNG stream, so
        adding rounds or dropping a frontend never perturbs the other
        cells' events.  Each cell always includes the frontend's
        acceptance-critical faults (kill-and-resume for batch, a
        breaker-tripping crash burst for service, a permanently dead
        shard for multinode) plus seed-dependent extras.
        """
        frontends = tuple(frontends)
        events = []
        for frontend in frontends:
            for rnd in range(rounds):
                rng = random.Random(f"chaos:{seed}:{frontend}:{rnd}")
                if frontend == "batch":
                    targets = rng.sample(range(_BatchDriver.N_TASKS), 3)
                    events.append(_event(rnd, frontend, "worker_crash",
                                         target=targets[0]))
                    events.append(_event(
                        rnd, frontend,
                        rng.choice(("task_raise", "task_hang")),
                        target=targets[1],
                    ))
                    events.append(_event(rnd, frontend, "kill_resume",
                                         target=targets[2]))
                    if rng.random() < 0.5:
                        events.append(_event(
                            rnd, frontend, "corrupt_cache",
                            target=rng.randrange(_BatchDriver.N_TASKS),
                        ))
                elif frontend == "service":
                    events.append(_event(rnd, frontend, "queue_full",
                                         value=rng.randint(1, 2)))
                    events.append(_event(rnd, frontend,
                                         "worker_crash_burst", value=1))
                    if rng.random() < 0.5:
                        events.append(_event(rnd, frontend,
                                             "slow_cache_io", value=0.02))
                elif frontend == "multinode":
                    targets = rng.sample(
                        range(_MultinodeDriver.N_SHARDS), 3
                    )
                    events.append(_event(rnd, frontend, "shard_dead",
                                         target=targets[0]))
                    events.append(_event(rnd, frontend, "shard_crash",
                                         target=targets[1]))
                    if rng.random() < 0.5:
                        events.append(_event(rnd, frontend,
                                             "shard_straggle",
                                             target=targets[2]))
                else:
                    raise ValueError(
                        f"unknown frontend {frontend!r}; expected one "
                        f"of {CHAOS_FRONTENDS}"
                    )
        return cls(seed=seed, rounds=rounds, frontends=frontends,
                   events=events)

    @classmethod
    def from_json(cls, doc):
        """Load a schedule document (``--schedule`` file)."""
        events = list(doc.get("events", ()))
        known = {
            "batch": BATCH_CHAOS_POINTS,
            "service": SERVICE_CHAOS_POINTS,
            "multinode": MULTINODE_CHAOS_POINTS,
        }
        for event in events:
            frontend = event.get("frontend")
            if frontend not in known:
                raise ValueError(
                    f"event frontend must be one of {CHAOS_FRONTENDS}, "
                    f"got {frontend!r}"
                )
            if event.get("point") not in known[frontend]:
                raise ValueError(
                    f"unknown {frontend} fault point "
                    f"{event.get('point')!r}; expected one of "
                    f"{known[frontend]}"
                )
        frontends = tuple(doc.get(
            "frontends",
            [f for f in CHAOS_FRONTENDS
             if any(e["frontend"] == f for e in events)],
        ))
        rounds = int(doc.get(
            "rounds",
            1 + max((int(e.get("round", 0)) for e in events), default=0),
        ))
        return cls(seed=int(doc.get("seed", 0)), rounds=rounds,
                   frontends=frontends, events=events)

    def to_json(self):
        return {
            "seed": self.seed,
            "rounds": self.rounds,
            "frontends": list(self.frontends),
            "events": [dict(e) for e in self.events],
        }

    def for_round(self, frontend, rnd):
        return [e for e in self.events
                if e["frontend"] == frontend and int(e.get("round", 0)) == rnd]


def _event(rnd, frontend, point, target=None, value=None):
    event = {"round": rnd, "frontend": frontend, "point": point}
    if target is not None:
        event["target"] = int(target)
    if value is not None:
        event["value"] = value
    return event


# ----------------------------------------------------------------------
# Frontend drivers


def _check(invariants, name, passed, detail=""):
    invariants[name] = {"passed": bool(passed), "detail": detail}
    return bool(passed)


def _identity_mismatches(records, baselines):
    """Indexes whose deterministic projection differs from baseline."""
    return [
        i for i, (got, want) in enumerate(zip(records, baselines))
        if got is None or record_identity(got) != record_identity(want)
    ]


class _BatchDriver:
    """Chaos rounds against ``run_sweep`` (+ cache + checkpoint)."""

    N_TASKS = 4

    def __init__(self, workdir):
        self.workdir = pathlib.Path(workdir)
        self._baseline = None

    def tasks(self):
        from repro.runtime.runner import spmm_task

        return [
            spmm_task("products", k, kernel=kernel, max_vertices=512,
                      seed=3)
            for kernel, k in (("dma", 4), ("dma", 8),
                              ("loop", 4), ("loop", 8))
        ]

    def baseline(self):
        """Unfaulted records (memoized; computed inline, no pool)."""
        from repro.runtime.runner import run_sweep

        if self._baseline is None:
            report = run_sweep(self.tasks(), workers=1)
            self._baseline = report.records
        return self._baseline

    def run_round(self, rnd, events):
        from repro.runtime.cache import ResultCache
        from repro.runtime.checkpoint import SweepCheckpoint
        from repro.runtime.runner import run_sweep

        scratch = self.workdir / f"batch-r{rnd}"
        markers = scratch / "markers"
        cache = ResultCache(scratch / "cache")
        tasks = self.tasks()
        baseline = self.baseline()
        invariants = {}
        stats = {"injected": 0, "recovered_retry": 0, "resumed": 0,
                 "rejected": 0, "lost": 0, "quarantined_recovered": 0}

        plans = {}
        hang = False
        kill_resume = None
        corrupt = None
        for event in events:
            point, target = event["point"], event.get("target")
            if point == "worker_crash":
                plans[target] = ("crash", "ok")
            elif point == "task_raise":
                plans[target] = ("raise", "ok")
            elif point == "task_hang":
                plans[target] = ("hang", "ok")
                hang = True
            elif point == "kill_resume":
                kill_resume = target
            elif point == "corrupt_cache":
                corrupt = target
        stats["injected"] = len(plans) + (kill_resume is not None) \
            + (corrupt is not None)

        def wrap(index, task, phase):
            plan = plans.get(index, ("ok",))
            return ChaoticTask(
                victim=task, name=f"r{rnd}-{phase}-{index}",
                scratch=str(markers), plan=plan, hang_s=60.0,
            )

        checkpoint = SweepCheckpoint.for_tasks(
            tasks, directory=scratch / "ckpt"
        )

        expected_resume = 0
        pre_resumed = set()
        if kill_resume is not None:
            # Process-kill-and-resume, deterministically emulated: the
            # kill target raises an unretryable divergence, aborting
            # the sweep mid-run under on_error="raise" and leaving a
            # partial fsync'd manifest — the same on-disk state a
            # SIGKILL leaves (the subprocess variant lives in
            # tests/runtime/test_resume_chaos.py).
            phase_a = [
                ChaoticTask(victim=task, name=f"r{rnd}-kill-{i}",
                            scratch=str(markers),
                            plan=("diverge",) if i == kill_resume
                            else ("ok",))
                for i, task in enumerate(tasks)
            ]
            try:
                run_sweep(phase_a, workers=2, cache=None,
                          checkpoint=checkpoint, on_error="raise")
            except TaskError:
                pass
            pre_resumed = set(checkpoint.load())
            expected_resume = len(pre_resumed)

        wrapped = [wrap(i, task, "main") for i, task in enumerate(tasks)]
        started = time.perf_counter()
        report = run_sweep(
            wrapped, workers=2, cache=cache, checkpoint=checkpoint,
            resume=kill_resume is not None,
            timeout=5.0 if hang else None, retries=2,
            backoff_s=0.05, backoff_cap_s=0.2, jitter=0.0,
            on_error="fallback",
        )
        wall_s = time.perf_counter() - started
        stats["resumed"] = report.resumed

        lost = [i for i, r in enumerate(report.records)
                if r is None or r.get("source") != "simulation"]
        stats["lost"] = len(lost)
        _check(invariants, "no_lost_work", not lost,
               f"non-simulation outcomes at {lost}" if lost else
               f"{len(report.records)} points terminal and recovered")
        mismatched = _identity_mismatches(report.records, baseline)
        _check(invariants, "bit_identity", not mismatched,
               f"mismatch at {mismatched}" if mismatched else
               "all records bit-identical to the unfaulted run")
        if kill_resume is not None:
            _check(invariants, "resume_consistent",
                   report.resumed == expected_resume,
                   f"resumed {report.resumed}, manifest held "
                   f"{expected_resume}")
        stats["recovered_retry"] = sum(
            1 for i in plans if i not in lost
        )

        # Checkpoint consistency: every surviving manifest line must
        # re-read as the final record for its key.
        manifest = checkpoint.load()
        keys = [cache.key_for(task.key_payload()) for task in tasks]
        by_key = dict(zip(keys, report.records))
        torn = [key for key, record in manifest.items()
                if key not in by_key
                or record_identity(record) != record_identity(by_key[key])]
        _check(invariants, "checkpoint_consistent", not torn,
               f"stale manifest keys: {torn}" if torn else
               f"{len(manifest)} manifest record(s) match final results")

        # Cache consistency: no torn temp litter, no quarantine, every
        # computed point re-readable and identical (resumed points were
        # satisfied from the manifest and legitimately never cached).
        litter = [p.name for p in cache.directory.glob("*.tmp*")]
        stale = [
            i for i, key in enumerate(keys)
            if key not in pre_resumed
            and record_identity(cache.get(key) or {})
            != record_identity(baseline[i])
        ]
        _check(invariants, "cache_consistent",
               not litter and not stale and cache.quarantined() == 0,
               f"litter={litter} stale={stale} "
               f"quarantined={cache.quarantined()}")

        if corrupt is not None:
            # Slow/corrupt cache IO: truncate one entry mid-byte, the
            # next read must quarantine it (never poison a reader) and
            # the re-run must recompute and re-cache bit-identically.
            if cache.get(keys[corrupt]) is None:
                cache.put(keys[corrupt], baseline[corrupt],
                          payload=tasks[corrupt].key_payload())
            path = cache._path(keys[corrupt])
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
            poisoned = cache.get(keys[corrupt])
            # Heal with the plain victim (inline): the fault already
            # fired during the main sweep, this is the clean recompute.
            requrn = run_sweep([tasks[corrupt]], workers=1, cache=cache)
            healed = cache.get(keys[corrupt])
            ok = (poisoned is None and cache.quarantined() >= 1
                  and healed is not None
                  and record_identity(healed)
                  == record_identity(baseline[corrupt])
                  and record_identity(requrn.records[0])
                  == record_identity(baseline[corrupt]))
            _check(invariants, "quarantine_recovers", ok,
                   "corrupt entry quarantined and recomputed" if ok else
                   f"poisoned={poisoned is not None} "
                   f"quarantined={cache.quarantined()}")
            if ok:
                stats["quarantined_recovered"] = 1

        stats["wall_s"] = wall_s
        return invariants, stats


class _ServiceDriver:
    """Chaos rounds against the tiered PredictionService."""

    def __init__(self, workdir):
        self.workdir = pathlib.Path(workdir)
        self._baseline = {}

    def task(self, k):
        from repro.runtime.runner import spmm_task

        return spmm_task("products", k, max_vertices=512, seed=3)

    def baseline(self, k):
        if k not in self._baseline:
            self._baseline[k] = self.task(k).run()
        return self._baseline[k]

    def run_round(self, rnd, events):
        from repro.runtime.breaker import CLOSED, CircuitBreaker
        from repro.runtime.cache import ResultCache
        from repro.runtime.errors import QueueSaturated
        from repro.runtime.faults import ServiceFaultInjector
        from repro.runtime.service import PredictionService

        values = {e["point"]: e.get("value") for e in events}
        invariants = {}
        stats = {"injected": len(events), "rejected": 0, "lost": 0,
                 "degraded_answers": 0, "recovered_retry": 0}
        cache = ResultCache(self.workdir / f"service-r{rnd}" / "cache")
        faults = ServiceFaultInjector()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=0.3)
        service = PredictionService(
            cache, workers=1, retries=1, task_timeout_s=60.0,
            default_deadline_s=60.0, breaker=breaker, faults=faults,
        )
        started = time.perf_counter()
        try:
            # Clean tier-2 answer, then a tier-1 hit (under slow cache
            # IO when armed) — both bit-identical to the unfaulted run.
            answer = service.predict_task(self.task(4))
            fresh_ok = (answer["tier"] == 2 and
                        record_identity(answer["record"])
                        == record_identity(self.baseline(4)))
            if values.get("slow_cache_io"):
                faults.arm("slow_cache_io", values["slow_cache_io"])
            cached = service.predict_task(self.task(4))
            hit_ok = (cached["tier"] == 1 and
                      record_identity(cached["record"])
                      == record_identity(self.baseline(4)))
            faults.arm("slow_cache_io", 0)
            _check(invariants, "tier_ladder_identity",
                   fresh_ok and hit_ok,
                   f"tier2={answer['tier']} tier1={cached['tier']}")

            # Queue saturation: armed rejections surface as structured
            # backpressure, never as accepted-then-dropped work.
            saturation = int(values.get("queue_full") or 0)
            if saturation:
                faults.arm("queue_full", saturation)
            rejections = 0
            for _ in range(saturation):
                try:
                    service.predict_task(self.task(8))
                except QueueSaturated:
                    rejections += 1
            stats["rejected"] = rejections
            _check(invariants, "saturation_is_backpressure",
                   rejections == saturation,
                   f"{rejections} structured rejection(s)")

            # Crash burst: the sabotaged job fails terminally (crash,
            # retry, crash), trips the breaker, and still yields a
            # structured degraded answer.
            faults.arm("worker_crash_burst",
                       int(values.get("worker_crash_burst") or 1))
            burst = service.predict_task(self.task(16))
            stats["degraded_answers"] += 1
            _check(invariants, "crash_burst_degrades",
                   burst["degraded"] is not None
                   and burst["record"].get("source") == "model_fallback",
                   f"degraded={burst['degraded']}")
            open_now = breaker.snapshot()["state"] != CLOSED
            refused = service.predict_task(self.task(8))
            stats["degraded_answers"] += 1
            _check(invariants, "breaker_trips",
                   open_now and refused["degraded"] == "circuit_open",
                   f"state={breaker.snapshot()['state']} "
                   f"degraded={refused['degraded']}")

            # Half-open probe: after the cooldown the next simulation
            # succeeds, recovers the breaker, and is bit-identical.
            time.sleep(0.35)
            probe = service.predict_task(self.task(16))
            probe_ok = (probe["tier"] == 2 and
                        record_identity(probe["record"])
                        == record_identity(self.baseline(16)))
            if probe_ok:
                stats["recovered_retry"] += 1
            _check(invariants, "recovery_bit_identity", probe_ok,
                   f"tier={probe['tier']} degraded={probe['degraded']}")
            _check(invariants, "breaker_closes",
                   breaker.snapshot()["state"] == CLOSED,
                   f"state={breaker.snapshot()['state']}")

            # Observability: healthz reports the armed/fired counts and
            # quarantine state a chaos operator watches.
            doc = service.healthz()
            fired = doc["fault_injections"]
            _check(invariants, "faults_observable",
                   fired["worker_crash_burst"]["fired"] >= 1
                   and fired["queue_full"]["fired"] == rejections
                   and "quarantined_cache_entries" in doc,
                   json.dumps(fired, sort_keys=True))
        finally:
            drained = service.close(drain=True, timeout=30.0)
        counters = service.scheduler.stats.snapshot()
        accounted = (counters["accepted"]
                     == counters["completed"] + counters["failed"])
        stats["lost"] = 0 if accounted and drained else 1
        _check(invariants, "no_lost_work", accounted and drained,
               f"accepted={counters['accepted']} "
               f"completed={counters['completed']} "
               f"failed={counters['failed']} drained={drained}")
        stats["wall_s"] = time.perf_counter() - started
        return invariants, stats


class _MultinodeDriver:
    """Chaos rounds against the sharded multi-node assembly."""

    N_SHARDS = 4

    def __init__(self, workdir):
        self.workdir = pathlib.Path(workdir)
        self._baseline = None

    def baseline(self):
        from repro.piuma.multinode import run_multinode

        if self._baseline is None:
            estimate, _report = run_multinode(
                "products", self.N_SHARDS, max_vertices=2048,
                sweep_kwargs={"workers": 2},
            )
            self._baseline = estimate
        return self._baseline

    def run_round(self, rnd, events):
        from repro.piuma.config import PIUMAConfig
        from repro.piuma.multinode import multinode_verdict, run_multinode
        from repro.runtime.shard import ShardRecovery

        markers = self.workdir / f"multinode-r{rnd}" / "markers"
        invariants = {}
        stats = {"injected": len(events), "lost": 0, "rejected": 0,
                 "recovered_retry": 0, "recovered_hedge": 0,
                 "degraded_fallback": 0}
        plans = {}
        stragglers = set()
        dead = set()
        for event in events:
            point, target = event["point"], event.get("target")
            if point == "shard_crash":
                plans[target] = ("crash", "ok")
            elif point == "shard_dead":
                plans[target] = ("raise",)
                dead.add(target)
            elif point == "shard_straggle":
                plans[target] = ("hang", "ok")
                stragglers.add(target)

        def sabotage(tasks):
            return [
                ChaoticTask(
                    victim=task, name=f"r{rnd}-s{i}",
                    scratch=str(markers), plan=plans.get(i, ("ok",)),
                    hang_s=60.0,
                )
                for i, task in enumerate(tasks)
            ]

        recovery = ShardRecovery(
            retries=2, timeout=30.0,
            hedge_after_s=0.4 if stragglers else None,
        )
        baseline = self.baseline()
        started = time.perf_counter()
        estimate, report = run_multinode(
            "products", self.N_SHARDS, max_vertices=2048,
            sweep_kwargs={"workers": 2}, recovery=recovery,
            task_filter=sabotage,
        )
        stats["wall_s"] = time.perf_counter() - started
        stats["recovery"] = dict(report.recovery)
        stats["degraded_fallback"] = estimate.degraded_shards
        stats["recovered_retry"] = report.recovery["retries"]
        stats["recovered_hedge"] = report.recovery["hedges_won"]

        missing = [i for i, r in enumerate(report.records) if r is None]
        stats["lost"] = len(missing)
        _check(invariants, "no_lost_work", not missing,
               f"missing shard records at {missing}" if missing else
               f"{len(report.records)} shard(s) terminal")
        _check(invariants, "conservation_exact",
               estimate.conserved == baseline.conserved,
               "summed counters equal the unfaulted assembly")
        verdict = multinode_verdict(estimate, PIUMAConfig())
        if dead:
            sources_ok = all(
                estimate.shard_sources[i] == "shard_fallback"
                for i in dead
            )
            _check(invariants, "shard_fallback_provenance",
                   sources_ok and estimate.degraded_shards == len(dead),
                   f"sources={list(estimate.shard_sources)}")
            _check(invariants, "degraded_envelope_verdict",
                   verdict["verdict"] == "degraded",
                   f"verdict={verdict['verdict']} "
                   f"ratio={verdict['ratio']:.3f} "
                   f"envelope={verdict['envelope']}")
            survivors_ok = all(
                estimate.per_shard_ns[i] == baseline.per_shard_ns[i]
                for i in range(self.N_SHARDS) if i not in dead
            )
            _check(invariants, "surviving_shards_bit_identical",
                   survivors_ok,
                   f"per_shard={list(estimate.per_shard_ns)}")
        else:
            _check(invariants, "assembly_bit_identical",
                   estimate.time_ns == baseline.time_ns
                   and estimate.per_shard_ns == baseline.per_shard_ns
                   and estimate.degraded_shards == 0,
                   f"time={estimate.time_ns} vs {baseline.time_ns}")
            _check(invariants, "clean_envelope_verdict",
                   verdict["verdict"] == "ok",
                   f"verdict={verdict['verdict']}")
        # A crash elsewhere in the round can kill the straggler's
        # worker as collateral, so its rescue may come from a retry
        # rather than the hedge — any net that breaks the hang without
        # waiting it out counts.  hang_s is 60 s, so wall < 60 s proves
        # the hang was interrupted.
        live_stragglers = stragglers - dead
        if live_stragglers:
            rescued = all(
                report.records[i]["source"] == "simulation"
                for i in live_stragglers
            )
            _check(invariants, "straggler_recovered",
                   rescued and stats["wall_s"] < 60.0,
                   json.dumps(report.recovery, sort_keys=True))
        stats["verdict"] = verdict
        return invariants, stats


_DRIVERS = {
    "batch": _BatchDriver,
    "service": _ServiceDriver,
    "multinode": _MultinodeDriver,
}


# ----------------------------------------------------------------------
# Orchestrator


def run_chaos(seed=0, frontends=CHAOS_FRONTENDS, rounds=1, schedule=None,
              workdir=None, out=None):
    """Run the chaos campaign; returns the JSON verdict document.

    ``schedule`` (a :class:`ChaosSchedule` or its JSON document)
    overrides the generated one; ``workdir`` holds per-round scratch
    state (caches, manifests, attempt markers) and defaults to a fresh
    temporary directory that is removed afterwards.  The verdict is
    ``{"passed", "seed", "schedule", "results", "stats"}`` where
    ``results[frontend]`` lists one entry per round with its events,
    per-invariant outcomes, and recovery statistics.
    """
    out = out or (lambda text: None)
    if schedule is None:
        schedule = ChaosSchedule.generate(seed, frontends=frontends,
                                          rounds=rounds)
    elif isinstance(schedule, dict):
        schedule = ChaosSchedule.from_json(schedule)
    frontends = tuple(f for f in schedule.frontends if f in frontends) \
        or tuple(schedule.frontends)
    cleanup = workdir is None
    if workdir is None:
        import tempfile

        workdir = tempfile.mkdtemp(prefix="repro-chaos-")
    workdir = pathlib.Path(workdir)

    results = {}
    totals = {"injected": 0, "lost": 0, "rejected": 0,
              "recovered_retry": 0, "recovered_hedge": 0,
              "degraded_fallback": 0, "resumed": 0, "wall_s": 0.0}
    passed = True
    started = time.perf_counter()
    try:
        for frontend in frontends:
            driver = _DRIVERS[frontend](workdir)
            rows = []
            for rnd in range(schedule.rounds):
                events = schedule.for_round(frontend, rnd)
                out(f"chaos[{frontend}] round {rnd}: "
                    + (", ".join(e["point"] for e in events) or "no faults"))
                invariants, stats = driver.run_round(rnd, events)
                round_passed = all(v["passed"] for v in invariants.values())
                passed = passed and round_passed
                for name, value in stats.items():
                    if name in totals and isinstance(value, (int, float)):
                        totals[name] += value
                for name, outcome in invariants.items():
                    if not outcome["passed"]:
                        out(f"chaos[{frontend}] round {rnd} FAILED "
                            f"{name}: {outcome['detail']}")
                rows.append({
                    "round": rnd,
                    "events": events,
                    "invariants": invariants,
                    "stats": stats,
                    "passed": round_passed,
                })
            results[frontend] = rows
    finally:
        if cleanup:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)
    totals["wall_s"] = time.perf_counter() - started
    return {
        "passed": passed,
        "seed": schedule.seed,
        "frontends": list(frontends),
        "rounds": schedule.rounds,
        "schedule": schedule.to_json(),
        "results": results,
        "stats": totals,
    }
