"""Sweep checkpoint manifests: incremental flush, crash-safe resume.

The content cache already memoizes individual points, but it can be
disabled, relocated, or cleared — and a characterization campaign wants
an explicit record of *this sweep's* progress that survives a killed
parent process.  A :class:`SweepCheckpoint` is an append-only JSONL
manifest under the cache directory: the runner flushes every
successfully simulated record as one fsync'd line, so after a SIGKILL
the next ``repro sweep --resume`` reloads the manifest and recomputes
only the unfinished points.

Lines are keyed by the same content hash the cache uses, so a manifest
never resurrects records for a point whose config changed.  A torn
final line (the writer died mid-append) parses as garbage and is
skipped — resume degrades to recomputing that one point.  Failed and
``model_fallback`` records are deliberately *not* flushed: a resumed
sweep should retry them against a healthy system rather than trust a
degraded result.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from repro.runtime.cache import cache_key, default_cache_dir

#: Salt for the manifest filename hash — bump if the manifest layout
#: changes incompatibly.
MANIFEST_VERSION = "sweep-manifest-v1"


class SweepCheckpoint:
    """Append-only progress manifest of one sweep.

    Parameters
    ----------
    path:
        Manifest file location; use :meth:`for_tasks` to derive a
        content-addressed path so the same task list always maps to the
        same manifest.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)

    @classmethod
    def for_tasks(cls, tasks, directory=None):
        """Manifest for a task list, keyed by the tasks' identities.

        The filename hashes every task's ``key_payload()``, so re-running
        the same grid resolves to the same manifest while any change to
        the grid (or to a config default) starts a fresh one.
        """
        directory = pathlib.Path(directory or default_cache_dir())
        ident = cache_key(
            [task.key_payload() for task in tasks], salt=MANIFEST_VERSION
        )[:16]
        return cls(directory / f"sweep-{ident}.manifest.jsonl")

    def exists(self):
        return self.path.is_file()

    def load(self):
        """Return ``{key: record}`` for every parseable manifest line.

        Unreadable files and corrupt lines (torn tail after a kill) are
        silently treated as absent — resume then recomputes those points.
        """
        records = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            try:
                entry = json.loads(line)
                records[entry["key"]] = entry["record"]
            except (ValueError, KeyError, TypeError):
                continue
        return records

    def flush(self, key, record):
        """Append one completed record, durably (fsync per line).

        Sweep points cost seconds of simulation each; one fsync per
        point is noise next to that and makes the manifest survive a
        SIGKILL'd parent.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "record": record}, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def compact(self):
        """Rewrite the manifest with one line per key (housekeeping).

        A long campaign appends a line per completed point per attempt
        — resumed sweeps re-flush records that were loaded from the
        manifest, so the file grows with every interruption while its
        key set does not.  Compaction loads the surviving ``{key:
        record}`` map (last line per key wins, torn lines dropped) and
        atomically replaces the file via a same-directory temp file +
        ``os.replace``: a crash mid-compaction leaves either the old
        manifest or the new one, never a torn mix — the same guarantee
        the cache's atomic writes give.

        Returns the number of records kept (0 for a missing or empty
        manifest, which is left untouched).
        """
        records = self.load()
        if not records:
            return 0
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for key in sorted(records):
                    handle.write(json.dumps(
                        {"key": key, "record": records[key]},
                        sort_keys=True,
                    ) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
        return len(records)

    def touch(self):
        """Mark the manifest as belonging to a *live* sweep (mtime now).

        A resumed sweep may restore every point from the manifest and
        never append another line, so the file's mtime could stay weeks
        old while the sweep is actively trusting it — exactly the
        window in which :func:`gc_manifests` would collect it.  The
        runner calls this once at sweep start; returns True if a
        manifest file existed to touch.
        """
        try:
            os.utime(self.path, None)
            return True
        except OSError:
            return False

    def discard(self):
        """Delete the manifest (sweep completed); returns True if removed."""
        try:
            self.path.unlink()
            return True
        except OSError:
            return False

    def __len__(self):
        return len(self.load())


def gc_manifests(directory=None, max_age_days=14):
    """Delete sweep manifests not touched in ``max_age_days`` days.

    Completed sweeps discard their manifest, but abandoned ones (a
    killed campaign never resumed, a grid that changed under the
    operator) leave orphans behind forever — the manifest filename is
    content-addressed, so nothing ever maps to them again.  Called by
    ``repro sweep`` as routine housekeeping; errors are swallowed (a
    vanished or unreadable file is someone else's GC racing ours).

    Liveness is judged by *last-append* mtime: every ``flush`` rewrites
    it, and a sweep that resumes without appending (all points already
    in the manifest) refreshes it via :meth:`SweepCheckpoint.touch` at
    start — so a manifest a running sweep depends on is never eligible.
    The age is re-checked immediately before the unlink to shrink the
    window against a writer that appends between the scan and the
    delete.

    Returns the number of manifests removed.
    """
    directory = pathlib.Path(directory or default_cache_dir())
    cutoff = time.time() - max_age_days * 86400.0
    removed = 0
    try:
        candidates = sorted(directory.glob("sweep-*.manifest.jsonl"))
    except OSError:
        return 0
    for path in candidates:
        try:
            # Stat immediately before the unlink (not once at scan
            # time): a live sweep that appends or touches between the
            # directory scan and this file's turn keeps its manifest.
            if path.stat().st_mtime >= cutoff:
                continue
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed
