"""Sweep checkpoint manifests: incremental flush, crash-safe resume.

The content cache already memoizes individual points, but it can be
disabled, relocated, or cleared — and a characterization campaign wants
an explicit record of *this sweep's* progress that survives a killed
parent process.  A :class:`SweepCheckpoint` is an append-only JSONL
manifest under the cache directory: the runner flushes every
successfully simulated record as one fsync'd line, so after a SIGKILL
the next ``repro sweep --resume`` reloads the manifest and recomputes
only the unfinished points.

Lines are keyed by the same content hash the cache uses, so a manifest
never resurrects records for a point whose config changed.  A torn
final line (the writer died mid-append) parses as garbage and is
skipped — resume degrades to recomputing that one point.  Failed and
``model_fallback`` records are deliberately *not* flushed: a resumed
sweep should retry them against a healthy system rather than trust a
degraded result.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.runtime.cache import cache_key, default_cache_dir

#: Salt for the manifest filename hash — bump if the manifest layout
#: changes incompatibly.
MANIFEST_VERSION = "sweep-manifest-v1"


class SweepCheckpoint:
    """Append-only progress manifest of one sweep.

    Parameters
    ----------
    path:
        Manifest file location; use :meth:`for_tasks` to derive a
        content-addressed path so the same task list always maps to the
        same manifest.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)

    @classmethod
    def for_tasks(cls, tasks, directory=None):
        """Manifest for a task list, keyed by the tasks' identities.

        The filename hashes every task's ``key_payload()``, so re-running
        the same grid resolves to the same manifest while any change to
        the grid (or to a config default) starts a fresh one.
        """
        directory = pathlib.Path(directory or default_cache_dir())
        ident = cache_key(
            [task.key_payload() for task in tasks], salt=MANIFEST_VERSION
        )[:16]
        return cls(directory / f"sweep-{ident}.manifest.jsonl")

    def exists(self):
        return self.path.is_file()

    def load(self):
        """Return ``{key: record}`` for every parseable manifest line.

        Unreadable files and corrupt lines (torn tail after a kill) are
        silently treated as absent — resume then recomputes those points.
        """
        records = {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return records
        for line in lines:
            try:
                entry = json.loads(line)
                records[entry["key"]] = entry["record"]
            except (ValueError, KeyError, TypeError):
                continue
        return records

    def flush(self, key, record):
        """Append one completed record, durably (fsync per line).

        Sweep points cost seconds of simulation each; one fsync per
        point is noise next to that and makes the manifest survive a
        SIGKILL'd parent.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps({"key": key, "record": record}, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def discard(self):
        """Delete the manifest (sweep completed); returns True if removed."""
        try:
            self.path.unlink()
            return True
        except OSError:
            return False

    def __len__(self):
        return len(self.load())
