"""Content-addressed on-disk result cache for sweep points.

Every sweep point the runner executes is described by a JSON-able
payload: the *full* set of :class:`~repro.piuma.config.PIUMAConfig`
dataclass fields (so a changed default invalidates old entries), the
dataset spec with its down-scaling parameters, the kernel name, and the
sweep point itself (embedding dim, window).  The cache key is the
SHA-256 of that payload's canonical JSON plus a code-version salt —
bump :data:`CODE_VERSION` whenever simulator semantics change and every
stale record silently becomes a miss.

Records are single JSON files under ``benchmarks/out/.cache/`` (or
``$REPRO_CACHE_DIR``), written atomically, readable with any text tool.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from dataclasses import dataclass

#: Salt mixed into every cache key.  Bump when the simulator, kernels,
#: or record schema change meaning: old entries then miss instead of
#: serving stale numbers.
#: v2: records carry a ``"source"`` provenance field and configs grew
#: watchdog ceilings.
#: v3: records carry host-performance fields (``events``,
#: ``host_wall_s``, ``events_per_s``) and configs grew
#: ``engine_fast_path``.
#: v4: configs grew ``degradation`` (the deterministic hardware-fault
#: spec, serialized into the key payload like every other field) and
#: records run under a non-trivial spec carry a ``"degradation"``
#: provenance field.
#: v5: configs grew ``scheduler`` (the event-queue backend) and records
#: carry a ``"scheduler"`` provenance field.
CODE_VERSION = "runtime-v5"

#: Memoized cwd-fallback directory (installed-package use).  Resolved
#: once so every cache in the process agrees on one directory even if
#: the working directory changes later, and the accompanying warning
#: fires once per process.
_FALLBACK_DIR = None


def default_cache_dir():
    """Resolve the cache directory.

    ``$REPRO_CACHE_DIR`` is the supported override and wins
    unconditionally (checked on every call, so tests and wrappers can
    redirect per-invocation); otherwise ``benchmarks/out/.cache`` under
    the repository root (derived from the source tree layout).  When
    that probe fails — installed-package use, no source tree — the
    first call resolves ``$PWD/benchmarks/out/.cache`` once, warns
    which directory was chosen, and every later call returns the same
    directory regardless of subsequent ``chdir``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "out" / ".cache"
    global _FALLBACK_DIR
    if _FALLBACK_DIR is None:
        _FALLBACK_DIR = pathlib.Path.cwd() / "benchmarks" / "out" / ".cache"
        warnings.warn(
            "no repository source tree found; result cache falls back "
            f"to {_FALLBACK_DIR} — set $REPRO_CACHE_DIR to choose a "
            "cache directory explicitly",
            stacklevel=2,
        )
    return _FALLBACK_DIR


def cache_key(payload, salt=CODE_VERSION):
    """Stable content hash of a JSON-able payload.

    Canonical form: sorted keys, no whitespace, so logically equal
    payloads built in different orders hash identically.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canon.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self):
        return (f"{self.hits} hit(s), {self.misses} miss(es) "
                f"({self.hit_rate:.0%} hit rate)")


class ResultCache:
    """Content-addressed JSON record store.

    Parameters
    ----------
    directory:
        Where records live; default :func:`default_cache_dir`.
    enabled:
        ``False`` turns every lookup into a miss and every store into a
        no-op (the ``--no-cache`` path) while keeping the call sites
        unconditional.
    salt:
        Code-version salt mixed into keys; override in tests to prove
        invalidation.
    """

    def __init__(self, directory=None, enabled=True, salt=CODE_VERSION):
        self.directory = pathlib.Path(directory or default_cache_dir())
        self.enabled = enabled
        self.salt = salt
        self.stats = CacheStats()

    def _path(self, key):
        return self.directory / f"{key}.json"

    def key_for(self, payload):
        """Key of a payload under this cache's salt."""
        return cache_key(payload, salt=self.salt)

    def get(self, key):
        """Return the cached record for ``key`` or ``None`` on a miss.

        Corrupt or unreadable entries count as misses — the runner will
        recompute and overwrite them.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            record = entry["record"]
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, key, record, payload=None):
        """Store ``record`` under ``key`` (atomic write-then-rename).

        ``payload`` is stored alongside for debuggability — a cache file
        is self-describing about which sweep point produced it.

        A crash between the temp write and the rename strands a
        ``<key>.tmp.<pid>`` file; each ``put`` opportunistically sweeps
        stale temps left for *its* key by earlier (dead) processes, and
        :meth:`clear` sweeps all of them.
        """
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"salt": self.salt, "key": key, "payload": payload,
                 "record": record}
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        for stale in self.directory.glob(f"{key}.tmp.*"):
            if stale != tmp:
                try:
                    stale.unlink()
                except OSError:
                    pass
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            # Don't leave this process's own half-written temp behind.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def clear(self):
        """Delete every cached record; returns how many were removed.

        Also sweeps stranded ``*.tmp.*`` files from crashed writers —
        they are not counted (they never became records) but no longer
        accumulate forever either.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for path in self.directory.glob("*.tmp.*"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self):
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
