"""Content-addressed on-disk result cache for sweep points.

Every sweep point the runner executes is described by a JSON-able
payload: the *full* set of :class:`~repro.piuma.config.PIUMAConfig`
dataclass fields (so a changed default invalidates old entries), the
dataset spec with its down-scaling parameters, the kernel name, and the
sweep point itself (embedding dim, window).  The cache key is the
SHA-256 of that payload's canonical JSON plus a code-version salt —
bump :data:`CODE_VERSION` whenever simulator semantics change and every
stale record silently becomes a miss.

Records are single JSON files under ``benchmarks/out/.cache/`` (or
``$REPRO_CACHE_DIR``), written atomically, readable with any text tool.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
import warnings
from dataclasses import dataclass

#: Salt mixed into every cache key.  Bump when the simulator, kernels,
#: or record schema change meaning: old entries then miss instead of
#: serving stale numbers.
#: v2: records carry a ``"source"`` provenance field and configs grew
#: watchdog ceilings.
#: v3: records carry host-performance fields (``events``,
#: ``host_wall_s``, ``events_per_s``) and configs grew
#: ``engine_fast_path``.
#: v4: configs grew ``degradation`` (the deterministic hardware-fault
#: spec, serialized into the key payload like every other field) and
#: records run under a non-trivial spec carry a ``"degradation"``
#: provenance field.
#: v5: configs grew ``scheduler`` (the event-queue backend) and records
#: carry a ``"scheduler"`` provenance field.
#: v6: configs grew ``engine`` (the unified main-loop selector) and
#: records carry an ``"engine"`` provenance field.
CODE_VERSION = "runtime-v6"

#: Memoized cwd-fallback directory (installed-package use).  Resolved
#: once so every cache in the process agrees on one directory even if
#: the working directory changes later, and the accompanying warning
#: fires once per process.
_FALLBACK_DIR = None


def default_cache_dir():
    """Resolve the cache directory.

    ``$REPRO_CACHE_DIR`` is the supported override and wins
    unconditionally (checked on every call, so tests and wrappers can
    redirect per-invocation); otherwise ``benchmarks/out/.cache`` under
    the repository root (derived from the source tree layout).  When
    that probe fails — installed-package use, no source tree — the
    first call resolves ``$PWD/benchmarks/out/.cache`` once, warns
    which directory was chosen, and every later call returns the same
    directory regardless of subsequent ``chdir``.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    root = pathlib.Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "benchmarks" / "out" / ".cache"
    global _FALLBACK_DIR
    if _FALLBACK_DIR is None:
        _FALLBACK_DIR = pathlib.Path.cwd() / "benchmarks" / "out" / ".cache"
        warnings.warn(
            "no repository source tree found; result cache falls back "
            f"to {_FALLBACK_DIR} — set $REPRO_CACHE_DIR to choose a "
            "cache directory explicitly",
            stacklevel=2,
        )
    return _FALLBACK_DIR


def cache_key(payload, salt=CODE_VERSION):
    """Stable content hash of a JSON-able payload.

    Canonical form: sorted keys, no whitespace, so logically equal
    payloads built in different orders hash identically.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\n")
    digest.update(canon.encode("utf-8"))
    return digest.hexdigest()


#: Filename of the eviction manifest (deliberately *not* ``*.json`` so
#: record globs, ``__len__``, and ``clear`` never mistake it for an
#: entry).
MANIFEST_NAME = "cache.manifest"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Entries found corrupt (truncated/empty/garbage JSON) and
    #: quarantined to ``*.corrupt`` instead of served.
    corrupt: int = 0
    #: Entries evicted by the ``max_bytes`` LRU budget.
    evictions: int = 0

    @property
    def lookups(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self):
        text = (f"{self.hits} hit(s), {self.misses} miss(es) "
                f"({self.hit_rate:.0%} hit rate)")
        if self.corrupt:
            text += f"; {self.corrupt} corrupt entr(ies) quarantined"
        if self.evictions:
            text += f"; {self.evictions} evicted"
        return text


class ResultCache:
    """Content-addressed JSON record store.

    Parameters
    ----------
    directory:
        Where records live; default :func:`default_cache_dir`.
    enabled:
        ``False`` turns every lookup into a miss and every store into a
        no-op (the ``--no-cache`` path) while keeping the call sites
        unconditional.
    salt:
        Code-version salt mixed into keys; override in tests to prove
        invalidation.
    max_bytes:
        Size budget for the entry files.  ``None`` (default) disables
        eviction; otherwise every :meth:`put` opportunistically evicts
        least-recently-used entries (hit recency is tracked by touching
        the entry's mtime on every :meth:`get` hit) until the directory
        fits, sparing the entry just written.  Multi-process safe: each
        entry is its own atomically written file, so concurrent readers
        of an entry being evicted see either a hit or a clean miss,
        never a torn record.
    """

    def __init__(self, directory=None, enabled=True, salt=CODE_VERSION,
                 max_bytes=None):
        self.directory = pathlib.Path(directory or default_cache_dir())
        self.enabled = enabled
        self.salt = salt
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._corrupt_warned = False

    def _path(self, key):
        return self.directory / f"{key}.json"

    @property
    def manifest_path(self):
        return self.directory / MANIFEST_NAME

    def key_for(self, payload):
        """Key of a payload under this cache's salt."""
        return cache_key(payload, salt=self.salt)

    def _quarantine(self, path, reason):
        """Move a corrupt entry aside so it can never poison a reader.

        The rename is atomic; under a concurrent-reader race the loser
        finds the file already gone and does nothing.  The ``.corrupt``
        file is kept (not deleted) so an operator can post-mortem what
        a crashed or interrupted writer left behind (``repro cache
        stats`` counts them, ``repro cache clear`` sweeps them).
        """
        quarantined = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantined)
        except OSError:
            return
        self.stats.corrupt += 1
        if not self._corrupt_warned:
            self._corrupt_warned = True
            warnings.warn(
                f"quarantined corrupt cache entry {path.name} -> "
                f"{quarantined.name} ({reason}); treating as a miss "
                "(further quarantines this instance will be silent)",
                RuntimeWarning,
                stacklevel=3,
            )

    def get(self, key):
        """Return the cached record for ``key`` or ``None`` on a miss.

        A corrupt entry (truncated or empty file, garbage JSON, missing
        ``record`` field — e.g. a writer killed mid-``os.replace`` on a
        filesystem without atomic rename, or plain disk corruption) is
        a miss that *quarantines* the file to ``<name>.corrupt`` so it
        cannot poison this or any other process again; the runner will
        recompute and overwrite it.  A hit refreshes the entry's mtime,
        which is the LRU recency signal for ``max_bytes`` eviction.
        """
        if not self.enabled:
            self.stats.misses += 1
            return None
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except OSError:
            # Unreadable but present (permissions, I/O error) — the
            # file may be fine; miss without quarantining.
            self.stats.misses += 1
            return None
        except ValueError as error:
            self._quarantine(path, f"unparseable JSON: {error}")
            self.stats.misses += 1
            return None
        try:
            record = entry["record"]
        except (KeyError, TypeError):
            self._quarantine(path, "entry has no 'record' field")
            self.stats.misses += 1
            return None
        try:
            os.utime(path, None)
        except OSError:
            pass
        self.stats.hits += 1
        return record

    def put(self, key, record, payload=None):
        """Store ``record`` under ``key`` (atomic write-then-rename).

        ``payload`` is stored alongside for debuggability — a cache file
        is self-describing about which sweep point produced it.

        A crash between the temp write and the rename strands a
        ``<key>.tmp.<pid>`` file; each ``put`` opportunistically sweeps
        stale temps left for *its* key by earlier (dead) processes, and
        :meth:`clear` sweeps all of them.
        """
        if not self.enabled:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = {"salt": self.salt, "key": key, "payload": payload,
                 "record": record}
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        for stale in self.directory.glob(f"{key}.tmp.*"):
            if stale != tmp:
                try:
                    stale.unlink()
                except OSError:
                    pass
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            # Don't leave this process's own half-written temp behind.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats.writes += 1
        if self.max_bytes is not None:
            # Opportunistic LRU housekeeping on the write path (reads
            # stay eviction-free); the entry just written is spared so
            # a tiny budget cannot evict its own record.
            self.gc(protect=key)

    def entries(self):
        """``[(key, bytes, mtime)]`` of every record file, LRU first.

        Snapshot semantics: entries vanishing mid-scan (a concurrent
        eviction or ``clear``) are skipped, not errors.
        """
        found = []
        if not self.directory.is_dir():
            return found
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            found.append((path.stem, stat.st_size, stat.st_mtime))
        found.sort(key=lambda item: (item[2], item[0]))
        return found

    def total_bytes(self):
        """Bytes currently held by record files."""
        return sum(size for _key, size, _mtime in self.entries())

    def quarantined(self):
        """How many ``*.corrupt`` files the directory holds."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.corrupt"))

    def gc(self, max_bytes=None, protect=None):
        """Evict least-recently-used entries beyond the size budget.

        ``max_bytes`` defaults to the instance budget; ``protect``
        names one key never evicted (the record a ``put`` just wrote).
        After any eviction the summary manifest is rewritten atomically
        (temp file + ``os.replace``), so a crash mid-GC leaves either
        the old manifest or the new one — and since each entry is its
        own file, a half-finished GC merely leaves the cache slightly
        over budget, never corrupt.

        Returns the number of entries evicted.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        if budget is None:
            return 0
        entries = self.entries()
        total = sum(size for _key, size, _mtime in entries)
        evicted = 0
        for key, size, _mtime in entries:
            if total <= budget:
                break
            if key == protect:
                continue
            try:
                self._path(key).unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            self._write_manifest(budget, total, len(entries) - evicted,
                                 evicted)
        return evicted

    def _write_manifest(self, budget, total, kept, evicted):
        """Atomically record the last eviction pass (observability).

        Correctness never depends on the manifest — atomic per-entry
        files carry that — so a failed manifest write degrades to
        "no summary" with no further consequence.
        """
        manifest = {
            "version": 1,
            "max_bytes": budget,
            "bytes": total,
            "entries": kept,
            "evicted_last_gc": evicted,
            "generated_at": time.time(),
        }
        tmp = self.manifest_path.with_name(
            MANIFEST_NAME + f".tmp.{os.getpid()}"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
            os.replace(tmp, self.manifest_path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass

    def read_manifest(self):
        """The last GC summary, or ``None`` if absent/corrupt."""
        try:
            return json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def clear(self):
        """Delete every cached record; returns how many were removed.

        Also sweeps stranded ``*.tmp.*`` files from crashed writers,
        quarantined ``*.corrupt`` entries, and the eviction manifest —
        none counted (they are not records) but none left to
        accumulate forever either.
        """
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for pattern in ("*.tmp.*", "*.corrupt"):
                for path in self.directory.glob(pattern):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            try:
                self.manifest_path.unlink()
            except OSError:
                pass
        return removed

    def __len__(self):
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))
