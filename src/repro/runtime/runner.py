"""Process-parallel, fault-tolerant sweep runner over the DES.

Every figure of the paper is a sweep: a grid of (config, dataset,
kernel, embedding-dim) points, each an independent pure function of its
inputs.  The runner exploits exactly that — points are described by
picklable :class:`SpMMTask` records, fanned across a
``ProcessPoolExecutor``, memoized through the content-addressed
:mod:`repro.runtime.cache`, and returned **in submission order** no
matter which worker finished first, so downstream charts and
assertions never depend on scheduling.

Failures are contained, not fatal (see :mod:`repro.runtime.errors`):

* per-task wall-clock **timeouts** (hung workers are killed, the pool
  respawned);
* bounded **retries** with exponential backoff and deterministic
  jitter;
* automatic pool **respawn** on ``BrokenProcessPool``, re-submitting
  only the unfinished points;
* an ``on_error`` **policy** once retries are exhausted — ``"raise"``
  (abort the sweep), ``"skip"`` (record a structured failure entry),
  or ``"fallback"`` (degrade the point to the analytical Equation 5
  model, flagged ``"source": "model_fallback"``);
* incremental **checkpointing** through
  :class:`~repro.runtime.checkpoint.SweepCheckpoint`, so a killed
  sweep resumes from its partial results.

Workers materialize graphs themselves (memoized per process), so only
small task descriptors and JSON records cross the process boundary.
"""

from __future__ import annotations

import heapq
import os
import random
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field, replace

from repro.runtime.cache import cache_key
from repro.runtime.errors import (
    TaskTimeout,
    WorkerCrash,
    failure_record,
    wrap_failure,
)
from repro.runtime.jobs import ExecPool, backoff_delay
from repro.runtime.progress import ProgressTracker

#: Valid ``on_error`` policies of :func:`run_sweep`.
ON_ERROR_POLICIES = ("raise", "skip", "fallback")

#: Per-process memo of materialized graphs: tasks reference datasets by
#: (name, max_vertices, seed), so a worker builds each graph once and
#: reuses it for every point it executes.
_GRAPH_MEMO = {}


def _materialized(dataset, max_vertices, seed):
    from repro.graphs.datasets import get_dataset

    key = (dataset, max_vertices, seed)
    if key not in _GRAPH_MEMO:
        _GRAPH_MEMO[key] = get_dataset(dataset).materialize(
            max_vertices=max_vertices, seed=seed
        )
    return _GRAPH_MEMO[key]


@dataclass(frozen=True)
class SpMMTask:
    """One picklable sweep point: simulate one SpMM kernel invocation.

    Attributes
    ----------
    dataset, max_vertices, seed:
        Dataset spec reference and down-scaling parameters — the graph
        is materialized (and memoized) inside the worker process.
    embedding_dim, kernel, window_edges:
        Kernel invocation parameters (see
        :func:`repro.piuma.simulate_spmm`); ``window_edges`` of ``None``
        picks the automatic window.
    overrides:
        Sorted ``(field, value)`` pairs applied on top of the default
        :class:`~repro.piuma.config.PIUMAConfig` — a plain tuple so the
        task stays hashable and canonically ordered.  The pair shape is
        enforced at construction.
    """

    dataset: str
    embedding_dim: int
    kernel: str = "dma"
    max_vertices: int = 16384
    seed: int = 0
    window_edges: int | None = None
    overrides: tuple[tuple[str, object], ...] = ()

    def __post_init__(self):
        for pair in self.overrides:
            if (
                not isinstance(pair, tuple)
                or len(pair) != 2
                or not isinstance(pair[0], str)
            ):
                raise TypeError(
                    "overrides must be (field, value) pairs of PIUMAConfig "
                    f"fields, got {pair!r}"
                )

    def config(self):
        from repro.piuma.config import PIUMAConfig

        return PIUMAConfig(**dict(self.overrides))

    def with_check_level(self, level):
        """Copy of this task running under the invariant sanitizer.

        Merges ``check_level=level`` into the override tuple (replacing
        any existing pair, keeping canonical order).  The config's
        ``check_level`` participates in the cache key like every other
        field, so sanitized and unsanitized records never alias.
        """
        merged = dict(self.overrides)
        merged["check_level"] = level
        return replace(self, overrides=tuple(sorted(merged.items())))

    def with_degradation(self, spec):
        """Copy of this task running on a degraded fabric.

        Merges ``degradation=spec`` into the override tuple (``None``
        restores the healthy fabric).  The spec is a frozen
        all-primitive dataclass serialized into ``key_payload`` with
        the rest of the config, so healthy and degraded records can
        never collide in the cache or the checkpoint manifest.
        """
        merged = dict(self.overrides)
        merged["degradation"] = spec
        return replace(self, overrides=tuple(sorted(merged.items())))

    def with_scheduler(self, name):
        """Copy of this task running on a specific scheduler backend.

        Merges ``scheduler=name`` (``"heap"`` or ``"calendar"``) into
        the override tuple.  Like every config field it participates in
        the cache key, so records from different backends never alias —
        and since backends are bit-identical, a mixed cache stays
        semantically consistent anyway.
        """
        merged = dict(self.overrides)
        merged["scheduler"] = name
        return replace(self, overrides=tuple(sorted(merged.items())))

    def with_engine(self, name):
        """Copy of this task running on a specific DES main loop.

        Merges ``engine=name`` (``"fast"``, ``"calendar"``,
        ``"vector"``, ``"reference"``, or ``"auto"``) into the override
        tuple.  Engines are bit-identical in results, so this only
        moves host wall-clock; like every config field it participates
        in the cache key, and the record's ``"engine"`` provenance
        field says which loop measured it.
        """
        merged = dict(self.overrides)
        merged["engine"] = name
        return replace(self, overrides=tuple(sorted(merged.items())))

    def label(self):
        knobs = " ".join(f"{k}={v}" for k, v in self.overrides)
        return (f"{self.dataset}/{self.kernel} K={self.embedding_dim}"
                + (f" {knobs}" if knobs else ""))

    def key_payload(self):
        """JSON-able identity of this point for the content cache.

        Includes *every* config dataclass field (not just the swept
        overrides) and the full dataset spec, so changing a default in
        :class:`PIUMAConfig` or a Table-I count invalidates old records.
        """
        from repro.graphs.datasets import get_dataset

        return {
            "dataset": asdict(get_dataset(self.dataset)),
            "max_vertices": self.max_vertices,
            "seed": self.seed,
            "config": asdict(self.config()),
            "kernel": self.kernel,
            "embedding_dim": self.embedding_dim,
            "window_edges": self.window_edges,
        }

    def run(self):
        """Execute the point; returns a plain-JSON record.

        The record carries both the DES outcome and the matching
        Equation 5 model numbers (cheap to compute, and every consumer
        — calibration, Fig 5, the CLI — wants the ratio).
        """
        from repro.piuma import simulate_spmm, spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        result = simulate_spmm(
            adj, self.embedding_dim, config, kernel=self.kernel,
            window_edges=self.window_edges,
        )
        model = spmm_model(adj.n_rows, adj.nnz, self.embedding_dim, config)
        record = {
            "n_vertices": int(adj.n_rows),
            "n_edges": int(adj.nnz),
            "embedding_dim": int(self.embedding_dim),
            "kernel": self.kernel,
            "gflops": float(result.gflops),
            "projected_time_ns": float(result.projected_time_ns),
            "sim_time_ns": float(result.sim_time_ns),
            "window_edges": int(result.window_edges),
            "total_edges": int(result.total_edges),
            "memory_utilization": float(result.memory_utilization),
            "achieved_bandwidth": float(result.achieved_bandwidth),
            "model_gflops": float(model.gflops),
            "model_time_ns": float(model.time_ns),
            "efficiency": (float(result.gflops / model.gflops)
                           if model.gflops > 0 else 0.0),
            "events": int(result.events),
            "host_wall_s": float(result.host_wall_s),
            "events_per_s": float(result.events_per_s),
            "tag_stats": {
                tag: {"count": int(s.count), "bytes": float(s.bytes),
                      "wait_ns": float(s.wait_ns)}
                for tag, s in sorted(result.tag_stats.items())
            },
            "source": "simulation",
            # Provenance: which event-scheduler backend produced the
            # record.  Backends are bit-identical, but a throughput
            # number (events_per_s) is only comparable within one
            # backend, so the record says which one it measured.
            "scheduler": config.scheduler,
            # Same story one level up: the resolved DES main loop
            # (fast / calendar / vector / reference) that produced the
            # record's host-throughput numbers.
            "engine": config.resolved_engine,
        }
        if config.degradation is not None:
            # Provenance next to "source": a record measured on a
            # degraded fabric must say so wherever it travels (cache,
            # checkpoint manifest, figures, CLI tables).
            record["degradation"] = asdict(config.degradation)
        return record

    def fallback_record(self, error=None):
        """Analytical stand-in record for a point whose DES run failed.

        Carries valid Equation 5 numbers under the same schema as
        :meth:`run`, flagged ``"source": "model_fallback"`` (with the
        triggering error payload) so calibration and figures can
        distinguish degraded points from simulated ones.
        """
        from repro.piuma import spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        model = spmm_model(
            adj.n_rows, adj.nnz, self.embedding_dim, config
        )
        record = {
            "n_vertices": int(adj.n_rows),
            "n_edges": int(adj.nnz),
            "embedding_dim": int(self.embedding_dim),
            "kernel": self.kernel,
            "gflops": float(model.gflops),
            "projected_time_ns": float(model.time_ns),
            "sim_time_ns": 0.0,
            "window_edges": 0,
            "total_edges": int(adj.nnz),
            "memory_utilization": 0.0,
            "achieved_bandwidth": 0.0,
            "model_gflops": float(model.gflops),
            "model_time_ns": float(model.time_ns),
            "efficiency": 1.0,
            "events": 0,
            "host_wall_s": 0.0,
            "events_per_s": 0.0,
            "tag_stats": {},
            "source": "model_fallback",
            "scheduler": config.scheduler,
            "engine": config.resolved_engine,
        }
        if config.degradation is not None:
            record["degradation"] = asdict(config.degradation)
        if error is not None:
            record["error"] = error.payload()
        return record


def _execute_task(task):
    """Module-level trampoline so tasks pickle into worker processes."""
    return task.run()


def spmm_task(dataset, embedding_dim, kernel="dma", max_vertices=16384,
              seed=0, window_edges=None, **config_overrides):
    """Build an :class:`SpMMTask` from keyword config overrides.

    ``spmm_task("products", 256, n_cores=8, dram_latency_ns=90)`` — the
    overrides are canonically sorted so logically equal points always
    produce the same task (and the same cache key).
    """
    return SpMMTask(
        dataset=dataset,
        embedding_dim=embedding_dim,
        kernel=kernel,
        max_vertices=max_vertices,
        seed=seed,
        window_edges=window_edges,
        overrides=tuple(sorted(config_overrides.items())),
    )


def default_workers():
    """Worker count: ``$REPRO_SWEEP_WORKERS`` or ``min(4, cpus)``.

    A non-integer environment value warns and falls back to the default
    rather than crashing the sweep before it starts.
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_SWEEP_WORKERS={env!r}; "
                "using the default worker count",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` call.

    ``records`` is ordered exactly like the submitted task list;
    ``failures`` holds the error payloads of points that ended degraded
    (``"skip"``/``"fallback"`` policies), and ``resumed`` counts points
    restored from a checkpoint manifest.
    """

    tasks: list
    records: list
    cache_hits: int
    cache_misses: int
    workers: int
    wall_s: float
    failures: list = field(default_factory=list)
    resumed: int = 0

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def summary(self):
        text = (f"{len(self.records)} point(s) in {self.wall_s:.2f}s "
                f"({self.cache_hits} cached, {self.cache_misses} computed, "
                f"{self.workers} worker(s))")
        if self.resumed:
            text += f"; {self.resumed} resumed from checkpoint"
        if self.failures:
            text += f"; {len(self.failures)} degraded/failed"
        return text


def run_sweep(tasks, workers=None, cache=None, progress=None, *,
              timeout=None, retries=0, backoff_s=0.25, backoff_cap_s=8.0,
              jitter=0.25, on_error="raise", checkpoint=None, resume=False,
              check_level=None, degradation=None, scheduler=None,
              engine=None, sleep=time.sleep):
    """Run every task; returns a :class:`SweepReport`.

    Parameters
    ----------
    tasks:
        Iterable of :class:`SpMMTask` (or any picklable object with
        ``run()``, ``label()`` and ``key_payload()``; an optional
        ``fallback_record(error)`` enables the ``"fallback"`` policy).
    workers:
        Process count; ``None`` uses :func:`default_workers`, ``1``
        runs inline with no pool at all (timeouts then cannot be
        enforced — there is no worker to kill).
    cache:
        :class:`~repro.runtime.cache.ResultCache`; ``None`` disables
        caching.  Hits are resolved in the parent before any process
        spawns, so a fully warm sweep never forks.  A failing cache
        write (full disk, read-only directory) warns and continues.
    progress:
        :class:`~repro.runtime.progress.ProgressTracker`; ``None``
        creates a silent one.
    timeout:
        Per-task wall-clock budget in seconds (measured from the
        moment the point enters a worker; submission is windowed to the
        pool width so queueing does not count).  On expiry the worker
        processes are killed, the pool respawned, and the point charged
        a :class:`TaskTimeout` attempt; in-flight innocents are
        re-submitted without being charged.
    retries:
        Extra attempts per point after a retryable failure (timeout,
        worker crash, generic exception).  ``SimulationDiverged`` is
        deterministic and never retried.
    backoff_s / backoff_cap_s / jitter:
        Retry delay: ``min(cap, backoff * 2**(attempt-1))`` plus up to
        ``jitter`` of itself (deterministic RNG).
    on_error:
        Policy once attempts are exhausted: ``"raise"`` aborts the
        sweep with the structured error, ``"skip"`` stores a
        ``"source": "failed"`` record, ``"fallback"`` degrades the
        point to the task's analytical model record
        (``"source": "model_fallback"``).
    checkpoint:
        :class:`~repro.runtime.checkpoint.SweepCheckpoint`; completed
        records are flushed incrementally (failures and fallbacks are
        not, so a resumed sweep retries them).
    resume:
        Load the checkpoint manifest first and skip the points it
        already holds.
    check_level:
        When not ``None``, rewrite every task to run under the runtime
        invariant sanitizer at this level (``task.with_check_level``);
        an :class:`~repro.runtime.errors.InvariantViolation` is
        deterministic and therefore never retried, like
        ``SimulationDiverged``.
    degradation:
        When not ``None``, a
        :class:`~repro.piuma.degradation.DegradationSpec` applied to
        every task (``task.with_degradation``) — the whole sweep runs
        on the same degraded fabric.  The spec lands in each task's
        cache key and its records' ``"degradation"`` provenance field;
        a :class:`~repro.runtime.errors.HardwareExhausted` point is
        deterministic and never retried.
    scheduler:
        When not ``None``, the event-scheduler backend (``"heap"`` or
        ``"calendar"``) every task runs on (``task.with_scheduler``).
        Backends are bit-identical in results, so this only moves host
        wall-clock; it lands in each task's cache key and its records'
        ``"scheduler"`` provenance field.
    engine:
        When not ``None``, the DES main loop (``"fast"``,
        ``"calendar"``, ``"vector"``, or ``"reference"``) every task
        runs on (``task.with_engine``).  Engines are bit-identical in
        results; the choice lands in each task's cache key and its
        records' ``"engine"`` provenance field.
    sleep:
        Injectable delay function (tests).
    """
    tasks = list(tasks)
    if check_level is not None:
        tasks = [
            task.with_check_level(check_level)
            if hasattr(task, "with_check_level") else task
            for task in tasks
        ]
    if degradation is not None:
        tasks = [
            task.with_degradation(degradation)
            if hasattr(task, "with_degradation") else task
            for task in tasks
        ]
    if scheduler is not None:
        tasks = [
            task.with_scheduler(scheduler)
            if hasattr(task, "with_scheduler") else task
            for task in tasks
        ]
    if engine is not None:
        tasks = [
            task.with_engine(engine)
            if hasattr(task, "with_engine") else task
            for task in tasks
        ]
    if on_error not in ON_ERROR_POLICIES:
        raise ValueError(
            f"on_error must be one of {ON_ERROR_POLICIES}, got {on_error!r}"
        )
    if retries < 0:
        raise ValueError("retries must be non-negative")
    if workers is None:
        workers = default_workers()
    if progress is None:
        progress = ProgressTracker(total=len(tasks))
    rng = random.Random(1729)
    started = time.perf_counter()

    n_tasks = len(tasks)
    records = [None] * n_tasks
    keys = [None] * n_tasks
    failures = []
    resumed = 0
    store_warned = [False]

    if cache is not None or checkpoint is not None:
        for index, task in enumerate(tasks):
            payload = task.key_payload()
            keys[index] = (cache.key_for(payload) if cache is not None
                           else cache_key(payload))

    if checkpoint is not None:
        # Declare the manifest live *before* any point resolves: a
        # resumed sweep may restore everything from the manifest and
        # never append again, and gc_manifests judges liveness by
        # mtime — without this, a long-resumed sweep's manifest could
        # be collected out from under it by concurrent housekeeping.
        try:
            checkpoint.touch()
        except (OSError, AttributeError):
            pass

    if checkpoint is not None and resume:
        prior = checkpoint.load()
        for index, task in enumerate(tasks):
            record = prior.get(keys[index])
            if record is not None:
                records[index] = record
                resumed += 1
                progress.point_done(
                    task.label(), 0.0,
                    record.get("sim_time_ns", 0.0), cached=True,
                )

    misses = []
    for index, task in enumerate(tasks):
        if records[index] is not None:
            continue
        if cache is not None:
            hit = cache.get(keys[index])
            if hit is not None:
                records[index] = hit
                progress.point_done(
                    task.label(), 0.0,
                    hit.get("sim_time_ns", 0.0), cached=True,
                )
                continue
        misses.append(index)
    cache_hits = n_tasks - len(misses) - resumed

    def _store(index, record):
        # A sweep that already paid for the simulation must not die on
        # a bookkeeping write: full disk or a read-only cache directory
        # degrades to "uncached" with a warning.
        if cache is not None:
            try:
                cache.put(keys[index], record,
                          payload=tasks[index].key_payload())
            except OSError as error:
                if not store_warned[0]:
                    store_warned[0] = True
                    warnings.warn(
                        f"result-cache write failed ({error}); "
                        "continuing without persisting records",
                        RuntimeWarning,
                    )
        if checkpoint is not None:
            try:
                checkpoint.flush(keys[index], record)
            except OSError as error:
                if not store_warned[0]:
                    store_warned[0] = True
                    warnings.warn(
                        f"checkpoint write failed ({error}); "
                        "continuing without persisting records",
                        RuntimeWarning,
                    )

    def _finish(index, record, wall_s):
        records[index] = record
        _store(index, record)
        progress.point_done(
            tasks[index].label(), wall_s,
            record.get("sim_time_ns", 0.0), cached=False,
            events=record.get("events", 0),
            host_wall_s=record.get("host_wall_s", 0.0),
        )

    def _resolve_failure(index, error, wall_s):
        """Attempts exhausted (or unretryable error): apply on_error."""
        if on_error == "raise":
            raise error
        failures.append(error.payload())
        task = tasks[index]
        maker = getattr(task, "fallback_record", None)
        if on_error == "fallback" and maker is not None:
            record = maker(error)
        else:
            record = failure_record(error)
        # Degraded records keep the submission-order slot but are never
        # cached or checkpointed: a later run should retry the point.
        records[index] = record
        progress.point_done(
            task.label(), wall_s,
            record.get("sim_time_ns", 0.0), cached=False,
            status=record.get("source"),
        )

    if workers <= 1 or (len(misses) <= 1 and timeout is None):
        pool_workers = 1
        for index in misses:
            attempts = 0
            while True:
                attempts += 1
                point_start = time.perf_counter()
                try:
                    record = _execute_task(tasks[index])
                except Exception as raw:
                    error = wrap_failure(raw, tasks[index].label(), attempts)
                    wall_s = time.perf_counter() - point_start
                    if error.retryable and attempts <= retries:
                        sleep(backoff_delay(attempts, backoff_s,
                                            backoff_cap_s, jitter, rng))
                        continue
                    _resolve_failure(index, error, wall_s)
                else:
                    _finish(index, record,
                            time.perf_counter() - point_start)
                break
    else:
        pool_workers = min(workers, len(misses))
        attempts = {index: 0 for index in misses}
        queue = deque(misses)
        retry_heap = []  # (ready_at, seq, index)
        retry_seq = 0
        inflight = {}  # future -> (index, started_at)
        # Kill-capable respawnable pool wrapper shared with the online
        # JobScheduler (repro.runtime.jobs): spawns lazily on the first
        # submit, close(kill=True) hard-kills hung workers, and the
        # next submit transparently respawns.
        pool = ExecPool(pool_workers)

        def _schedule_retry(index):
            nonlocal retry_seq
            delay = backoff_delay(attempts[index], backoff_s,
                                  backoff_cap_s, jitter, rng)
            heapq.heappush(
                retry_heap,
                (time.perf_counter() + delay, retry_seq, index),
            )
            retry_seq += 1

        def _after_failure(index, error, wall_s):
            attempts[index] = error.attempts
            if error.retryable and attempts[index] <= retries:
                _schedule_retry(index)
            else:
                _resolve_failure(index, error, wall_s)

        try:
            while queue or inflight or retry_heap:
                now = time.perf_counter()
                while retry_heap and retry_heap[0][0] <= now:
                    _ready, _seq, index = heapq.heappop(retry_heap)
                    queue.append(index)
                # Windowed submission: at most pool_workers points in
                # flight, so a submitted point starts (nearly)
                # immediately and its timeout measures execution, not
                # queueing behind the rest of the grid.
                while queue and len(inflight) < pool_workers:
                    index = queue.popleft()
                    try:
                        future = pool.submit(_execute_task, tasks[index])
                    except Exception:
                        # Pool broke between completions; respawn on
                        # the next iteration and try again.
                        queue.appendleft(index)
                        pool.close(kill=False)
                        break
                    inflight[future] = (index, time.perf_counter())
                if not inflight:
                    if retry_heap and not queue:
                        sleep(max(0.0,
                                  retry_heap[0][0] - time.perf_counter()))
                    continue

                wait_s = None
                if timeout is not None:
                    oldest = min(at for _i, at in inflight.values())
                    wait_s = max(0.0, oldest + timeout - time.perf_counter())
                done, _pending = wait(list(inflight), timeout=wait_s,
                                      return_when=FIRST_COMPLETED)
                now = time.perf_counter()
                pool_broken = False
                for future in done:
                    index, started_at = inflight.pop(future)
                    wall_s = now - started_at
                    try:
                        record = future.result()
                    except BrokenProcessPool:
                        pool_broken = True
                        _after_failure(index, WorkerCrash(
                            "worker process died",
                            label=tasks[index].label(),
                            attempts=attempts[index] + 1,
                            cause="BrokenProcessPool",
                        ), wall_s)
                    except Exception as raw:
                        _after_failure(index, wrap_failure(
                            raw, tasks[index].label(), attempts[index] + 1,
                        ), wall_s)
                    else:
                        attempts[index] += 1
                        _finish(index, record, wall_s)
                if pool_broken:
                    # Every sibling future died with the pool; the
                    # culprit is indistinguishable, so each in-flight
                    # point is charged a crash attempt (bounded by the
                    # window) and the pool is respawned for the rest.
                    for future, (index, started_at) in list(inflight.items()):
                        _after_failure(index, WorkerCrash(
                            "worker process died",
                            label=tasks[index].label(),
                            attempts=attempts[index] + 1,
                            cause="BrokenProcessPool",
                        ), now - started_at)
                    inflight.clear()
                    pool.close(kill=False)
                    continue
                if timeout is not None and inflight:
                    now = time.perf_counter()
                    expired = [
                        (future, index, started_at)
                        for future, (index, started_at) in inflight.items()
                        if now - started_at >= timeout
                    ]
                    if expired:
                        for future, index, started_at in expired:
                            del inflight[future]
                            _after_failure(index, TaskTimeout(
                                f"no result after {timeout:.1f}s",
                                label=tasks[index].label(),
                                attempts=attempts[index] + 1,
                                cause=f"timeout={timeout}",
                            ), now - started_at)
                        # Killing the hung worker kills the whole pool;
                        # in-flight innocents are re-queued without
                        # being charged an attempt.
                        for future, (index, _at) in inflight.items():
                            queue.append(index)
                        inflight.clear()
                        pool.close(kill=True)
        finally:
            # Abnormal exit (on_error="raise" mid-flight) may leave
            # running workers; kill only then, else close gracefully.
            pool.close(kill=bool(inflight))

    if checkpoint is not None:
        # The sweep ran to completion: compact the append-only manifest
        # so interrupted-and-resumed campaigns do not grow it without
        # bound (one line per surviving key; crash-safe via rename).
        # The CLI discards the manifest entirely when nothing failed.
        try:
            checkpoint.compact()
        except (OSError, AttributeError):
            pass

    return SweepReport(
        tasks=tasks,
        records=records,
        cache_hits=cache_hits,
        cache_misses=len(misses),
        workers=pool_workers,
        wall_s=time.perf_counter() - started,
        failures=failures,
        resumed=resumed,
    )
