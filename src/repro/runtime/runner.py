"""Process-parallel sweep runner over the discrete-event simulator.

Every figure of the paper is a sweep: a grid of (config, dataset,
kernel, embedding-dim) points, each an independent pure function of its
inputs.  The runner exploits exactly that — points are described by
picklable :class:`SpMMTask` records, fanned across a
``ProcessPoolExecutor``, memoized through the content-addressed
:mod:`repro.runtime.cache`, and returned **in submission order** no
matter which worker finished first, so downstream charts and
assertions never depend on scheduling.

Workers materialize graphs themselves (memoized per process), so only
small task descriptors and JSON records cross the process boundary.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass

from repro.runtime.cache import ResultCache
from repro.runtime.progress import ProgressTracker

#: Per-process memo of materialized graphs: tasks reference datasets by
#: (name, max_vertices, seed), so a worker builds each graph once and
#: reuses it for every point it executes.
_GRAPH_MEMO = {}


def _materialized(dataset, max_vertices, seed):
    from repro.graphs.datasets import get_dataset

    key = (dataset, max_vertices, seed)
    if key not in _GRAPH_MEMO:
        _GRAPH_MEMO[key] = get_dataset(dataset).materialize(
            max_vertices=max_vertices, seed=seed
        )
    return _GRAPH_MEMO[key]


@dataclass(frozen=True)
class SpMMTask:
    """One picklable sweep point: simulate one SpMM kernel invocation.

    Attributes
    ----------
    dataset, max_vertices, seed:
        Dataset spec reference and down-scaling parameters — the graph
        is materialized (and memoized) inside the worker process.
    embedding_dim, kernel, window_edges:
        Kernel invocation parameters (see
        :func:`repro.piuma.simulate_spmm`).
    overrides:
        Sorted ``(field, value)`` pairs applied on top of the default
        :class:`~repro.piuma.config.PIUMAConfig` — a plain tuple so the
        task stays hashable and canonically ordered.
    """

    dataset: str
    embedding_dim: int
    kernel: str = "dma"
    max_vertices: int = 16384
    seed: int = 0
    window_edges: int = None
    overrides: tuple = ()

    def config(self):
        from repro.piuma.config import PIUMAConfig

        return PIUMAConfig(**dict(self.overrides))

    def label(self):
        knobs = " ".join(f"{k}={v}" for k, v in self.overrides)
        return (f"{self.dataset}/{self.kernel} K={self.embedding_dim}"
                + (f" {knobs}" if knobs else ""))

    def key_payload(self):
        """JSON-able identity of this point for the content cache.

        Includes *every* config dataclass field (not just the swept
        overrides) and the full dataset spec, so changing a default in
        :class:`PIUMAConfig` or a Table-I count invalidates old records.
        """
        from repro.graphs.datasets import get_dataset

        return {
            "dataset": asdict(get_dataset(self.dataset)),
            "max_vertices": self.max_vertices,
            "seed": self.seed,
            "config": asdict(self.config()),
            "kernel": self.kernel,
            "embedding_dim": self.embedding_dim,
            "window_edges": self.window_edges,
        }

    def run(self):
        """Execute the point; returns a plain-JSON record.

        The record carries both the DES outcome and the matching
        Equation 5 model numbers (cheap to compute, and every consumer
        — calibration, Fig 5, the CLI — wants the ratio).
        """
        from repro.piuma import simulate_spmm, spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        result = simulate_spmm(
            adj, self.embedding_dim, config, kernel=self.kernel,
            window_edges=self.window_edges,
        )
        model = spmm_model(adj.n_rows, adj.nnz, self.embedding_dim, config)
        return {
            "n_vertices": int(adj.n_rows),
            "n_edges": int(adj.nnz),
            "embedding_dim": int(self.embedding_dim),
            "kernel": self.kernel,
            "gflops": float(result.gflops),
            "projected_time_ns": float(result.projected_time_ns),
            "sim_time_ns": float(result.sim_time_ns),
            "window_edges": int(result.window_edges),
            "total_edges": int(result.total_edges),
            "memory_utilization": float(result.memory_utilization),
            "achieved_bandwidth": float(result.achieved_bandwidth),
            "model_gflops": float(model.gflops),
            "model_time_ns": float(model.time_ns),
            "efficiency": (float(result.gflops / model.gflops)
                           if model.gflops > 0 else 0.0),
            "tag_stats": {
                tag: {"count": int(s.count), "bytes": float(s.bytes),
                      "wait_ns": float(s.wait_ns)}
                for tag, s in sorted(result.tag_stats.items())
            },
        }


def _execute_task(task):
    """Module-level trampoline so tasks pickle into worker processes."""
    return task.run()


def spmm_task(dataset, embedding_dim, kernel="dma", max_vertices=16384,
              seed=0, window_edges=None, **config_overrides):
    """Build an :class:`SpMMTask` from keyword config overrides.

    ``spmm_task("products", 256, n_cores=8, dram_latency_ns=90)`` — the
    overrides are canonically sorted so logically equal points always
    produce the same task (and the same cache key).
    """
    return SpMMTask(
        dataset=dataset,
        embedding_dim=embedding_dim,
        kernel=kernel,
        max_vertices=max_vertices,
        seed=seed,
        window_edges=window_edges,
        overrides=tuple(sorted(config_overrides.items())),
    )


def default_workers():
    """Worker count: ``$REPRO_SWEEP_WORKERS`` or ``min(4, cpus)``."""
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


@dataclass
class SweepReport:
    """Outcome of one :func:`run_sweep` call.

    ``records`` is ordered exactly like the submitted task list.
    """

    tasks: list
    records: list
    cache_hits: int
    cache_misses: int
    workers: int
    wall_s: float

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def summary(self):
        return (f"{len(self.records)} point(s) in {self.wall_s:.2f}s "
                f"({self.cache_hits} cached, {self.cache_misses} computed, "
                f"{self.workers} worker(s))")


def run_sweep(tasks, workers=None, cache=None, progress=None):
    """Run every task; returns a :class:`SweepReport`.

    Parameters
    ----------
    tasks:
        Iterable of :class:`SpMMTask` (or any picklable object with
        ``run()``, ``label()`` and ``key_payload()``).
    workers:
        Process count; ``None`` uses :func:`default_workers`, ``1``
        (or a single miss) runs inline with no pool at all.
    cache:
        :class:`~repro.runtime.cache.ResultCache`; ``None`` disables
        caching.  Hits are resolved in the parent before any process
        spawns, so a fully warm sweep never forks.
    progress:
        :class:`~repro.runtime.progress.ProgressTracker`; ``None``
        creates a silent one.
    """
    tasks = list(tasks)
    if workers is None:
        workers = default_workers()
    if progress is None:
        progress = ProgressTracker(total=len(tasks))
    started = time.perf_counter()

    records = [None] * len(tasks)
    keys = [None] * len(tasks)
    misses = []
    for index, task in enumerate(tasks):
        if cache is not None:
            keys[index] = cache.key_for(task.key_payload())
            hit = cache.get(keys[index])
            if hit is not None:
                records[index] = hit
                progress.point_done(
                    task.label(), 0.0,
                    hit.get("sim_time_ns", 0.0), cached=True,
                )
                continue
        misses.append(index)

    def _finish(index, record, wall_s):
        records[index] = record
        if cache is not None:
            cache.put(keys[index], record,
                      payload=tasks[index].key_payload())
        progress.point_done(
            tasks[index].label(), wall_s,
            record.get("sim_time_ns", 0.0), cached=False,
        )

    if len(misses) <= 1 or workers <= 1:
        for index in misses:
            point_start = time.perf_counter()
            record = _execute_task(tasks[index])
            _finish(index, record, time.perf_counter() - point_start)
        pool_workers = 1
    else:
        pool_workers = min(workers, len(misses))
        submit_times = {}
        with ProcessPoolExecutor(max_workers=pool_workers) as pool:
            futures = {}
            for index in misses:
                future = pool.submit(_execute_task, tasks[index])
                futures[future] = index
                submit_times[index] = time.perf_counter()
            for future in as_completed(futures):
                index = futures[future]
                _finish(
                    index, future.result(),
                    time.perf_counter() - submit_times[index],
                )

    return SweepReport(
        tasks=tasks,
        records=records,
        cache_hits=len(tasks) - len(misses),
        cache_misses=len(misses),
        workers=pool_workers,
        wall_s=time.perf_counter() - started,
    )
