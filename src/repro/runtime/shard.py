"""Sharded sweep points: one DES task per graph partition.

The multi-node scale-out scenario (``repro.piuma.multinode``) shards a
graph with :mod:`repro.graphs.partition` and simulates every shard as
its own discrete-event task on one PIUMA node's worth of hardware.  A
:class:`ShardTask` is exactly an :class:`~repro.runtime.runner.SpMMTask`
plus the partition coordinates ``(n_shards, shard, strategy)`` — it
rides the same process pool, content-addressed cache, checkpoint
manifest, retry and fallback machinery, and its record keeps the full
monolithic schema so every downstream consumer (figures, calibration,
the CLI) reads it unchanged.

Two contracts make the sharding trustworthy (enforced by
``tests/runtime/test_shard.py``):

* **1-shard identity** — a single-shard task simulates the *identical*
  CSR (same arrays, same auto window, same config), so its DES
  observables are bit-identical to the monolithic task on every engine
  backend;
* **conservation** — shards partition rows and edges exactly, so the
  :func:`conserved_counters` (edges, bytes, DMA descriptors, flops)
  summed over any K-shard decomposition equal the monolithic totals,
  whatever the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.runner import SpMMTask, _materialized


def shard_subgraph(adj, row_start, row_end):
    """CSR of rows ``[row_start, row_end)`` with *global* column ids.

    Column indices stay in the full graph's vertex space (they name
    feature rows, local or ghost), so the shard matrix keeps the full
    column count.  For the whole-graph range this reproduces ``adj``
    element for element — the 1-shard identity contract.
    """
    from repro.sparse.csr import CSRMatrix

    lo = int(adj.indptr[row_start])
    hi = int(adj.indptr[row_end])
    indptr = adj.indptr[row_start : row_end + 1] - adj.indptr[row_start]
    return CSRMatrix(
        indptr,
        adj.indices[lo:hi],
        adj.data[lo:hi],
        (int(row_end - row_start), adj.n_cols),
    )


def shard_geometry(adj, n_shards, shard, strategy="block"):
    """Partition ``adj`` and slice out one shard with halo accounting.

    Returns ``(sub, info)``: the shard's CSR (global column ids) and a
    plain-JSON geometry dict — row range, owned/local/cut edge counts,
    and the per-owner halo arrays (``recv_edges_by_owner`` counts cut
    edges by remote owner; ``ghosts_by_owner`` counts *distinct* remote
    vertices, i.e. the deduplicated feature rows a halo exchange
    actually ships).
    """
    from repro.graphs.partition import partition_bounds, partition_graph

    part = partition_graph(adj, n_shards, strategy=strategy)
    bounds = partition_bounds(part, n_shards)
    lo, hi = int(bounds[shard]), int(bounds[shard + 1])
    sub = shard_subgraph(adj, lo, hi)
    dst_owner = part[sub.indices] if sub.nnz else np.empty(0, np.int64)
    local = int(np.count_nonzero(dst_owner == shard))
    cut = sub.nnz - local
    recv_edges = np.bincount(dst_owner, minlength=n_shards).astype(np.int64)
    recv_edges[shard] = 0
    # Deduplicated halo: one ghost feature row per distinct remote
    # vertex per exchange (what a real halo actually ships).
    ghosts = np.zeros(n_shards, dtype=np.int64)
    if cut:
        remote = sub.indices[dst_owner != shard]
        unique = np.unique(remote)
        owners = part[unique]
        ghosts = np.bincount(owners, minlength=n_shards).astype(np.int64)
    return sub, {
        "n_shards": int(n_shards),
        "shard": int(shard),
        "strategy": strategy,
        "row_start": lo,
        "row_end": hi,
        "rows": hi - lo,
        "edges": int(sub.nnz),
        "local_edges": local,
        "cut_edges": int(cut),
        "ghost_vertices": int(ghosts.sum()),
        "recv_edges_by_owner": [int(x) for x in recv_edges],
        "ghosts_by_owner": [int(x) for x in ghosts],
    }


def conserved_counters(n_rows, n_edges, embedding_dim, config):
    """Exactly-additive traffic counters of one SpMM (shard or whole).

    Every term is linear in ``(n_rows, n_edges)``, so summing the
    counters of a disjoint row/edge decomposition reproduces the
    monolithic numbers exactly — the conservation oracle of the sharded
    runner.  ``dma_requests`` counts the DMA kernel's fused
    multiply-read descriptors (one per edge, see
    :mod:`repro.piuma.spmm_dma`).
    """
    feature = embedding_dim * config.feature_bytes
    return {
        "rows": int(n_rows),
        "edges": int(n_edges),
        "nnz_bytes": int(n_edges * (config.index_bytes + config.value_bytes)),
        "feature_read_bytes": int(n_edges * feature),
        "output_write_bytes": int(n_rows * feature),
        "dma_requests": int(n_edges),
        "flops": int(2 * n_edges * embedding_dim),
    }


def aggregate_conserved(records):
    """Sum the ``"conserved"`` counters across shard records."""
    totals = {}
    for record in records:
        for key, value in record["conserved"].items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _zero_kernel_fields(model, total_edges):
    """Record fields of a shard that owns no edges (nothing to simulate)."""
    return {
        "gflops": 0.0,
        "projected_time_ns": 0.0,
        "sim_time_ns": 0.0,
        "window_edges": 0,
        "total_edges": int(total_edges),
        "memory_utilization": 0.0,
        "achieved_bandwidth": 0.0,
        "model_gflops": float(model.gflops) if model is not None else 0.0,
        "model_time_ns": float(model.time_ns) if model is not None else 0.0,
        "efficiency": 0.0,
        "events": 0,
        "host_wall_s": 0.0,
        "events_per_s": 0.0,
        "tag_stats": {},
    }


@dataclass(frozen=True)
class ShardTask(SpMMTask):
    """One shard of a partitioned graph as a sweep point.

    Attributes (beyond :class:`SpMMTask`)
    -------------------------------------
    n_shards:
        Partition count — one simulated PIUMA node per shard.
    shard:
        This task's shard index in ``[0, n_shards)``.
    strategy:
        Partitioning strategy name
        (:data:`repro.graphs.partition.PARTITION_STRATEGIES`).
    """

    n_shards: int = 1
    shard: int = 0
    strategy: str = "block"

    def __post_init__(self):
        from repro.graphs.partition import PARTITION_STRATEGIES

        super().__post_init__()
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if not 0 <= self.shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {self.shard}"
            )
        if self.strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {PARTITION_STRATEGIES}, "
                f"got {self.strategy!r}"
            )

    def label(self):
        base = super().label()
        return f"{base} [shard {self.shard + 1}/{self.n_shards} " \
               f"{self.strategy}]"

    def key_payload(self):
        """Monolithic payload plus the partition coordinates.

        The extra keys keep shard records from ever aliasing monolithic
        ones in the content cache, even for ``n_shards=1`` (the records
        carry different schemas).
        """
        payload = super().key_payload()
        payload["partition"] = {
            "n_shards": self.n_shards,
            "shard": self.shard,
            "strategy": self.strategy,
        }
        return payload

    def _shard_geometry(self, adj):
        """Partition the materialized graph; returns this shard's slice
        and its halo accounting against the other shards."""
        return shard_geometry(adj, self.n_shards, self.shard, self.strategy)

    def run(self):
        """Simulate this shard; returns the monolithic record schema
        plus ``"shard"`` (partition/halo geometry) and ``"conserved"``
        (exactly-additive traffic counters)."""
        from repro.piuma import simulate_spmm, spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        sub, shard_info = self._shard_geometry(adj)
        conserved = conserved_counters(
            sub.n_rows, sub.nnz, self.embedding_dim, config
        )
        if sub.nnz == 0:
            # A legal (if degenerate) shard: nothing to aggregate, so
            # no window to simulate — the record is structurally
            # complete with zero kernel observables.
            record = {
                "n_vertices": int(sub.n_rows),
                "n_edges": 0,
                "embedding_dim": int(self.embedding_dim),
                "kernel": self.kernel,
                **_zero_kernel_fields(None, 0),
                "source": "simulation",
                "scheduler": config.scheduler,
                "engine": config.resolved_engine,
            }
        else:
            result = simulate_spmm(
                sub, self.embedding_dim, config, kernel=self.kernel,
                window_edges=self.window_edges,
            )
            model = spmm_model(
                sub.n_rows, sub.nnz, self.embedding_dim, config
            )
            record = {
                "n_vertices": int(sub.n_rows),
                "n_edges": int(sub.nnz),
                "embedding_dim": int(self.embedding_dim),
                "kernel": self.kernel,
                "gflops": float(result.gflops),
                "projected_time_ns": float(result.projected_time_ns),
                "sim_time_ns": float(result.sim_time_ns),
                "window_edges": int(result.window_edges),
                "total_edges": int(result.total_edges),
                "memory_utilization": float(result.memory_utilization),
                "achieved_bandwidth": float(result.achieved_bandwidth),
                "model_gflops": float(model.gflops),
                "model_time_ns": float(model.time_ns),
                "efficiency": (float(result.gflops / model.gflops)
                               if model.gflops > 0 else 0.0),
                "events": int(result.events),
                "host_wall_s": float(result.host_wall_s),
                "events_per_s": float(result.events_per_s),
                "tag_stats": {
                    tag: {"count": int(s.count), "bytes": float(s.bytes),
                          "wait_ns": float(s.wait_ns)}
                    for tag, s in sorted(result.tag_stats.items())
                },
                "source": "simulation",
                "scheduler": config.scheduler,
                "engine": config.resolved_engine,
            }
        if config.degradation is not None:
            from dataclasses import asdict

            record["degradation"] = asdict(config.degradation)
        record["shard"] = shard_info
        record["conserved"] = conserved
        return record

    def fallback_record(self, error=None):
        """Eq.5 stand-in for a failed shard, with shard geometry intact
        (the assembly still needs the halo volumes)."""
        from repro.piuma import spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        sub, shard_info = self._shard_geometry(adj)
        model = (spmm_model(sub.n_rows, sub.nnz, self.embedding_dim, config)
                 if sub.nnz else None)
        record = {
            "n_vertices": int(sub.n_rows),
            "n_edges": int(sub.nnz),
            "embedding_dim": int(self.embedding_dim),
            "kernel": self.kernel,
            **_zero_kernel_fields(model, sub.nnz),
            "source": "model_fallback",
            "scheduler": config.scheduler,
            "engine": config.resolved_engine,
        }
        if model is not None:
            record.update({
                "gflops": float(model.gflops),
                "projected_time_ns": float(model.time_ns),
                "efficiency": 1.0,
            })
        if config.degradation is not None:
            from dataclasses import asdict

            record["degradation"] = asdict(config.degradation)
        if error is not None:
            record["error"] = error.payload()
        record["shard"] = shard_info
        record["conserved"] = conserved_counters(
            sub.n_rows, sub.nnz, self.embedding_dim, config
        )
        return record


def shard_tasks(dataset, embedding_dim, n_shards, strategy="block",
                kernel="dma", max_vertices=16384, seed=0,
                window_edges=None, **config_overrides):
    """Build the ``n_shards`` :class:`ShardTask` list of one multi-node
    run (keyword config overrides canonically sorted, like
    :func:`~repro.runtime.runner.spmm_task`)."""
    overrides = tuple(sorted(config_overrides.items()))
    return [
        ShardTask(
            dataset=dataset,
            embedding_dim=embedding_dim,
            kernel=kernel,
            max_vertices=max_vertices,
            seed=seed,
            window_edges=window_edges,
            overrides=overrides,
            n_shards=n_shards,
            shard=shard,
            strategy=strategy,
        )
        for shard in range(n_shards)
    ]
