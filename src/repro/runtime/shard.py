"""Sharded sweep points: one DES task per graph partition.

The multi-node scale-out scenario (``repro.piuma.multinode``) shards a
graph with :mod:`repro.graphs.partition` and simulates every shard as
its own discrete-event task on one PIUMA node's worth of hardware.  A
:class:`ShardTask` is exactly an :class:`~repro.runtime.runner.SpMMTask`
plus the partition coordinates ``(n_shards, shard, strategy)`` — it
rides the same process pool, content-addressed cache, checkpoint
manifest, retry and fallback machinery, and its record keeps the full
monolithic schema so every downstream consumer (figures, calibration,
the CLI) reads it unchanged.

Two contracts make the sharding trustworthy (enforced by
``tests/runtime/test_shard.py``):

* **1-shard identity** — a single-shard task simulates the *identical*
  CSR (same arrays, same auto window, same config), so its DES
  observables are bit-identical to the monolithic task on every engine
  backend;
* **conservation** — shards partition rows and edges exactly, so the
  :func:`conserved_counters` (edges, bytes, DMA descriptors, flops)
  summed over any K-shard decomposition equal the monolithic totals,
  whatever the strategy.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from repro.runtime.runner import SpMMTask, _materialized


def shard_subgraph(adj, row_start, row_end):
    """CSR of rows ``[row_start, row_end)`` with *global* column ids.

    Column indices stay in the full graph's vertex space (they name
    feature rows, local or ghost), so the shard matrix keeps the full
    column count.  For the whole-graph range this reproduces ``adj``
    element for element — the 1-shard identity contract.
    """
    from repro.sparse.csr import CSRMatrix

    lo = int(adj.indptr[row_start])
    hi = int(adj.indptr[row_end])
    indptr = adj.indptr[row_start : row_end + 1] - adj.indptr[row_start]
    return CSRMatrix(
        indptr,
        adj.indices[lo:hi],
        adj.data[lo:hi],
        (int(row_end - row_start), adj.n_cols),
    )


def shard_geometry(adj, n_shards, shard, strategy="block"):
    """Partition ``adj`` and slice out one shard with halo accounting.

    Returns ``(sub, info)``: the shard's CSR (global column ids) and a
    plain-JSON geometry dict — row range, owned/local/cut edge counts,
    and the per-owner halo arrays (``recv_edges_by_owner`` counts cut
    edges by remote owner; ``ghosts_by_owner`` counts *distinct* remote
    vertices, i.e. the deduplicated feature rows a halo exchange
    actually ships).
    """
    from repro.graphs.partition import partition_bounds, partition_graph

    part = partition_graph(adj, n_shards, strategy=strategy)
    bounds = partition_bounds(part, n_shards)
    lo, hi = int(bounds[shard]), int(bounds[shard + 1])
    sub = shard_subgraph(adj, lo, hi)
    dst_owner = part[sub.indices] if sub.nnz else np.empty(0, np.int64)
    local = int(np.count_nonzero(dst_owner == shard))
    cut = sub.nnz - local
    recv_edges = np.bincount(dst_owner, minlength=n_shards).astype(np.int64)
    recv_edges[shard] = 0
    # Deduplicated halo: one ghost feature row per distinct remote
    # vertex per exchange (what a real halo actually ships).
    ghosts = np.zeros(n_shards, dtype=np.int64)
    if cut:
        remote = sub.indices[dst_owner != shard]
        unique = np.unique(remote)
        owners = part[unique]
        ghosts = np.bincount(owners, minlength=n_shards).astype(np.int64)
    return sub, {
        "n_shards": int(n_shards),
        "shard": int(shard),
        "strategy": strategy,
        "row_start": lo,
        "row_end": hi,
        "rows": hi - lo,
        "edges": int(sub.nnz),
        "local_edges": local,
        "cut_edges": int(cut),
        "ghost_vertices": int(ghosts.sum()),
        "recv_edges_by_owner": [int(x) for x in recv_edges],
        "ghosts_by_owner": [int(x) for x in ghosts],
    }


def conserved_counters(n_rows, n_edges, embedding_dim, config):
    """Exactly-additive traffic counters of one SpMM (shard or whole).

    Every term is linear in ``(n_rows, n_edges)``, so summing the
    counters of a disjoint row/edge decomposition reproduces the
    monolithic numbers exactly — the conservation oracle of the sharded
    runner.  ``dma_requests`` counts the DMA kernel's fused
    multiply-read descriptors (one per edge, see
    :mod:`repro.piuma.spmm_dma`).
    """
    feature = embedding_dim * config.feature_bytes
    return {
        "rows": int(n_rows),
        "edges": int(n_edges),
        "nnz_bytes": int(n_edges * (config.index_bytes + config.value_bytes)),
        "feature_read_bytes": int(n_edges * feature),
        "output_write_bytes": int(n_rows * feature),
        "dma_requests": int(n_edges),
        "flops": int(2 * n_edges * embedding_dim),
    }


def aggregate_conserved(records):
    """Sum the ``"conserved"`` counters across shard records."""
    totals = {}
    for record in records:
        for key, value in record["conserved"].items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _zero_kernel_fields(model, total_edges):
    """Record fields of a shard that owns no edges (nothing to simulate)."""
    return {
        "gflops": 0.0,
        "projected_time_ns": 0.0,
        "sim_time_ns": 0.0,
        "window_edges": 0,
        "total_edges": int(total_edges),
        "memory_utilization": 0.0,
        "achieved_bandwidth": 0.0,
        "model_gflops": float(model.gflops) if model is not None else 0.0,
        "model_time_ns": float(model.time_ns) if model is not None else 0.0,
        "efficiency": 0.0,
        "events": 0,
        "host_wall_s": 0.0,
        "events_per_s": 0.0,
        "tag_stats": {},
    }


@dataclass(frozen=True)
class ShardTask(SpMMTask):
    """One shard of a partitioned graph as a sweep point.

    Attributes (beyond :class:`SpMMTask`)
    -------------------------------------
    n_shards:
        Partition count — one simulated PIUMA node per shard.
    shard:
        This task's shard index in ``[0, n_shards)``.
    strategy:
        Partitioning strategy name
        (:data:`repro.graphs.partition.PARTITION_STRATEGIES`).
    """

    n_shards: int = 1
    shard: int = 0
    strategy: str = "block"

    def __post_init__(self):
        from repro.graphs.partition import PARTITION_STRATEGIES

        super().__post_init__()
        if self.n_shards < 1:
            raise ValueError("n_shards must be positive")
        if not 0 <= self.shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {self.shard}"
            )
        if self.strategy not in PARTITION_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {PARTITION_STRATEGIES}, "
                f"got {self.strategy!r}"
            )

    def label(self):
        base = super().label()
        return f"{base} [shard {self.shard + 1}/{self.n_shards} " \
               f"{self.strategy}]"

    def key_payload(self):
        """Monolithic payload plus the partition coordinates.

        The extra keys keep shard records from ever aliasing monolithic
        ones in the content cache, even for ``n_shards=1`` (the records
        carry different schemas).
        """
        payload = super().key_payload()
        payload["partition"] = {
            "n_shards": self.n_shards,
            "shard": self.shard,
            "strategy": self.strategy,
        }
        return payload

    def _shard_geometry(self, adj):
        """Partition the materialized graph; returns this shard's slice
        and its halo accounting against the other shards."""
        return shard_geometry(adj, self.n_shards, self.shard, self.strategy)

    def run(self):
        """Simulate this shard; returns the monolithic record schema
        plus ``"shard"`` (partition/halo geometry) and ``"conserved"``
        (exactly-additive traffic counters)."""
        from repro.piuma import simulate_spmm, spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        sub, shard_info = self._shard_geometry(adj)
        conserved = conserved_counters(
            sub.n_rows, sub.nnz, self.embedding_dim, config
        )
        if sub.nnz == 0:
            # A legal (if degenerate) shard: nothing to aggregate, so
            # no window to simulate — the record is structurally
            # complete with zero kernel observables.
            record = {
                "n_vertices": int(sub.n_rows),
                "n_edges": 0,
                "embedding_dim": int(self.embedding_dim),
                "kernel": self.kernel,
                **_zero_kernel_fields(None, 0),
                "source": "simulation",
                "scheduler": config.scheduler,
                "engine": config.resolved_engine,
            }
        else:
            result = simulate_spmm(
                sub, self.embedding_dim, config, kernel=self.kernel,
                window_edges=self.window_edges,
            )
            model = spmm_model(
                sub.n_rows, sub.nnz, self.embedding_dim, config
            )
            record = {
                "n_vertices": int(sub.n_rows),
                "n_edges": int(sub.nnz),
                "embedding_dim": int(self.embedding_dim),
                "kernel": self.kernel,
                "gflops": float(result.gflops),
                "projected_time_ns": float(result.projected_time_ns),
                "sim_time_ns": float(result.sim_time_ns),
                "window_edges": int(result.window_edges),
                "total_edges": int(result.total_edges),
                "memory_utilization": float(result.memory_utilization),
                "achieved_bandwidth": float(result.achieved_bandwidth),
                "model_gflops": float(model.gflops),
                "model_time_ns": float(model.time_ns),
                "efficiency": (float(result.gflops / model.gflops)
                               if model.gflops > 0 else 0.0),
                "events": int(result.events),
                "host_wall_s": float(result.host_wall_s),
                "events_per_s": float(result.events_per_s),
                "tag_stats": {
                    tag: {"count": int(s.count), "bytes": float(s.bytes),
                          "wait_ns": float(s.wait_ns)}
                    for tag, s in sorted(result.tag_stats.items())
                },
                "source": "simulation",
                "scheduler": config.scheduler,
                "engine": config.resolved_engine,
            }
        if config.degradation is not None:
            from dataclasses import asdict

            record["degradation"] = asdict(config.degradation)
        record["shard"] = shard_info
        record["conserved"] = conserved
        return record

    def fallback_record(self, error=None):
        """Eq.5 stand-in for a failed shard, with shard geometry intact
        (the assembly still needs the halo volumes)."""
        from repro.piuma import spmm_model

        adj = _materialized(self.dataset, self.max_vertices, self.seed)
        config = self.config()
        sub, shard_info = self._shard_geometry(adj)
        model = (spmm_model(sub.n_rows, sub.nnz, self.embedding_dim, config)
                 if sub.nnz else None)
        record = {
            "n_vertices": int(sub.n_rows),
            "n_edges": int(sub.nnz),
            "embedding_dim": int(self.embedding_dim),
            "kernel": self.kernel,
            **_zero_kernel_fields(model, sub.nnz),
            "source": "model_fallback",
            "scheduler": config.scheduler,
            "engine": config.resolved_engine,
        }
        if model is not None:
            record.update({
                "gflops": float(model.gflops),
                "projected_time_ns": float(model.time_ns),
                "efficiency": 1.0,
            })
        if config.degradation is not None:
            from dataclasses import asdict

            record["degradation"] = asdict(config.degradation)
        if error is not None:
            record["error"] = error.payload()
        record["shard"] = shard_info
        record["conserved"] = conserved_counters(
            sub.n_rows, sub.nnz, self.embedding_dim, config
        )
        return record

    def shard_fallback_record(self, error=None):
        """Eq.5 stand-in for a shard whose failure *domain* is exhausted.

        Same schema and numbers as :meth:`fallback_record`, but flagged
        ``"source": "shard_fallback"`` — the provenance the partial
        multi-node assembly uses to widen its envelope verdict instead
        of aborting.  The conserved counters are exact (they depend
        only on geometry), so conservation holds even for a degraded
        assembly.
        """
        record = self.fallback_record(error)
        record["source"] = "shard_fallback"
        return record


# ----------------------------------------------------------------------
# Per-shard failure domains: bounded retry, hedged re-execution,
# degraded fallback.

#: Policies once a shard's failure domain is exhausted.
ON_EXHAUSTED_POLICIES = ("fallback", "raise")


@dataclass(frozen=True)
class ShardRecovery:
    """Failure model of one multi-node run's shard set.

    Each shard is its own failure domain: attempts against it are
    retried up to ``retries`` extra times (crashes, timeouts, and
    generic exceptions; deterministic failures like a diverged
    simulation are never retried), stragglers are *hedged* — a
    speculative duplicate launched on a free worker once the shard has
    been running ``hedge_after_s`` seconds (or, when ``None``,
    ``hedge_factor`` times the median duration of already-finished
    shards, floored at ``min_hedge_s``); first result wins, the loser
    is cancelled, and ties break deterministically toward the earlier
    attempt.  A shard that exhausts its domain is degraded to the
    task's Eq.5 estimate (``"source": "shard_fallback"``) under the
    default ``on_exhausted="fallback"`` policy, or aborts the run under
    ``"raise"``.
    """

    retries: int = 1
    timeout: float | None = None
    hedge_after_s: float | None = None
    hedge_factor: float = 3.0
    min_hedge_s: float = 0.05
    on_exhausted: str = "fallback"

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.on_exhausted not in ON_EXHAUSTED_POLICIES:
            raise ValueError(
                f"on_exhausted must be one of {ON_EXHAUSTED_POLICIES}, "
                f"got {self.on_exhausted!r}"
            )
        if self.hedge_factor <= 1.0:
            raise ValueError("hedge_factor must be > 1")


def _recovery_stats():
    return {
        "attempts": 0, "retries": 0, "crashes": 0, "timeouts": 0,
        "hedges_launched": 0, "hedges_won": 0, "hedges_cancelled": 0,
        "fallbacks": 0,
    }


@dataclass
class ShardRunReport:
    """Outcome of one :func:`run_shards` call.

    Mirrors :class:`~repro.runtime.runner.SweepReport` (``records`` in
    submission order, ``failures`` as structured payloads, cache and
    resume accounting) plus the per-run ``recovery`` counters — how
    much work retries, hedges, and fallbacks respectively saved.
    """

    tasks: list
    records: list
    cache_hits: int
    cache_misses: int
    workers: int
    wall_s: float
    failures: list = field(default_factory=list)
    resumed: int = 0
    recovery: dict = field(default_factory=_recovery_stats)

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)


def _shard_fallback(task, error):
    """Degrade one exhausted shard: prefer the shard-provenance record."""
    maker = getattr(task, "shard_fallback_record", None)
    if maker is None:
        maker = getattr(task, "fallback_record", None)
    if maker is not None:
        return maker(error)
    from repro.runtime.errors import failure_record

    return failure_record(error)


def run_shards(tasks, recovery=None, *, workers=None, cache=None,
               checkpoint=None, resume=False, progress=None):
    """Run shard tasks under per-shard failure domains with hedging.

    The multi-node counterpart of :func:`~repro.runtime.runner.
    run_sweep`: same submission-order records, content-cache and
    checkpoint integration, pool respawn on crashes — but failure
    handling is per *shard domain* (see :class:`ShardRecovery`) and
    stragglers are speculatively re-executed on free workers.  Shard
    tasks are deterministic, so whichever of a primary/hedge pair
    finishes first returns the identical record; the race only moves
    wall-clock, never results.

    Returns a :class:`ShardRunReport`.  Degraded (fallback) records are
    never written to the cache or the checkpoint manifest — a later run
    retries those shards, exactly like ``run_sweep``'s policy.
    """
    from repro.runtime.cache import cache_key
    from repro.runtime.errors import (
        TaskTimeout,
        WorkerCrash,
        wrap_failure,
    )
    from repro.runtime.jobs import ExecPool
    from repro.runtime.runner import _execute_task, default_workers

    tasks = list(tasks)
    if recovery is None:
        recovery = ShardRecovery()
    if workers is None:
        workers = default_workers()
    started = time.perf_counter()

    n_tasks = len(tasks)
    records = [None] * n_tasks
    keys = [None] * n_tasks
    failures = []
    resumed = 0
    stats = _recovery_stats()

    if cache is not None or checkpoint is not None:
        for index, task in enumerate(tasks):
            payload = task.key_payload()
            keys[index] = (cache.key_for(payload) if cache is not None
                           else cache_key(payload))
    if checkpoint is not None:
        try:
            checkpoint.touch()
        except (OSError, AttributeError):
            pass
    if checkpoint is not None and resume:
        prior = checkpoint.load()
        for index in range(n_tasks):
            record = prior.get(keys[index])
            if record is not None:
                records[index] = record
                resumed += 1
    misses = []
    for index in range(n_tasks):
        if records[index] is not None:
            continue
        if cache is not None:
            hit = cache.get(keys[index])
            if hit is not None:
                records[index] = hit
                continue
        misses.append(index)
    cache_hits = n_tasks - len(misses) - resumed

    def _store(index, record):
        if cache is not None:
            try:
                cache.put(keys[index], record,
                          payload=tasks[index].key_payload())
            except OSError:
                pass
        if checkpoint is not None:
            try:
                checkpoint.flush(keys[index], record)
            except OSError:
                pass

    def _progress(index, wall_s, record, status=None):
        if progress is not None:
            progress.point_done(
                tasks[index].label(), wall_s,
                record.get("sim_time_ns", 0.0), cached=False, status=status,
            )

    def _exhaust(index, error, wall_s):
        """Failure domain spent: degrade or abort per policy."""
        if recovery.on_exhausted == "raise":
            raise error
        failures.append(error.payload())
        stats["fallbacks"] += 1
        record = _shard_fallback(tasks[index], error)
        records[index] = record
        _progress(index, wall_s, record, status=record.get("source"))

    if workers <= 1 or len(misses) <= 1:
        # Inline execution: no pool, so no hedging and no enforceable
        # timeout — but the retry/fallback domain semantics hold.
        for index in misses:
            fail_count = 0
            while True:
                stats["attempts"] += 1
                point_start = time.perf_counter()
                try:
                    record = _execute_task(tasks[index])
                except Exception as raw:
                    fail_count += 1
                    error = wrap_failure(
                        raw, tasks[index].label(), fail_count
                    )
                    wall_s = time.perf_counter() - point_start
                    if error.retryable and fail_count <= recovery.retries:
                        stats["retries"] += 1
                        continue
                    _exhaust(index, error, wall_s)
                else:
                    records[index] = record
                    _store(index, record)
                    _progress(index, time.perf_counter() - point_start,
                              record)
                break
        return ShardRunReport(
            tasks=tasks, records=records, cache_hits=cache_hits,
            cache_misses=len(misses), workers=1,
            wall_s=time.perf_counter() - started, failures=failures,
            resumed=resumed, recovery=stats,
        )

    pool_workers = min(workers, len(misses))
    pool = ExecPool(pool_workers)
    remaining = set(misses)
    queue = deque(misses)
    fail_count = {index: 0 for index in misses}
    inflight = {}          # future -> (index, attempt_id, kind, started_at)
    live = {index: [] for index in misses}   # index -> live futures
    hedged = set()
    durations = []
    attempt_seq = 0

    def _hedge_threshold():
        if recovery.hedge_after_s is not None:
            return recovery.hedge_after_s
        if len(durations) * 2 >= max(2, len(misses)):
            ordered = sorted(durations)
            median = ordered[len(ordered) // 2]
            return max(recovery.min_hedge_s, recovery.hedge_factor * median)
        return None

    def _submit(index, kind):
        nonlocal attempt_seq
        attempt_seq += 1
        try:
            future = pool.submit(_execute_task, tasks[index])
        except Exception:
            pool.close(kill=False)
            return False
        stats["attempts"] += 1
        inflight[future] = (index, attempt_seq, kind, time.perf_counter())
        live[index].append(future)
        return True

    def _charge(index, error, wall_s):
        """One failed attempt against ``index``'s domain."""
        if index not in remaining:
            return
        fail_count[index] += 1
        if isinstance(error, WorkerCrash):
            stats["crashes"] += 1
        elif isinstance(error, TaskTimeout):
            stats["timeouts"] += 1
        if error.retryable and fail_count[index] <= recovery.retries:
            # The live sibling (a hedge still running) *is* the retry
            # in flight; only resubmit when the domain has no attempt
            # left running.
            if not live[index]:
                stats["retries"] += 1
                queue.append(index)
            return
        remaining.discard(index)
        _exhaust(index, error, wall_s)

    try:
        while remaining:
            while queue and len(inflight) < pool_workers:
                index = queue.popleft()
                if index not in remaining:
                    continue
                if not _submit(index, "retry" if fail_count[index]
                               else "primary"):
                    queue.appendleft(index)
                    break
            # Hedge stragglers onto spare capacity: at most one hedge
            # per shard, launched only when a worker slot is free so
            # speculation never delays first-run work.
            threshold = _hedge_threshold()
            if threshold is not None and len(inflight) < pool_workers:
                now = time.perf_counter()
                for future, (index, _seq, kind, at) in sorted(
                        inflight.items(), key=lambda kv: kv[1][3]):
                    if len(inflight) >= pool_workers:
                        break
                    if (kind == "hedge" or index in hedged
                            or index not in remaining
                            or now - at < threshold):
                        continue
                    hedged.add(index)
                    if _submit(index, "hedge"):
                        stats["hedges_launched"] += 1
            if not inflight:
                if not queue and remaining:
                    # Pool broke during submission; retry next pass.
                    queue.extend(sorted(remaining - set(queue)))
                continue

            wait_s = 0.05
            if recovery.timeout is not None:
                oldest = min(
                    at for _i, _s, _k, at in inflight.values()
                )
                wait_s = min(wait_s, max(
                    0.0, oldest + recovery.timeout - time.perf_counter()
                ))
            done, _pending = wait(list(inflight), timeout=wait_s,
                                  return_when=FIRST_COMPLETED)
            now = time.perf_counter()
            pool_broken = False
            reap = False
            # Deterministic tie-break: completions resolve in
            # (shard index, attempt id) order, so when a primary and
            # its hedge land in the same wait batch the primary wins.
            for future in sorted(done, key=lambda f: inflight[f][:2]):
                index, _seq, kind, started_at = inflight.pop(future)
                if future in live.get(index, ()):
                    live[index].remove(future)
                wall_s = now - started_at
                if index not in remaining:
                    # Stale loser of a settled race.
                    continue
                try:
                    record = future.result()
                except BrokenProcessPool:
                    pool_broken = True
                    _charge(index, WorkerCrash(
                        "worker process died",
                        label=tasks[index].label(),
                        attempts=fail_count[index] + 1,
                        cause="BrokenProcessPool",
                    ), wall_s)
                except Exception as raw:
                    _charge(index, wrap_failure(
                        raw, tasks[index].label(), fail_count[index] + 1,
                    ), wall_s)
                else:
                    remaining.discard(index)
                    durations.append(wall_s)
                    if kind == "hedge":
                        stats["hedges_won"] += 1
                    # Cache/checkpoint the *raw* record (bit-identical
                    # to an unfaulted run); the returned copy carries
                    # the recovery provenance.
                    _store(index, record)
                    annotated = dict(record)
                    annotated["recovery"] = {
                        "attempts": fail_count[index] + 1,
                        "hedged": index in hedged,
                        "winner": kind,
                    }
                    records[index] = annotated
                    _progress(index, wall_s, record)
                    # Cancel the losing sibling: a not-yet-started
                    # future cancels in place; a running one can only
                    # be stopped by killing its worker, done below.
                    for sibling in list(live[index]):
                        if sibling.cancel() or sibling.done():
                            live[index].remove(sibling)
                            inflight.pop(sibling, None)
                        else:
                            reap = True
                        stats["hedges_cancelled"] += 1
            if pool_broken:
                # Indistinguishable sibling deaths: each unresolved
                # in-flight shard is charged one crash attempt, then
                # the pool respawns for the rest.  Tracking is cleared
                # *first* so a retryable charge re-queues the shard.
                casualties = {}
                for index, _s, _k, at in inflight.values():
                    if index in remaining:
                        casualties.setdefault(index, at)
                inflight.clear()
                for index in live:
                    live[index] = []
                for index, at in sorted(casualties.items()):
                    _charge(index, WorkerCrash(
                        "worker process died",
                        label=tasks[index].label(),
                        attempts=fail_count[index] + 1,
                        cause="BrokenProcessPool",
                    ), now - at)
                pool.close(kill=False)
                continue
            if reap:
                # A settled race left a loser *running*: the only way
                # to cancel it is to kill its worker, which takes the
                # pool.  Unresolved in-flight innocents are re-queued
                # without being charged.
                for future, (index, _s, _k, _at) in list(inflight.items()):
                    if index in remaining and index not in queue:
                        queue.append(index)
                inflight.clear()
                for index in live:
                    live[index] = []
                pool.close(kill=True)
                continue
            if recovery.timeout is not None and inflight:
                now = time.perf_counter()
                expired = {}
                for index, _s, _k, at in inflight.values():
                    if (now - at >= recovery.timeout
                            and index in remaining):
                        expired.setdefault(index, at)
                if expired:
                    # Killing the hung worker kills the whole pool;
                    # innocents are re-queued without being charged.
                    # Tracking is cleared before charging so a
                    # retryable timeout re-queues its shard.
                    innocents = sorted({
                        index for index, _s, _k, _at in inflight.values()
                        if index in remaining and index not in expired
                    })
                    inflight.clear()
                    for index in live:
                        live[index] = []
                    for index, at in sorted(expired.items()):
                        _charge(index, TaskTimeout(
                            f"no result after {recovery.timeout:.1f}s",
                            label=tasks[index].label(),
                            attempts=fail_count[index] + 1,
                            cause=f"timeout={recovery.timeout}",
                        ), now - at)
                    for index in innocents:
                        if index not in queue:
                            queue.append(index)
                    pool.close(kill=True)
    finally:
        pool.close(kill=bool(inflight))

    return ShardRunReport(
        tasks=tasks, records=records, cache_hits=cache_hits,
        cache_misses=len(misses), workers=pool_workers,
        wall_s=time.perf_counter() - started, failures=failures,
        resumed=resumed, recovery=stats,
    )


def shard_tasks(dataset, embedding_dim, n_shards, strategy="block",
                kernel="dma", max_vertices=16384, seed=0,
                window_edges=None, **config_overrides):
    """Build the ``n_shards`` :class:`ShardTask` list of one multi-node
    run (keyword config overrides canonically sorted, like
    :func:`~repro.runtime.runner.spmm_task`)."""
    overrides = tuple(sorted(config_overrides.items()))
    return [
        ShardTask(
            dataset=dataset,
            embedding_dim=embedding_dim,
            kernel=kernel,
            max_vertices=max_vertices,
            seed=seed,
            window_edges=window_edges,
            overrides=overrides,
            n_shards=n_shards,
            shard=shard,
            strategy=strategy,
        )
        for shard in range(n_shards)
    ]
